//! Concurrent log-linear latency histogram.
//!
//! Same bucket layout as the bench crate's offline `Histogram` (16 linear
//! sub-buckets per power-of-two magnitude, ≤ ~6 % relative error from
//! nanoseconds to days) but recordable from any thread with relaxed
//! atomics: one `fetch_add` on the bucket plus `fetch_max`/`fetch_min` on
//! the extrema. There is deliberately no separate total counter — a
//! snapshot's population is *defined* as the sum of its buckets, so a
//! merge or a concurrent snapshot can never observe a count that disagrees
//! with its own bucket contents.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two.
pub const SUBS: usize = 16;
/// Magnitudes covered (2^0 .. 2^47 ns ≈ 1.6 days).
pub const MAGS: usize = 48;
/// Total bucket count.
pub const BUCKETS: usize = MAGS * SUBS;

#[inline]
fn bucket_of(v: u64) -> usize {
    let v = v.max(1);
    let mag = 63 - v.leading_zeros() as usize;
    if mag < 4 {
        // Values below 16 land in the first magnitude's linear range.
        return (v as usize).min(SUBS - 1);
    }
    let sub = ((v >> (mag - 4)) & 0xF) as usize;
    ((mag.min(MAGS - 1)) * SUBS + sub).min(BUCKETS - 1)
}

/// Lower edge of a bucket (representative value for reporting).
fn bucket_value(idx: usize) -> u64 {
    let mag = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if mag < 1 {
        return sub;
    }
    (1u64 << mag) + (sub << (mag.saturating_sub(4)))
}

/// Exclusive upper edge of a bucket.
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_value(idx + 1)
    }
}

/// A lock-free histogram of `u64` nanosecond values.
///
/// `const`-constructible so it can live in `static` shard arrays.
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl AtomicHistogram {
    /// An empty histogram (usable in `static` initialisers).
    pub const fn new() -> Self {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Records one value (relaxed; safe from any thread).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Copies the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket and the extrema.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of an [`AtomicHistogram`], mergeable and diffable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    sum: u64,
    max: u64,
    min: u64,
}

impl HistSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Number of recorded values — by construction the sum of the buckets,
    /// so population is conserved under merge and diff.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of recorded values (for the mean).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.min == u64::MAX {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` (0.0 ..= 1.0), approximated by bucket edge.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return bucket_value(i);
            }
        }
        self.max
    }

    /// Cumulative counts at ascending `edges` (Prometheus `le` bounds):
    /// element `i` is the number of recorded values falling in buckets
    /// wholly at or below `edges[i]`. When an edge is a bucket boundary
    /// (any power of two ≥ 16 is), the count is exact; otherwise it is
    /// rounded down to the nearest boundary. Always monotone
    /// nondecreasing, and never exceeds [`count`](Self::count) — append
    /// the total itself as the `+Inf` bucket.
    pub fn le_counts(&self, edges: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(edges.len());
        let mut acc = 0u64;
        let mut idx = 0usize;
        for &edge in edges {
            while idx < BUCKETS && bucket_upper(idx) <= edge {
                acc += self.counts[idx];
                idx += 1;
            }
            out.push(acc);
        }
        out
    }

    /// Adds another snapshot's population into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Population recorded between `earlier` and `self` (bucket-wise
    /// saturating difference).
    ///
    /// The bucket counts and `sum` are exact. The window's `max`/`min` are
    /// exact when a new extremum was set inside the window; otherwise they
    /// are approximated by the edges of the outermost non-empty delta
    /// buckets (≤ ~6 % relative error, like the quantiles).
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        let mut lo = None;
        let mut hi = None;
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
            if *c > 0 {
                lo.get_or_insert(i);
                hi = Some(i);
            }
        }
        let max = match hi {
            None => 0,
            Some(_) if self.max > earlier.max => self.max,
            Some(i) => bucket_upper(i).min(self.max),
        };
        let min = match lo {
            None => u64::MAX,
            Some(_) if self.min < earlier.min => self.min,
            Some(i) => bucket_value(i).max(self.min),
        };
        HistSnapshot {
            counts,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
            min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let h = AtomicHistogram::new();
        for v in [1u64, 10, 100, 1000, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum(), 12_111);
        assert_eq!(s.max(), 10_000);
        assert_eq!(s.min(), 1);
    }

    #[test]
    fn quantiles_are_ordered_and_approximate() {
        let h = AtomicHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        let p100 = s.quantile(1.0);
        assert!(p50 <= p99 && p99 <= p100);
        assert!((4_500..=5_500).contains(&p50), "p50={p50}");
        assert!((9_000..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(p100, 10_000);
    }

    #[test]
    fn matches_bench_layout_on_quantiles() {
        // Same values through both this histogram and a fresh one merged
        // from two halves must agree bucket-for-bucket.
        let whole = AtomicHistogram::new();
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        for v in 0..1000u64 {
            let x = (v * 2654435761) % 100_000;
            whole.record(x);
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let w = whole.snapshot();
        assert_eq!(merged.count(), w.count());
        assert_eq!(merged.sum(), w.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), w.quantile(q));
        }
    }

    #[test]
    fn since_subtracts_population_exactly() {
        let h = AtomicHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let early = h.snapshot();
        for v in [5_000u64, 6_000] {
            h.record(v);
        }
        let delta = h.snapshot().since(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 11_000);
        // New max was set inside the window — exact.
        assert_eq!(delta.max(), 6_000);
        // Window min is approximated by a bucket edge near 5000.
        let min = delta.min();
        assert!((4_000..=5_000).contains(&min), "min={min}");
        assert_eq!(h.snapshot().since(&h.snapshot()).count(), 0);
    }

    #[test]
    fn le_counts_are_monotone_and_exact_at_boundaries() {
        let h = AtomicHistogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let edges = [16u64, 1 << 7, 1 << 11, 1 << 14, 1 << 17, 1 << 21];
        let le = s.le_counts(&edges);
        assert_eq!(le.len(), edges.len());
        assert!(le.windows(2).all(|w| w[0] <= w[1]), "not monotone: {le:?}");
        assert!(*le.last().unwrap() <= s.count());
        // Power-of-two edges are exact boundaries: 10 < 16, {10,100} < 128.
        assert_eq!(le[0], 1);
        assert_eq!(le[1], 2);
        assert_eq!(le[5], 6, "2^21 > 1e6 captures everything");
    }

    #[test]
    fn empty_is_sane() {
        let s = AtomicHistogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn reset_empties() {
        let h = AtomicHistogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.max(), 0);
    }
}
