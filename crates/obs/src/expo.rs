//! Exposition: Prometheus text format and hand-rolled JSON.
//!
//! Both renderers work from a [`MetricsSnapshot`], so absolute and delta
//! views use the same code path. JSON is emitted as a single line so CLI
//! consumers (and the CI smoke test) can grab it with a one-line match and
//! feed it straight to a JSON parser.
//!
//! The Prometheus output is lint-clean by contract (enforced by
//! `crates/obs/tests/prom_lint.rs`): every family carries a `# HELP` and
//! `# TYPE` pair, histogram families emit cumulative `_bucket` series with
//! ascending `le` bounds ending at `+Inf`, and the `+Inf` bucket equals
//! the family's `_count`.

use std::fmt::Write;

use crate::hist::HistSnapshot;
use crate::{Counter, MetricsSnapshot, NetCmd, OpKind, Phase};

const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Histogram `le` bounds in nanoseconds. Powers of two are exact edges of
/// the log-linear bucket layout (see [`HistSnapshot::le_counts`]), spanning
/// 1 µs to ~2.1 s — the plausible latency range of a table op or a wire
/// command — with a terminal `+Inf`.
const LE_EDGES: [u64; 8] = [
    1 << 10, // ~1 µs
    1 << 13, // ~8 µs
    1 << 16, // ~65 µs
    1 << 19, // ~524 µs
    1 << 22, // ~4.2 ms
    1 << 25, // ~33 ms
    1 << 28, // ~268 ms
    1 << 31, // ~2.1 s
];

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Emits one labelled histogram series (`_bucket`+`+Inf`, `_sum`,
/// `_count`) for `h` under `name{label_key="label_val"}`.
fn hist_series(out: &mut String, name: &str, label_key: &str, label_val: &str, h: &HistSnapshot) {
    let le = h.le_counts(&LE_EDGES);
    for (edge, c) in LE_EDGES.iter().zip(&le) {
        let _ = writeln!(
            out,
            "{name}_bucket{{{label_key}=\"{label_val}\",le=\"{edge}\"}} {c}"
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{label_key}=\"{label_val}\",le=\"+Inf\"}} {}",
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{{{label_key}=\"{label_val}\"}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{{label_key}=\"{label_val}\"}} {}", h.count());
}

/// Prometheus text exposition format.
pub(crate) fn prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();

    family(&mut out, "hdnh_ops_total", "Completed table operations by kind.", "counter");
    for &op in &OpKind::ALL {
        let _ = writeln!(
            out,
            "hdnh_ops_total{{op=\"{}\"}} {}",
            op.name(),
            s.op(op).count()
        );
    }

    family(
        &mut out,
        "hdnh_op_latency_ns",
        "Table operation latency quantiles in nanoseconds.",
        "gauge",
    );
    for &op in &OpKind::ALL {
        let h = s.op(op);
        for &(q, label) in &QUANTILES {
            let _ = writeln!(
                out,
                "hdnh_op_latency_ns{{op=\"{}\",quantile=\"{label}\"}} {}",
                op.name(),
                h.quantile(q)
            );
        }
    }
    family(
        &mut out,
        "hdnh_op_latency_ns_max",
        "Largest observed table operation latency in nanoseconds.",
        "gauge",
    );
    for &op in &OpKind::ALL {
        let _ = writeln!(
            out,
            "hdnh_op_latency_ns_max{{op=\"{}\"}} {}",
            op.name(),
            s.op(op).max()
        );
    }

    family(
        &mut out,
        "hdnh_op_latency_hist_ns",
        "Table operation latency histogram in nanoseconds.",
        "histogram",
    );
    for &op in &OpKind::ALL {
        hist_series(&mut out, "hdnh_op_latency_hist_ns", "op", op.name(), s.op(op));
    }

    family(&mut out, "hdnh_net_cmds_total", "Wire commands served by kind.", "counter");
    for &cmd in &NetCmd::ALL {
        let _ = writeln!(
            out,
            "hdnh_net_cmds_total{{cmd=\"{}\"}} {}",
            cmd.name(),
            s.net(cmd).count()
        );
    }
    family(
        &mut out,
        "hdnh_net_cmd_latency_ns",
        "Wire command service latency quantiles in nanoseconds.",
        "gauge",
    );
    for &cmd in &NetCmd::ALL {
        let h = s.net(cmd);
        for &(q, label) in &QUANTILES {
            let _ = writeln!(
                out,
                "hdnh_net_cmd_latency_ns{{cmd=\"{}\",quantile=\"{label}\"}} {}",
                cmd.name(),
                h.quantile(q)
            );
        }
    }
    family(
        &mut out,
        "hdnh_net_cmd_latency_hist_ns",
        "Wire command service latency histogram in nanoseconds.",
        "histogram",
    );
    for &cmd in &NetCmd::ALL {
        hist_series(
            &mut out,
            "hdnh_net_cmd_latency_hist_ns",
            "cmd",
            cmd.name(),
            s.net(cmd),
        );
    }

    family(
        &mut out,
        "hdnh_slowlog_total",
        "Wire commands that crossed the slow-command threshold.",
        "counter",
    );
    for &cmd in &NetCmd::ALL {
        let _ = writeln!(
            out,
            "hdnh_slowlog_total{{cmd=\"{}\"}} {}",
            cmd.name(),
            s.slowlog(cmd)
        );
    }

    family(&mut out, "hdnh_events_total", "Internal path events by kind.", "counter");
    for &c in &Counter::ALL {
        let _ = writeln!(
            out,
            "hdnh_events_total{{event=\"{}\"}} {}",
            c.name(),
            s.counter(c)
        );
    }

    family(
        &mut out,
        "hdnh_snapshot_taken_total",
        "Crash-consistent snapshots completed.",
        "counter",
    );
    let _ = writeln!(out, "hdnh_snapshot_taken_total {}", s.counter(Counter::SnapshotTaken));
    family(
        &mut out,
        "hdnh_snapshot_failed_total",
        "Snapshot attempts that failed.",
        "counter",
    );
    let _ = writeln!(out, "hdnh_snapshot_failed_total {}", s.counter(Counter::SnapshotFailed));
    family(
        &mut out,
        "hdnh_snapshot_bytes_total",
        "Bytes copied into snapshot directories.",
        "counter",
    );
    let _ = writeln!(out, "hdnh_snapshot_bytes_total {}", s.counter(Counter::SnapshotBytes));
    family(
        &mut out,
        "hdnh_net_spurious_wakeups_total",
        "Reactor event-loop wakeups that found no ready I/O and no due timer.",
        "counter",
    );
    let _ = writeln!(
        out,
        "hdnh_net_spurious_wakeups_total {}",
        s.counter(Counter::NetSpuriousWakeup)
    );

    family(
        &mut out,
        "hdnh_ocf_false_positive_rate",
        "Fraction of OCF fingerprint matches that were false positives.",
        "gauge",
    );
    let _ = writeln!(out, "hdnh_ocf_false_positive_rate {:.6}", s.ocf_false_positive_rate());
    family(
        &mut out,
        "hdnh_hot_hit_rate",
        "Fraction of hot-table searches that hit.",
        "gauge",
    );
    let _ = writeln!(out, "hdnh_hot_hit_rate {:.6}", s.hot_hit_rate());
    family(
        &mut out,
        "hdnh_sync_overlap_win_rate",
        "Fraction of synchronous writes whose DRAM write hid under the NVM write.",
        "gauge",
    );
    let _ = writeln!(out, "hdnh_sync_overlap_win_rate {:.6}", s.sync_overlap_win_rate());

    family(&mut out, "hdnh_phase_runs_total", "Completed runs per maintenance phase.", "counter");
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_runs_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).runs
        );
    }
    family(
        &mut out,
        "hdnh_phase_ns_total",
        "Total nanoseconds spent per maintenance phase.",
        "counter",
    );
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_ns_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).total_ns
        );
    }
    family(
        &mut out,
        "hdnh_phase_last_ns",
        "Duration of the most recent run per maintenance phase.",
        "gauge",
    );
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_last_ns{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).last_ns
        );
    }
    family(
        &mut out,
        "hdnh_phase_items_total",
        "Total work items processed per maintenance phase.",
        "counter",
    );
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_items_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).items
        );
    }
    out
}

/// One line of JSON covering ops, events, derived rates and phases.
pub(crate) fn json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"ops\":{");
    for (i, &op) in OpKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = s.op(op);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"min_ns\":{}}}",
            op.name(),
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
            h.min(),
        );
    }
    out.push_str("},\"net\":{");
    for (i, &cmd) in NetCmd::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = s.net(cmd);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            cmd.name(),
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
        );
    }
    out.push_str("},\"slowlog\":{");
    for (i, &cmd) in NetCmd::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", cmd.name(), s.slowlog(cmd));
    }
    out.push_str("},\"events\":{");
    for (i, &c) in Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), s.counter(c));
    }
    let _ = write!(
        out,
        "}},\"derived\":{{\"total_ops\":{},\"total_slowlog\":{},\"ocf_false_positive_rate\":{:.6},\"hot_hit_rate\":{:.6},\"sync_overlap_win_rate\":{:.6}}},\"phases\":{{",
        s.total_ops(),
        s.total_slowlog(),
        s.ocf_false_positive_rate(),
        s.hot_hit_rate(),
        s.sync_overlap_win_rate(),
    );
    for (i, &p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = s.phase(p);
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"total_ns\":{},\"last_ns\":{},\"max_ns\":{},\"items\":{}}}",
            p.name(),
            ph.runs,
            ph.total_ns,
            ph.last_ns,
            ph.max_ns,
            ph.items,
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsSnapshot;

    #[test]
    fn prometheus_covers_every_family() {
        let text = MetricsSnapshot::empty().to_prometheus();
        for family in [
            "hdnh_ops_total{op=\"get\"}",
            "hdnh_op_latency_ns{op=\"get\",quantile=\"0.5\"}",
            "hdnh_op_latency_ns{op=\"update\",quantile=\"0.99\"}",
            "hdnh_op_latency_ns_max{op=\"remove\"}",
            "hdnh_op_latency_hist_ns_bucket{op=\"get\",le=\"+Inf\"}",
            "hdnh_op_latency_hist_ns_count{op=\"insert\"}",
            "hdnh_net_cmd_latency_hist_ns_bucket{cmd=\"set\",le=\"1024\"}",
            "hdnh_slowlog_total{cmd=\"get\"}",
            "hdnh_events_total{event=\"ocf_false_positive\"}",
            "hdnh_events_total{event=\"seqlock_read_retry\"}",
            "hdnh_events_total{event=\"net_frame_decoded\"}",
            "hdnh_events_total{event=\"delta_baseline_reset\"}",
            "hdnh_net_cmds_total{cmd=\"mget\"}",
            "hdnh_net_cmd_latency_ns{cmd=\"set\",quantile=\"0.999\"}",
            "hdnh_ocf_false_positive_rate",
            "hdnh_hot_hit_rate",
            "hdnh_phase_runs_total{phase=\"resize_rehash\"}",
            "hdnh_phase_items_total{phase=\"recovery_total\"}",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn every_type_line_has_a_help_line() {
        let text = MetricsSnapshot::empty().to_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(i > 0, "TYPE line first: {line}");
                let prev = lines[i - 1];
                assert!(
                    prev.starts_with(&format!("# HELP {name} ")),
                    "TYPE for {name} not preceded by its HELP: {prev}"
                );
            }
        }
    }

    #[test]
    fn json_is_one_line_and_balanced() {
        let j = MetricsSnapshot::empty().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"ops\":{"));
        assert!(j.ends_with("}}"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces: {j}"
        );
        for key in ["\"get\"", "\"net\"", "\"mset\"", "\"slowlog\"", "\"events\"", "\"derived\"", "\"total_ops\"", "\"total_slowlog\"", "\"phases\"", "\"resize_allocate\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
