//! Exposition: Prometheus text format and hand-rolled JSON.
//!
//! Both renderers work from a [`MetricsSnapshot`], so absolute and delta
//! views use the same code path. JSON is emitted as a single line so CLI
//! consumers (and the CI smoke test) can grab it with a one-line match and
//! feed it straight to a JSON parser.

use std::fmt::Write;

use crate::{Counter, MetricsSnapshot, NetCmd, OpKind, Phase};

const QUANTILES: [(f64, &str); 4] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Prometheus text exposition format.
pub(crate) fn prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();

    out.push_str("# TYPE hdnh_ops_total counter\n");
    for &op in &OpKind::ALL {
        let _ = writeln!(
            out,
            "hdnh_ops_total{{op=\"{}\"}} {}",
            op.name(),
            s.op(op).count()
        );
    }

    out.push_str("# TYPE hdnh_op_latency_ns gauge\n");
    for &op in &OpKind::ALL {
        let h = s.op(op);
        for &(q, label) in &QUANTILES {
            let _ = writeln!(
                out,
                "hdnh_op_latency_ns{{op=\"{}\",quantile=\"{label}\"}} {}",
                op.name(),
                h.quantile(q)
            );
        }
    }
    out.push_str("# TYPE hdnh_op_latency_ns_max gauge\n");
    for &op in &OpKind::ALL {
        let _ = writeln!(
            out,
            "hdnh_op_latency_ns_max{{op=\"{}\"}} {}",
            op.name(),
            s.op(op).max()
        );
    }

    out.push_str("# TYPE hdnh_net_cmds_total counter\n");
    for &cmd in &NetCmd::ALL {
        let _ = writeln!(
            out,
            "hdnh_net_cmds_total{{cmd=\"{}\"}} {}",
            cmd.name(),
            s.net(cmd).count()
        );
    }
    out.push_str("# TYPE hdnh_net_cmd_latency_ns gauge\n");
    for &cmd in &NetCmd::ALL {
        let h = s.net(cmd);
        for &(q, label) in &QUANTILES {
            let _ = writeln!(
                out,
                "hdnh_net_cmd_latency_ns{{cmd=\"{}\",quantile=\"{label}\"}} {}",
                cmd.name(),
                h.quantile(q)
            );
        }
    }

    out.push_str("# TYPE hdnh_events_total counter\n");
    for &c in &Counter::ALL {
        let _ = writeln!(
            out,
            "hdnh_events_total{{event=\"{}\"}} {}",
            c.name(),
            s.counter(c)
        );
    }

    out.push_str("# TYPE hdnh_ocf_false_positive_rate gauge\n");
    let _ = writeln!(out, "hdnh_ocf_false_positive_rate {:.6}", s.ocf_false_positive_rate());
    out.push_str("# TYPE hdnh_hot_hit_rate gauge\n");
    let _ = writeln!(out, "hdnh_hot_hit_rate {:.6}", s.hot_hit_rate());
    out.push_str("# TYPE hdnh_sync_overlap_win_rate gauge\n");
    let _ = writeln!(out, "hdnh_sync_overlap_win_rate {:.6}", s.sync_overlap_win_rate());

    out.push_str("# TYPE hdnh_phase_runs_total counter\n");
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_runs_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).runs
        );
    }
    out.push_str("# TYPE hdnh_phase_ns_total counter\n");
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_ns_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).total_ns
        );
    }
    out.push_str("# TYPE hdnh_phase_last_ns gauge\n");
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_last_ns{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).last_ns
        );
    }
    out.push_str("# TYPE hdnh_phase_items_total counter\n");
    for &p in &Phase::ALL {
        let _ = writeln!(
            out,
            "hdnh_phase_items_total{{phase=\"{}\"}} {}",
            p.name(),
            s.phase(p).items
        );
    }
    out
}

/// One line of JSON covering ops, events, derived rates and phases.
pub(crate) fn json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"ops\":{");
    for (i, &op) in OpKind::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = s.op(op);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"min_ns\":{}}}",
            op.name(),
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
            h.min(),
        );
    }
    out.push_str("},\"net\":{");
    for (i, &cmd) in NetCmd::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let h = s.net(cmd);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            cmd.name(),
            h.count(),
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.quantile(0.999),
            h.max(),
        );
    }
    out.push_str("},\"events\":{");
    for (i, &c) in Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), s.counter(c));
    }
    let _ = write!(
        out,
        "}},\"derived\":{{\"total_ops\":{},\"ocf_false_positive_rate\":{:.6},\"hot_hit_rate\":{:.6},\"sync_overlap_win_rate\":{:.6}}},\"phases\":{{",
        s.total_ops(),
        s.ocf_false_positive_rate(),
        s.hot_hit_rate(),
        s.sync_overlap_win_rate(),
    );
    for (i, &p) in Phase::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = s.phase(p);
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"total_ns\":{},\"last_ns\":{},\"max_ns\":{},\"items\":{}}}",
            p.name(),
            ph.runs,
            ph.total_ns,
            ph.last_ns,
            ph.max_ns,
            ph.items,
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsSnapshot;

    #[test]
    fn prometheus_covers_every_family() {
        let text = MetricsSnapshot::empty().to_prometheus();
        for family in [
            "hdnh_ops_total{op=\"get\"}",
            "hdnh_op_latency_ns{op=\"get\",quantile=\"0.5\"}",
            "hdnh_op_latency_ns{op=\"update\",quantile=\"0.99\"}",
            "hdnh_op_latency_ns_max{op=\"remove\"}",
            "hdnh_events_total{event=\"ocf_false_positive\"}",
            "hdnh_events_total{event=\"seqlock_read_retry\"}",
            "hdnh_events_total{event=\"net_frame_decoded\"}",
            "hdnh_net_cmds_total{cmd=\"mget\"}",
            "hdnh_net_cmd_latency_ns{cmd=\"set\",quantile=\"0.999\"}",
            "hdnh_ocf_false_positive_rate",
            "hdnh_hot_hit_rate",
            "hdnh_phase_runs_total{phase=\"resize_rehash\"}",
            "hdnh_phase_items_total{phase=\"recovery_total\"}",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn json_is_one_line_and_balanced() {
        let j = MetricsSnapshot::empty().to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"ops\":{"));
        assert!(j.ends_with("}}"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces: {j}"
        );
        for key in ["\"get\"", "\"net\"", "\"mset\"", "\"events\"", "\"derived\"", "\"total_ops\"", "\"phases\"", "\"resize_allocate\""] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
