//! Process-wide observability registry for the HDNH stack.
//!
//! Every claim in the paper is an observability claim — the OCF exists to
//! drive NVM block reads per probe toward zero, RAFL exists to keep the
//! hot-table hit rate high, and the optimistic seqlock read is only
//! "read-efficient" if retries stay negligible. This crate makes those
//! quantities observable at runtime with three primitive kinds:
//!
//! * **[`Counter`]s** — monotonic event counts (OCF outcomes, hot-table
//!   hits, seqlock retries, …), sharded across a small fixed set of slots
//!   indexed by a per-thread id so concurrent increments do not contend on
//!   one cacheline.
//! * **Per-op latency histograms** — one sharded
//!   [`AtomicHistogram`](hist::AtomicHistogram) per [`OpKind`], log-linear
//!   (HdrHistogram-style) with p50/p90/p99/p999 + exact max.
//! * **[`Phase`] spans** — duration + item counts for rare long-running
//!   phases (the three resize phases, recovery, verification).
//!
//! The registry is process-global and **disabled by default**. Every
//! instrumentation site is gated on one relaxed atomic load (the same
//! pattern as the crash-point registry in `hdnh-nvm`'s `fault` module), so
//! a build that never calls [`set_enabled`] pays one predictable branch per
//! site and nothing else. [`snapshot`] merges all shards into a
//! [`MetricsSnapshot`] that can be diffed ([`MetricsSnapshot::since`]) and
//! rendered as Prometheus text or JSON.
//!
//! Because the registry is global, tests that assert exact counts must
//! serialize against other threads recording metrics (see
//! `tests/metrics_accounting.rs` in the workspace root).

#![warn(missing_docs)]

pub mod hist;
pub mod trace;

mod expo;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use hist::{AtomicHistogram, HistSnapshot};

/// Number of counter/histogram shards. Threads are striped across shards
/// by a monotonically assigned id; 8 shards is plenty for the thread
/// counts the benches use while keeping snapshot merges cheap.
const SHARDS: usize = 8;

// ---------------------------------------------------------------------------
// Metric identifiers
// ---------------------------------------------------------------------------

/// Monotonic event counters, one per observable path decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// OCF fingerprint matched and the NVM record's key matched too.
    OcfTrueMatch = 0,
    /// OCF fingerprint matched but the NVM record's key differed — the
    /// probe paid an NVM block read for nothing.
    OcfFalsePositive,
    /// OCF fingerprint mismatch let a probe skip the NVM read entirely.
    OcfNegativeShortCircuit,
    /// Optimistic OCF read had to retry because the entry version moved.
    SeqlockReadRetry,
    /// An opmap (OCF busy-bit) lock attempt failed: slot busy or CAS lost.
    OpmapCasFail,
    /// Hot-table search hit.
    HotHit,
    /// Hot-table search miss.
    HotMiss,
    /// RAFL eviction of a cold (hot-bit clear) victim.
    HotEvictCold,
    /// RAFL eviction of a random victim (all candidates were hot).
    HotEvictRandom,
    /// RAFL cleared a bucket's hot bits after a random eviction.
    HotHotmapClear,
    /// Hot-table insert abandoned (victim slot contended).
    HotPutSkip,
    /// Synchronous-write overlap won: the DRAM write finished under the
    /// NVM write and the foreground thread never spun.
    SyncOverlapWin,
    /// Synchronous-write overlap lost: the foreground thread had to spin
    /// for the background writer.
    SyncOverlapWait,
    /// One bounded-exponential-backoff round spent waiting on a busy
    /// opmap slot (each round is 2^k spin-loop hints, capped).
    OpmapBackoffRound,
    /// A record's bytes failed their header checksum on read/scan.
    CorruptionDetected,
    /// A corrupted slot was rewritten from the DRAM hot-table copy.
    CorruptionRepaired,
    /// A corrupted slot had no clean copy and was quarantined (valid bit
    /// cleared; the record is reported lost rather than served).
    CorruptionQuarantined,
    /// A lock-free read validated its epoch snapshot after the probe,
    /// found a resize had superseded it, and retried on the new snapshot.
    SnapshotRetry,
    /// The table's maintenance mutex was acquired (resize, scrub,
    /// integrity verification, crash hooks). The lock-free read and write
    /// paths never touch it — a read/write-heavy run showing this at zero
    /// is the "no global lock on the hot path" acceptance signal.
    MaintenanceLock,
    /// One complete RESP request frame was decoded off a connection.
    NetFrameDecoded,
    /// A connection's byte stream violated the RESP framing grammar (bad
    /// type byte, bad length, oversized frame); the connection is closed.
    NetProtocolError,
    /// Bytes read from client sockets.
    NetBytesIn,
    /// Bytes written to client sockets.
    NetBytesOut,
    /// Connections accepted and served.
    NetConnAccepted,
    /// Connections rejected because the connection budget was exhausted.
    NetConnRejected,
    /// Well-framed requests naming a command the server does not speak
    /// (answered with an error reply; the connection stays open).
    NetUnknownCmd,
    /// Reactor event-loop iterations that found no ready I/O and no due
    /// timer — pure scheduling overhead. Idle connections must not
    /// produce these: the loop sleeps until the next real deadline, so a
    /// server full of quiet connections shows ~0 here.
    NetSpuriousWakeup,
    /// A `metrics delta` consumer observed the registry rewound beneath its
    /// baseline (a reset happened between two delta reads) and rebased.
    DeltaBaselineReset,
    /// Crash-consistent snapshots (backups) completed successfully.
    SnapshotTaken,
    /// Snapshot attempts that failed (I/O error, wrong backend, pending
    /// pool fault).
    SnapshotFailed,
    /// Total bytes copied into snapshot directories by successful backups.
    SnapshotBytes,
    /// Values written inline in the 15-byte slot (≤ the inline budget).
    VlogInlineWrites,
    /// Values spilled to the value log (slot stores a packed pointer).
    VlogSpillWrites,
    /// Records appended to value-log segments (spills + GC relocations).
    VlogAppends,
    /// Spilled values materialized from the value log on read.
    VlogReads,
    /// A spilled read found its segment retired mid-probe and re-probed
    /// the index (the GC's lock-free hand-off, not an error).
    VlogReadRetries,
    /// Bytes of garbage reclaimed by value-log compaction.
    VlogGcBytesReclaimed,
    /// Value-log segments retired (unmapped and deleted) by compaction.
    VlogGcSegmentsRetired,
    /// Live records relocated out of victim segments by compaction.
    VlogGcRecordsRelocated,
}

impl Counter {
    /// Every counter, in exposition order.
    pub const ALL: [Counter; 39] = [
        Counter::OcfTrueMatch,
        Counter::OcfFalsePositive,
        Counter::OcfNegativeShortCircuit,
        Counter::SeqlockReadRetry,
        Counter::OpmapCasFail,
        Counter::HotHit,
        Counter::HotMiss,
        Counter::HotEvictCold,
        Counter::HotEvictRandom,
        Counter::HotHotmapClear,
        Counter::HotPutSkip,
        Counter::SyncOverlapWin,
        Counter::SyncOverlapWait,
        Counter::OpmapBackoffRound,
        Counter::CorruptionDetected,
        Counter::CorruptionRepaired,
        Counter::CorruptionQuarantined,
        Counter::SnapshotRetry,
        Counter::MaintenanceLock,
        Counter::NetFrameDecoded,
        Counter::NetProtocolError,
        Counter::NetBytesIn,
        Counter::NetBytesOut,
        Counter::NetConnAccepted,
        Counter::NetConnRejected,
        Counter::NetUnknownCmd,
        Counter::NetSpuriousWakeup,
        Counter::DeltaBaselineReset,
        Counter::SnapshotTaken,
        Counter::SnapshotFailed,
        Counter::SnapshotBytes,
        Counter::VlogInlineWrites,
        Counter::VlogSpillWrites,
        Counter::VlogAppends,
        Counter::VlogReads,
        Counter::VlogReadRetries,
        Counter::VlogGcBytesReclaimed,
        Counter::VlogGcSegmentsRetired,
        Counter::VlogGcRecordsRelocated,
    ];

    /// Stable snake_case name used in exposition.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OcfTrueMatch => "ocf_true_match",
            Counter::OcfFalsePositive => "ocf_false_positive",
            Counter::OcfNegativeShortCircuit => "ocf_negative_short_circuit",
            Counter::SeqlockReadRetry => "seqlock_read_retry",
            Counter::OpmapCasFail => "opmap_cas_fail",
            Counter::HotHit => "hot_hit",
            Counter::HotMiss => "hot_miss",
            Counter::HotEvictCold => "hot_evict_cold",
            Counter::HotEvictRandom => "hot_evict_random",
            Counter::HotHotmapClear => "hot_hotmap_clear",
            Counter::HotPutSkip => "hot_put_skip",
            Counter::SyncOverlapWin => "sync_overlap_win",
            Counter::SyncOverlapWait => "sync_overlap_wait",
            Counter::OpmapBackoffRound => "opmap_backoff_round",
            Counter::CorruptionDetected => "corruption_detected",
            Counter::CorruptionRepaired => "corruption_repaired",
            Counter::CorruptionQuarantined => "corruption_quarantined",
            Counter::SnapshotRetry => "snapshot_retry",
            Counter::MaintenanceLock => "maintenance_lock",
            Counter::NetFrameDecoded => "net_frame_decoded",
            Counter::NetProtocolError => "net_protocol_error",
            Counter::NetBytesIn => "net_bytes_in",
            Counter::NetBytesOut => "net_bytes_out",
            Counter::NetConnAccepted => "net_conn_accepted",
            Counter::NetConnRejected => "net_conn_rejected",
            Counter::NetUnknownCmd => "net_unknown_cmd",
            Counter::NetSpuriousWakeup => "net_spurious_wakeups",
            Counter::DeltaBaselineReset => "delta_baseline_reset",
            Counter::SnapshotTaken => "snapshot_taken",
            Counter::SnapshotFailed => "snapshot_failed",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::VlogInlineWrites => "vlog_inline_writes",
            Counter::VlogSpillWrites => "vlog_spill_writes",
            Counter::VlogAppends => "vlog_appends",
            Counter::VlogReads => "vlog_reads",
            Counter::VlogReadRetries => "vlog_read_retries",
            Counter::VlogGcBytesReclaimed => "vlog_gc_bytes_reclaimed",
            Counter::VlogGcSegmentsRetired => "vlog_gc_segments_retired",
            Counter::VlogGcRecordsRelocated => "vlog_gc_records_relocated",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();

/// The four public table operations, each with its own latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum OpKind {
    /// Point lookup.
    Get = 0,
    /// Insert of a new key.
    Insert,
    /// In-place update of an existing key.
    Update,
    /// Removal.
    Remove,
}

impl OpKind {
    /// Every op kind, in exposition order.
    pub const ALL: [OpKind; 4] = [OpKind::Get, OpKind::Insert, OpKind::Update, OpKind::Remove];

    /// Stable name used in exposition labels.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Remove => "remove",
        }
    }
}

const N_OPS: usize = OpKind::ALL.len();

/// The wire-protocol commands served by `hdnh-server`, each with its own
/// service-latency histogram (decode-to-encode, excluding socket time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum NetCmd {
    /// `PING [msg]` liveness probe.
    Ping = 0,
    /// `GET key` point lookup.
    Get,
    /// `SET key value` upsert.
    Set,
    /// `DEL key [key ...]` removal.
    Del,
    /// `EXISTS key [key ...]` membership probe.
    Exists,
    /// `MGET key [key ...]` batched lookup.
    MGet,
    /// `MSET key value [key value ...]` batched upsert.
    MSet,
    /// `INFO` table geometry and server state.
    Info,
    /// `SCRUB` on-demand checksum scrub.
    Scrub,
    /// `METRICS [JSON|PROM]` registry exposition.
    Metrics,
    /// `SHUTDOWN` graceful drain.
    Shutdown,
    /// `BACKUP dir` crash-consistent snapshot into a server-side directory.
    Backup,
    /// `COMPACT` value-log garbage collection pass.
    Compact,
}

impl NetCmd {
    /// Every wire command, in exposition order.
    pub const ALL: [NetCmd; 13] = [
        NetCmd::Ping,
        NetCmd::Get,
        NetCmd::Set,
        NetCmd::Del,
        NetCmd::Exists,
        NetCmd::MGet,
        NetCmd::MSet,
        NetCmd::Info,
        NetCmd::Scrub,
        NetCmd::Metrics,
        NetCmd::Shutdown,
        NetCmd::Backup,
        NetCmd::Compact,
    ];

    /// Stable name used in exposition labels (matches the wire spelling,
    /// lowercased).
    pub fn name(self) -> &'static str {
        match self {
            NetCmd::Ping => "ping",
            NetCmd::Get => "get",
            NetCmd::Set => "set",
            NetCmd::Del => "del",
            NetCmd::Exists => "exists",
            NetCmd::MGet => "mget",
            NetCmd::MSet => "mset",
            NetCmd::Info => "info",
            NetCmd::Scrub => "scrub",
            NetCmd::Metrics => "metrics",
            NetCmd::Shutdown => "shutdown",
            NetCmd::Backup => "backup",
            NetCmd::Compact => "compact",
        }
    }
}

const N_NET: usize = NetCmd::ALL.len();

/// Rare long-running phases measured as spans (duration + items).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Resize phase 1: plan + allocate the new level pair.
    ResizeAllocate = 0,
    /// Resize phase 2: rehash the old bottom level (items = records moved).
    ResizeRehash,
    /// Resize phase 3: persist the level swap and retire the old region.
    ResizeSwap,
    /// Recovery: resuming an interrupted resize (items = records moved).
    RecoveryResume,
    /// Recovery: rebuilding the DRAM OCF + hot table (items = live records).
    RecoveryRebuild,
    /// Recovery end to end (items = live records).
    RecoveryTotal,
    /// Full integrity audit (items = live records).
    Verify,
    /// One crash-point exploration sweep (items = cases executed).
    FaultExplore,
    /// One scrub pass over both levels (items = live slots verified).
    Scrub,
    /// One value-log compaction pass (items = live records relocated).
    VlogGc,
}

impl Phase {
    /// Every phase, in exposition order.
    pub const ALL: [Phase; 10] = [
        Phase::ResizeAllocate,
        Phase::ResizeRehash,
        Phase::ResizeSwap,
        Phase::RecoveryResume,
        Phase::RecoveryRebuild,
        Phase::RecoveryTotal,
        Phase::Verify,
        Phase::FaultExplore,
        Phase::Scrub,
        Phase::VlogGc,
    ];

    /// Stable name used in exposition labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ResizeAllocate => "resize_allocate",
            Phase::ResizeRehash => "resize_rehash",
            Phase::ResizeSwap => "resize_swap",
            Phase::RecoveryResume => "recovery_resume",
            Phase::RecoveryRebuild => "recovery_rebuild",
            Phase::RecoveryTotal => "recovery_total",
            Phase::Verify => "verify",
            Phase::FaultExplore => "fault_explore",
            Phase::Scrub => "scrub",
            Phase::VlogGc => "vlog_gc",
        }
    }
}

const N_PHASES: usize = Phase::ALL.len();

// ---------------------------------------------------------------------------
// Global storage
// ---------------------------------------------------------------------------

struct CounterShard {
    vals: [AtomicU64; N_COUNTERS],
    // Pad each shard past a cacheline pair so neighbouring shards (and
    // therefore unrelated threads) never false-share.
    _pad: [u64; 3],
}

impl CounterShard {
    const fn new() -> Self {
        CounterShard {
            vals: [const { AtomicU64::new(0) }; N_COUNTERS],
            _pad: [0; 3],
        }
    }
}

static COUNTERS: [CounterShard; SHARDS] = [const { CounterShard::new() }; SHARDS];

static OP_HISTS: [[AtomicHistogram; N_OPS]; SHARDS] =
    [const { [const { AtomicHistogram::new() }; N_OPS] }; SHARDS];

static NET_HISTS: [[AtomicHistogram; N_NET]; SHARDS] =
    [const { [const { AtomicHistogram::new() }; N_NET] }; SHARDS];

struct PhaseCell {
    runs: AtomicU64,
    total_ns: AtomicU64,
    last_ns: AtomicU64,
    max_ns: AtomicU64,
    items: AtomicU64,
}

impl PhaseCell {
    const fn new() -> Self {
        PhaseCell {
            runs: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            last_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            items: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            runs: self.runs.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            last_ns: self.last_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.runs.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.last_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.items.store(0, Ordering::Relaxed);
    }
}

static PHASES: [PhaseCell; N_PHASES] = [const { PhaseCell::new() }; N_PHASES];

/// Slow-command log counters, one per wire command. Unsharded: entries are
/// rare by definition (each one crossed the slow threshold).
static SLOWLOG: [AtomicU64; N_NET] = [const { AtomicU64::new(0) }; N_NET];

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn shard() -> usize {
    SHARD.with(|s| *s)
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// Whether the registry is recording. One relaxed load — this is the whole
/// disabled-path cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Increments `c` by one (no-op while disabled).
#[inline]
pub fn count(c: Counter) {
    if !enabled() {
        return;
    }
    add_slow(c, 1);
}

/// Increments `c` by `n` (no-op while disabled).
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() {
        return;
    }
    add_slow(c, n);
}

#[cold]
fn add_slow(c: Counter, n: u64) {
    COUNTERS[shard()].vals[c as usize].fetch_add(n, Ordering::Relaxed);
    // A handful of counters are also timeline events: the flight recorder
    // wants *when* a corruption was found or a connection turned away, not
    // just how many. Mapping them here keeps every emission site DRY.
    let kind = match c {
        Counter::CorruptionDetected => trace::EventKind::CorruptionDetected,
        Counter::CorruptionRepaired => trace::EventKind::CorruptionRepaired,
        Counter::CorruptionQuarantined => trace::EventKind::CorruptionQuarantined,
        Counter::NetConnAccepted => trace::EventKind::ConnAccepted,
        Counter::NetConnRejected => trace::EventKind::ConnRejected,
        _ => return,
    };
    trace::emit(kind, 0, n);
}

/// Starts an op latency measurement; `None` while disabled, so the
/// disabled path never reads the clock.
#[inline]
pub fn op_start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Completes an op latency measurement started with [`op_start`].
#[inline]
pub fn op_record(op: OpKind, started: Option<Instant>) {
    if let Some(t) = started {
        op_record_slow(op, t.elapsed().as_nanos() as u64);
    }
}

/// Records a pre-measured op latency in nanoseconds (no-op while disabled).
#[inline]
pub fn op_record_ns(op: OpKind, ns: u64) {
    if !enabled() {
        return;
    }
    op_record_slow(op, ns);
}

#[cold]
fn op_record_slow(op: OpKind, ns: u64) {
    OP_HISTS[shard()][op as usize].record(ns);
    trace::note_op_latency(op, ns);
}

/// Completes a wire-command service-latency measurement started with
/// [`op_start`] (the same clock gate applies).
#[inline]
pub fn net_record(cmd: NetCmd, started: Option<Instant>) {
    if let Some(t) = started {
        net_record_slow(cmd, t.elapsed().as_nanos() as u64);
    }
}

/// Records a pre-measured wire-command service latency in nanoseconds
/// (no-op while disabled).
#[inline]
pub fn net_record_ns(cmd: NetCmd, ns: u64) {
    if !enabled() {
        return;
    }
    net_record_slow(cmd, ns);
}

#[cold]
fn net_record_slow(cmd: NetCmd, ns: u64) {
    NET_HISTS[shard()][cmd as usize].record(ns);
    if trace::note_cmd_latency(cmd, ns) {
        SLOWLOG[cmd as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Starts a phase span; `None` while disabled.
#[inline]
pub fn phase_start() -> Option<Instant> {
    op_start()
}

/// Starts a phase span *and* stamps a [`trace::EventKind::PhaseEnter`]
/// event into the flight recorder, so the phase's position in the
/// timeline (not just its duration) is reconstructible. Prefer this over
/// [`phase_start`] at sites that know their phase up front.
#[inline]
pub fn phase_enter(p: Phase) -> Option<Instant> {
    if !enabled() {
        return None;
    }
    trace::emit(trace::EventKind::PhaseEnter, p as u32, 0);
    Some(Instant::now())
}

/// Completes a phase span started with [`phase_start`]. `items` is the
/// phase's work unit (records moved, cases run, …); pass 0 when
/// meaningless.
#[inline]
pub fn phase_record(p: Phase, started: Option<Instant>, items: u64) {
    if let Some(t) = started {
        phase_apply(p, t.elapsed().as_nanos() as u64, items);
    }
}

/// Records a pre-measured phase span (no-op while disabled). For callers
/// that already time the phase for their own reporting.
#[inline]
pub fn phase_record_ns(p: Phase, ns: u64, items: u64) {
    if !enabled() {
        return;
    }
    phase_apply(p, ns, items);
}

#[cold]
fn phase_apply(p: Phase, ns: u64, items: u64) {
    trace::emit(trace::EventKind::PhaseExit, p as u32, ns);
    let cell = &PHASES[p as usize];
    cell.runs.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    cell.last_ns.store(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
    cell.items.fetch_add(items, Ordering::Relaxed);
}

/// Zeroes every counter, histogram and phase cell.
pub fn reset() {
    for sh in &COUNTERS {
        for v in &sh.vals {
            v.store(0, Ordering::Relaxed);
        }
    }
    for row in &OP_HISTS {
        for h in row {
            h.reset();
        }
    }
    for row in &NET_HISTS {
        for h in row {
            h.reset();
        }
    }
    for s in &SLOWLOG {
        s.store(0, Ordering::Relaxed);
    }
    for p in &PHASES {
        p.reset();
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of one [`Phase`]'s span cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Completed runs of the phase.
    pub runs: u64,
    /// Total nanoseconds across all runs.
    pub total_ns: u64,
    /// Duration of the most recent run.
    pub last_ns: u64,
    /// Longest single run.
    pub max_ns: u64,
    /// Total work items across all runs.
    pub items: u64,
}

impl PhaseSnapshot {
    /// Span activity between `earlier` and `self`. `runs`, `total_ns` and
    /// `items` subtract exactly; `last_ns` is the latest run's duration and
    /// `max_ns` the all-time max (a window max is not derivable from two
    /// endpoints).
    pub fn since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        PhaseSnapshot {
            runs: self.runs.saturating_sub(earlier.runs),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            last_ns: self.last_ns,
            max_ns: self.max_ns,
            items: self.items.saturating_sub(earlier.items),
        }
    }

    /// Mean run duration in nanoseconds, 0.0 when no runs completed.
    pub fn mean_ns(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.runs as f64
        }
    }
}

/// A merged point-in-time copy of the whole registry.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    counters: Vec<u64>,
    ops: Vec<HistSnapshot>,
    net: Vec<HistSnapshot>,
    slowlog: Vec<u64>,
    phases: Vec<PhaseSnapshot>,
}

impl MetricsSnapshot {
    /// An all-zero snapshot (baseline for deltas).
    pub fn empty() -> Self {
        MetricsSnapshot {
            counters: vec![0; N_COUNTERS],
            ops: (0..N_OPS).map(|_| HistSnapshot::empty()).collect(),
            net: (0..N_NET).map(|_| HistSnapshot::empty()).collect(),
            slowlog: vec![0; N_NET],
            phases: vec![PhaseSnapshot::default(); N_PHASES],
        }
    }

    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Latency histogram of one op kind.
    pub fn op(&self, op: OpKind) -> &HistSnapshot {
        &self.ops[op as usize]
    }

    /// Service-latency histogram of one wire command.
    pub fn net(&self, cmd: NetCmd) -> &HistSnapshot {
        &self.net[cmd as usize]
    }

    /// Slow-command log count of one wire command (commands that crossed
    /// the [`trace::set_slow_cmd_threshold_ns`] threshold).
    pub fn slowlog(&self, cmd: NetCmd) -> u64 {
        self.slowlog[cmd as usize]
    }

    /// Total slow-command log entries across all commands.
    pub fn total_slowlog(&self) -> u64 {
        self.slowlog.iter().sum()
    }

    /// Whether any monotonic quantity in `self` is *below* `earlier` — the
    /// signature of a registry reset between the two snapshots. A delta
    /// consumer observing this must rebase rather than trust a clamped
    /// (all-zero) difference.
    pub fn regressed_from(&self, earlier: &MetricsSnapshot) -> bool {
        self.counters.iter().zip(&earlier.counters).any(|(a, b)| a < b)
            || self
                .ops
                .iter()
                .zip(&earlier.ops)
                .any(|(a, b)| a.count() < b.count())
            || self
                .net
                .iter()
                .zip(&earlier.net)
                .any(|(a, b)| a.count() < b.count())
            || self.slowlog.iter().zip(&earlier.slowlog).any(|(a, b)| a < b)
            || self
                .phases
                .iter()
                .zip(&earlier.phases)
                .any(|(a, b)| a.runs < b.runs)
    }

    /// Total wire commands served across all command histograms — by
    /// construction the number of decoded frames dispatched to a known
    /// command (unknown commands are counted by
    /// [`Counter::NetUnknownCmd`] instead).
    pub fn total_net_cmds(&self) -> u64 {
        self.net.iter().map(|h| h.count()).sum()
    }

    /// Span cell of one phase.
    pub fn phase(&self, p: Phase) -> &PhaseSnapshot {
        &self.phases[p as usize]
    }

    /// Total operations across all four histograms — by construction equal
    /// to the number of completed public table ops recorded.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|h| h.count()).sum()
    }

    /// Fraction of OCF fingerprint matches whose NVM read found a
    /// different key: `false_positive / (false_positive + true_match)`.
    /// 0.0 when no matches occurred.
    pub fn ocf_false_positive_rate(&self) -> f64 {
        ratio(
            self.counter(Counter::OcfFalsePositive),
            self.counter(Counter::OcfFalsePositive) + self.counter(Counter::OcfTrueMatch),
        )
    }

    /// Fraction of hot-table searches that hit: `hit / (hit + miss)`.
    /// 0.0 when no searches occurred.
    pub fn hot_hit_rate(&self) -> f64 {
        ratio(
            self.counter(Counter::HotHit),
            self.counter(Counter::HotHit) + self.counter(Counter::HotMiss),
        )
    }

    /// Fraction of synchronous writes where the DRAM write finished under
    /// the NVM write: `win / (win + wait)`. 0.0 when none occurred.
    pub fn sync_overlap_win_rate(&self) -> f64 {
        ratio(
            self.counter(Counter::SyncOverlapWin),
            self.counter(Counter::SyncOverlapWin) + self.counter(Counter::SyncOverlapWait),
        )
    }

    /// Activity between `earlier` and `self` (see the `since` methods of
    /// the component types for exactness guarantees).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .zip(&earlier.counters)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            ops: self
                .ops
                .iter()
                .zip(&earlier.ops)
                .map(|(a, b)| a.since(b))
                .collect(),
            net: self
                .net
                .iter()
                .zip(&earlier.net)
                .map(|(a, b)| a.since(b))
                .collect(),
            slowlog: self
                .slowlog
                .iter()
                .zip(&earlier.slowlog)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            phases: self
                .phases
                .iter()
                .zip(&earlier.phases)
                .map(|(a, b)| a.since(b))
                .collect(),
        }
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        expo::prometheus(self)
    }

    /// Renders the snapshot as one line of JSON.
    pub fn to_json(&self) -> String {
        expo::json(self)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Merges every shard into one [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    let mut counters = vec![0u64; N_COUNTERS];
    for sh in &COUNTERS {
        for (acc, v) in counters.iter_mut().zip(&sh.vals) {
            *acc += v.load(Ordering::Relaxed);
        }
    }
    let ops = (0..N_OPS)
        .map(|i| {
            let mut merged = HistSnapshot::empty();
            for row in &OP_HISTS {
                merged.merge(&row[i].snapshot());
            }
            merged
        })
        .collect();
    let net = (0..N_NET)
        .map(|i| {
            let mut merged = HistSnapshot::empty();
            for row in &NET_HISTS {
                merged.merge(&row[i].snapshot());
            }
            merged
        })
        .collect();
    let slowlog = SLOWLOG.iter().map(|s| s.load(Ordering::Relaxed)).collect();
    let phases = PHASES.iter().map(PhaseCell::snapshot).collect();
    MetricsSnapshot {
        counters,
        ops,
        net,
        slowlog,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global, so tests that enable/reset it must
    /// not run concurrently with each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = exclusive();
        reset();
        set_enabled(false);
        count(Counter::HotHit);
        add(Counter::HotMiss, 10);
        op_record_ns(OpKind::Get, 100);
        assert!(op_start().is_none());
        phase_record_ns(Phase::Verify, 1_000, 5);
        let s = snapshot();
        assert_eq!(s.counter(Counter::HotHit), 0);
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.phase(Phase::Verify).runs, 0);
    }

    #[test]
    fn counter_and_phase_roundtrip() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        count(Counter::OcfTrueMatch);
        add(Counter::OcfFalsePositive, 3);
        op_record_ns(OpKind::Insert, 500);
        op_record_ns(OpKind::Insert, 700);
        phase_record_ns(Phase::ResizeRehash, 10_000, 42);
        phase_record_ns(Phase::ResizeRehash, 20_000, 8);
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.counter(Counter::OcfTrueMatch), 1);
        assert_eq!(s.counter(Counter::OcfFalsePositive), 3);
        assert_eq!(s.op(OpKind::Insert).count(), 2);
        assert_eq!(s.op(OpKind::Insert).sum(), 1_200);
        assert_eq!(s.ocf_false_positive_rate(), 0.75);
        let ph = s.phase(Phase::ResizeRehash);
        assert_eq!(ph.runs, 2);
        assert_eq!(ph.total_ns, 30_000);
        assert_eq!(ph.last_ns, 20_000);
        assert_eq!(ph.max_ns, 20_000);
        assert_eq!(ph.items, 50);
        assert_eq!(ph.mean_ns(), 15_000.0);
        reset();
        assert_eq!(snapshot().total_ops(), 0);
    }

    #[test]
    fn since_diffs_counters_and_ops() {
        let _g = exclusive();
        reset();
        set_enabled(true);
        count(Counter::HotHit);
        op_record_ns(OpKind::Get, 100);
        let base = snapshot();
        count(Counter::HotHit);
        count(Counter::HotMiss);
        op_record_ns(OpKind::Get, 200);
        op_record_ns(OpKind::Update, 300);
        let delta = snapshot().since(&base);
        set_enabled(false);
        assert_eq!(delta.counter(Counter::HotHit), 1);
        assert_eq!(delta.counter(Counter::HotMiss), 1);
        assert_eq!(delta.op(OpKind::Get).count(), 1);
        assert_eq!(delta.op(OpKind::Update).count(), 1);
        assert_eq!(delta.total_ops(), 2);
        assert_eq!(delta.hot_hit_rate(), 0.5);
        reset();
    }

    /// Satellite: N writer threads + concurrent snapshot merges. Counter
    /// totals must be exact and histogram populations conserved.
    #[test]
    fn concurrent_writers_and_snapshots_are_exact() {
        let _g = exclusive();
        reset();
        set_enabled(true);

        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            let writers: Vec<_> = (0..THREADS)
                .map(|t| {
                    s.spawn(move || {
                        for i in 0..PER_THREAD {
                            let c = Counter::ALL[(i as usize + t) % Counter::ALL.len()];
                            count(c);
                            let op = OpKind::ALL[(i as usize) % OpKind::ALL.len()];
                            // Deterministic pseudo-latencies spanning magnitudes.
                            op_record_ns(op, (i * 2654435761) % 1_000_000 + 1);
                        }
                    })
                })
                .collect();
            // Concurrent snapshotter: totals must be monotonic and never
            // exceed the final population.
            let stop_ref = &stop;
            s.spawn(move || {
                let mut prev_ops = 0u64;
                let mut prev_events: u64 = 0;
                while !stop_ref.load(Ordering::Relaxed) {
                    let snap = snapshot();
                    let ops = snap.total_ops();
                    let events: u64 = Counter::ALL.iter().map(|&c| snap.counter(c)).sum();
                    assert!(ops >= prev_ops, "op population went backwards");
                    assert!(events >= prev_events, "counter total went backwards");
                    assert!(ops <= THREADS as u64 * PER_THREAD);
                    assert!(events <= THREADS as u64 * PER_THREAD);
                    prev_ops = ops;
                    prev_events = events;
                }
            });
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });

        let snap = snapshot();
        set_enabled(false);

        // Counters: each thread spreads PER_THREAD increments round-robin
        // starting at its own offset, so the total per counter is exact.
        let mut expected = [0u64; Counter::ALL.len()];
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                expected[(i as usize + t) % Counter::ALL.len()] += 1;
            }
        }
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(snap.counter(c), expected[i], "counter {}", c.name());
        }

        // Histograms: population and value-sum conserved exactly.
        assert_eq!(snap.total_ops(), THREADS as u64 * PER_THREAD);
        let mut expected_per_op = [0u64; OpKind::ALL.len()];
        let mut expected_sum = [0u64; OpKind::ALL.len()];
        for _ in 0..THREADS {
            for i in 0..PER_THREAD {
                let k = (i as usize) % OpKind::ALL.len();
                expected_per_op[k] += 1;
                expected_sum[k] += (i * 2654435761) % 1_000_000 + 1;
            }
        }
        for (i, &op) in OpKind::ALL.iter().enumerate() {
            assert_eq!(snap.op(op).count(), expected_per_op[i], "op {}", op.name());
            assert_eq!(snap.op(op).sum(), expected_sum[i], "sum {}", op.name());
        }
        reset();
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(OpKind::ALL.iter().map(|o| o.name()));
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count, "duplicate metric name");
        // NetCmd labels live in their own metric families (they may reuse
        // op names like "get") but must be unique among themselves.
        let mut net: Vec<&str> = NetCmd::ALL.iter().map(|c| c.name()).collect();
        let n = net.len();
        net.sort_unstable();
        net.dedup();
        assert_eq!(net.len(), n, "duplicate net command name");
    }

    #[test]
    fn net_histograms_roundtrip_and_diff() {
        let _g = exclusive();
        reset();
        set_enabled(false);
        net_record_ns(NetCmd::Get, 100);
        assert_eq!(snapshot().total_net_cmds(), 0, "disabled registry records nothing");
        set_enabled(true);
        net_record_ns(NetCmd::Get, 100);
        net_record_ns(NetCmd::Get, 300);
        net_record_ns(NetCmd::MSet, 900);
        let base = snapshot();
        net_record_ns(NetCmd::Set, 50);
        let s = snapshot();
        set_enabled(false);
        assert_eq!(s.net(NetCmd::Get).count(), 2);
        assert_eq!(s.net(NetCmd::Get).sum(), 400);
        assert_eq!(s.net(NetCmd::MSet).count(), 1);
        assert_eq!(s.total_net_cmds(), 4);
        let delta = s.since(&base);
        assert_eq!(delta.net(NetCmd::Set).count(), 1);
        assert_eq!(delta.net(NetCmd::Get).count(), 0);
        assert_eq!(delta.total_net_cmds(), 1);
        reset();
        assert_eq!(snapshot().total_net_cmds(), 0);
    }
}
