//! Flight recorder: lock-free per-shard ring buffers of typed events.
//!
//! The metrics registry answers *how much* (counts, quantiles); the flight
//! recorder answers *when* and *in what order*. Every event is a fixed
//! 32-byte record — monotonic timestamp, kind, subject, payload — written
//! into one of [`SHARDS`](crate) ring buffers with a seqlock per slot, so
//! recording is wait-free for writers and a concurrent drain skips slots
//! caught mid-write. (Two threads striped onto the same shard that wrap
//! onto the same slot at the same instant can interleave; the drain's
//! kind-decode validation keeps undecodable garbage out of the timeline,
//! and the worst surviving artifact is one event carrying a sibling's
//! timestamp — acceptable for a diagnostic recorder.)
//!
//! **Overwrite semantics.** Each ring holds [`RING_CAP`] events and
//! overwrites the oldest on wrap; the recorder keeps the *most recent*
//! window of activity, never blocks, and never allocates on the record
//! path. A drain is non-destructive: `/trace` can be scraped repeatedly
//! and each scrape sees the current window.
//!
//! **Clock anchoring.** Events carry nanoseconds since a process-wide
//! epoch captured on first use ([`anchor_unix_ns`] gives the wall-clock
//! value of that epoch), so a merged timeline can be rendered in both
//! monotonic and wall time without ever calling the wall clock on the
//! record path.
//!
//! Event emission is gated on the registry's global enable flag
//! ([`crate::enabled`]): a disabled process pays one relaxed load per
//! site, exactly like counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use crate::{NetCmd, OpKind, Phase, SHARDS};

/// Events kept per ring; total capacity is `SHARDS * RING_CAP`.
pub const RING_CAP: usize = 2048;

/// What happened. Each kind's `subject` field is interpreted per-kind
/// (a [`Phase`], an [`OpKind`], a [`NetCmd`], or a milestone code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A phase span began (`subject` = [`Phase`] index).
    PhaseEnter = 0,
    /// A phase span ended (`subject` = [`Phase`] index, `data` = span ns).
    PhaseExit,
    /// A table operation exceeded the slow-op threshold
    /// (`subject` = [`OpKind`] index, `data` = latency ns).
    SlowOp,
    /// A wire command exceeded the slow-command threshold
    /// (`subject` = [`NetCmd`] index, `data` = latency ns). The exemplar is
    /// argument-redacted by construction: only the command kind and its
    /// latency are recorded, never keys or values.
    SlowCmd,
    /// A record failed its checksum on read/scan/scrub.
    CorruptionDetected,
    /// A corrupted record was repaired from its DRAM copy.
    CorruptionRepaired,
    /// A corrupted record was quarantined (no clean copy).
    CorruptionQuarantined,
    /// A client connection was accepted.
    ConnAccepted,
    /// A client connection was rejected (budget exhausted).
    ConnRejected,
    /// Graceful drain began (SHUTDOWN command or signal).
    DrainBegin,
    /// A sticky pool i/o fault was first observed on the ack path.
    IoFault,
    /// A named milestone (`subject` = [`Milestone`] code).
    Milestone,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 12] = [
        EventKind::PhaseEnter,
        EventKind::PhaseExit,
        EventKind::SlowOp,
        EventKind::SlowCmd,
        EventKind::CorruptionDetected,
        EventKind::CorruptionRepaired,
        EventKind::CorruptionQuarantined,
        EventKind::ConnAccepted,
        EventKind::ConnRejected,
        EventKind::DrainBegin,
        EventKind::IoFault,
        EventKind::Milestone,
    ];

    /// Stable snake_case name used in the `/trace` dump.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseEnter => "phase_enter",
            EventKind::PhaseExit => "phase_exit",
            EventKind::SlowOp => "slow_op",
            EventKind::SlowCmd => "slow_cmd",
            EventKind::CorruptionDetected => "corruption_detected",
            EventKind::CorruptionRepaired => "corruption_repaired",
            EventKind::CorruptionQuarantined => "corruption_quarantined",
            EventKind::ConnAccepted => "conn_accepted",
            EventKind::ConnRejected => "conn_rejected",
            EventKind::DrainBegin => "drain_begin",
            EventKind::IoFault => "io_fault",
            EventKind::Milestone => "milestone",
        }
    }

    fn from_u32(v: u32) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }
}

/// Milestone codes for [`EventKind::Milestone`] events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Milestone {
    /// A pool was opened dirty and recovery is about to run.
    RecoveryStart = 0,
    /// Recovery finished and the table is serving.
    RecoveryDone,
    /// A pool was closed cleanly.
    PoolClosed,
    /// The serving process finished startup (table ready).
    Ready,
    /// A crash-consistent snapshot began (writers about to pause).
    SnapshotStart,
    /// A snapshot completed and its manifest is on disk.
    SnapshotDone,
    /// A snapshot attempt failed and the target directory is suspect.
    SnapshotFailed,
    /// A value-log compaction pass began.
    VlogGcStart,
    /// A value-log compaction pass finished (live data relocated, victim
    /// segments retired).
    VlogGcDone,
}

impl Milestone {
    /// Stable name used in the `/trace` dump.
    pub fn name(self) -> &'static str {
        match self {
            Milestone::RecoveryStart => "recovery_start",
            Milestone::RecoveryDone => "recovery_done",
            Milestone::PoolClosed => "pool_closed",
            Milestone::Ready => "ready",
            Milestone::SnapshotStart => "snapshot_start",
            Milestone::SnapshotDone => "snapshot_done",
            Milestone::SnapshotFailed => "snapshot_failed",
            Milestone::VlogGcStart => "vlog_gc_start",
            Milestone::VlogGcDone => "vlog_gc_done",
        }
    }

    fn from_u64(v: u64) -> Option<Milestone> {
        [
            Milestone::RecoveryStart,
            Milestone::RecoveryDone,
            Milestone::PoolClosed,
            Milestone::Ready,
            Milestone::SnapshotStart,
            Milestone::SnapshotDone,
            Milestone::SnapshotFailed,
            Milestone::VlogGcStart,
            Milestone::VlogGcDone,
        ]
        .get(v as usize)
        .copied()
    }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

/// One ring slot: a per-slot seqlock (`seq`) guarding three payload words.
/// `seq == 0` means never written; an odd `seq` means a write is in
/// flight; an even nonzero `seq` commits the payload stored before it.
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    kind_subject: AtomicU64,
    data: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind_subject: AtomicU64::new(0),
            data: AtomicU64::new(0),
        }
    }
}

struct Ring {
    head: AtomicU64,
    slots: [Slot; RING_CAP],
}

impl Ring {
    const fn new() -> Self {
        Ring {
            head: AtomicU64::new(0),
            slots: [const { Slot::new() }; RING_CAP],
        }
    }
}

static RINGS: [Ring; SHARDS] = [const { Ring::new() }; SHARDS];

/// (monotonic epoch, wall-clock nanoseconds of that epoch).
static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();

fn epoch() -> &'static (Instant, u64) {
    EPOCH.get_or_init(|| {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Nanoseconds since the recorder's monotonic epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().0.elapsed().as_nanos() as u64
}

/// Wall-clock (unix) nanoseconds of the recorder's monotonic epoch — add
/// an event's `t_ns` to get its wall time.
pub fn anchor_unix_ns() -> u64 {
    epoch().1
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Records one event (no-op while the registry is disabled).
#[inline]
pub fn emit(kind: EventKind, subject: u32, data: u64) {
    if !crate::enabled() {
        return;
    }
    emit_slow(kind, subject, data);
}

#[cold]
fn emit_slow(kind: EventKind, subject: u32, data: u64) {
    let t = now_ns();
    let ring = &RINGS[crate::shard()];
    let idx = ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &ring.slots[(idx % RING_CAP as u64) as usize];
    // Per-slot seqlock: odd while a (sole) writer is mid-flight, even once
    // committed. Readers validating seq-before == seq-after reject slots
    // a writer is touching; see the module doc for the same-slot
    // writer/writer race disclaimer.
    let s0 = slot.seq.fetch_add(1, Ordering::AcqRel);
    slot.t_ns.store(t, Ordering::Relaxed);
    slot.kind_subject
        .store(((kind as u64) << 32) | subject as u64, Ordering::Relaxed);
    slot.data.store(data, Ordering::Relaxed);
    slot.seq.store(s0.wrapping_add(2) & !1, Ordering::Release);
}

/// Convenience: records a milestone event.
pub fn milestone(m: Milestone) {
    emit(EventKind::Milestone, 0, m as u64);
}

// ---------------------------------------------------------------------------
// Slow-op thresholds
// ---------------------------------------------------------------------------

static SLOW_OP_NS: AtomicU64 = AtomicU64::new(0);
static SLOW_CMD_NS: AtomicU64 = AtomicU64::new(0);

/// Table operations slower than `ns` are recorded as [`EventKind::SlowOp`]
/// events; 0 disables (the default).
pub fn set_slow_op_threshold_ns(ns: u64) {
    SLOW_OP_NS.store(ns, Ordering::Relaxed);
}

/// Wire commands slower than `ns` are recorded as [`EventKind::SlowCmd`]
/// events and counted in the slowlog family; 0 disables (the default).
pub fn set_slow_cmd_threshold_ns(ns: u64) {
    SLOW_CMD_NS.store(ns, Ordering::Relaxed);
}

/// Current slow-op threshold (0 = disabled).
pub fn slow_op_threshold_ns() -> u64 {
    SLOW_OP_NS.load(Ordering::Relaxed)
}

/// Current slow-command threshold (0 = disabled).
pub fn slow_cmd_threshold_ns() -> u64 {
    SLOW_CMD_NS.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn note_op_latency(op: OpKind, ns: u64) {
    let thr = SLOW_OP_NS.load(Ordering::Relaxed);
    if thr != 0 && ns >= thr {
        emit(EventKind::SlowOp, op as u32, ns);
    }
}

#[inline]
pub(crate) fn note_cmd_latency(cmd: NetCmd, ns: u64) -> bool {
    let thr = SLOW_CMD_NS.load(Ordering::Relaxed);
    if thr != 0 && ns >= thr {
        emit(EventKind::SlowCmd, cmd as u32, ns);
        return true;
    }
    false
}

// ---------------------------------------------------------------------------
// Draining
// ---------------------------------------------------------------------------

/// One drained event, timestamp-anchored and decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the recorder epoch (see [`anchor_unix_ns`]).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific subject index ([`Phase`]/[`OpKind`]/[`NetCmd`]).
    pub subject: u32,
    /// Kind-specific payload (latency/duration ns, milestone code).
    pub data: u64,
}

impl Event {
    /// Human-readable subject ("resize_rehash", "get", "recovery_start",
    /// …), resolved per kind; empty for kinds without a subject.
    pub fn subject_name(&self) -> &'static str {
        match self.kind {
            EventKind::PhaseEnter | EventKind::PhaseExit => Phase::ALL
                .get(self.subject as usize)
                .map(|p| p.name())
                .unwrap_or(""),
            EventKind::SlowOp => OpKind::ALL
                .get(self.subject as usize)
                .map(|o| o.name())
                .unwrap_or(""),
            EventKind::SlowCmd => NetCmd::ALL
                .get(self.subject as usize)
                .map(|c| c.name())
                .unwrap_or(""),
            EventKind::Milestone => Milestone::from_u64(self.data)
                .map(|m| m.name())
                .unwrap_or(""),
            _ => "",
        }
    }
}

/// Non-destructively drains every ring into one merged timeline, sorted by
/// monotonic timestamp. Slots caught mid-write are skipped.
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    for ring in &RINGS {
        // `head` counts writes ever started on this ring; only the first
        // min(head, CAP) slots have ever been written.
        let filled = (ring.head.load(Ordering::Acquire) as usize).min(RING_CAP);
        for slot in ring.slots.iter().take(filled) {
            // Seqlock read: accept only slots whose (even) seq is stable
            // across the payload loads.
            for _attempt in 0..2 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 & 1 == 1 {
                    break; // never written, or a write is in flight
                }
                let t_ns = slot.t_ns.load(Ordering::Relaxed);
                let ks = slot.kind_subject.load(Ordering::Relaxed);
                let data = slot.data.load(Ordering::Relaxed);
                std::sync::atomic::fence(Ordering::Acquire);
                let s2 = slot.seq.load(Ordering::Relaxed);
                if s1 != s2 {
                    continue; // raced a writer; one retry, then skip
                }
                if let Some(kind) = EventKind::from_u32((ks >> 32) as u32) {
                    out.push(Event {
                        t_ns,
                        kind,
                        subject: ks as u32,
                        data,
                    });
                }
                break;
            }
        }
    }
    out.sort_by_key(|e| e.t_ns);
    out
}

/// Zeroes every ring (test isolation; production rings just overwrite).
pub fn reset() {
    for ring in &RINGS {
        ring.head.store(0, Ordering::Relaxed);
        for slot in &ring.slots {
            slot.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Renders the merged timeline as one JSON document:
/// `{"anchor_unix_ns":…, "slow_op_threshold_ns":…, "events":[…]}` with
/// events carrying monotonic (`t_us`) and wall (`wall_ms`) timestamps.
pub fn dump_json() -> String {
    use std::fmt::Write;
    let events = drain();
    let anchor = anchor_unix_ns();
    let mut out = String::with_capacity(64 + events.len() * 96);
    let _ = write!(
        out,
        "{{\"anchor_unix_ns\":{anchor},\"slow_op_threshold_ns\":{},\"slow_cmd_threshold_ns\":{},\"events\":[",
        slow_op_threshold_ns(),
        slow_cmd_threshold_ns(),
    );
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let wall_ms = (anchor + e.t_ns) / 1_000_000;
        let _ = write!(
            out,
            "{{\"t_us\":{},\"wall_ms\":{wall_ms},\"kind\":\"{}\",\"what\":\"{}\",\"data\":{}}}",
            e.t_ns / 1_000,
            e.kind.name(),
            e.subject_name(),
            e.data,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The rings are process-global like the registry; these tests reuse
    // the registry's serialization discipline by running under one lock.
    use std::sync::{Mutex, MutexGuard};
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = exclusive();
        reset();
        crate::set_enabled(false);
        emit(EventKind::DrainBegin, 0, 0);
        assert!(drain().is_empty());
    }

    #[test]
    fn events_merge_in_time_order() {
        let _g = exclusive();
        reset();
        crate::set_enabled(true);
        emit(EventKind::PhaseEnter, Phase::ResizeRehash as u32, 0);
        emit(EventKind::PhaseExit, Phase::ResizeRehash as u32, 1234);
        milestone(Milestone::Ready);
        let events = drain();
        crate::set_enabled(false);
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(events[0].kind, EventKind::PhaseEnter);
        assert_eq!(events[0].subject_name(), "resize_rehash");
        assert_eq!(events[1].data, 1234);
        assert_eq!(events[2].subject_name(), "ready");
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_on_wrap() {
        let _g = exclusive();
        reset();
        crate::set_enabled(true);
        // All events land on this thread's single ring; overfill it.
        for i in 0..(RING_CAP as u64 + 100) {
            emit(EventKind::ConnAccepted, 0, i);
        }
        let events = drain();
        crate::set_enabled(false);
        assert_eq!(events.len(), RING_CAP);
        // The oldest 100 payloads were overwritten.
        let min_data = events.iter().map(|e| e.data).min().unwrap();
        assert!(min_data >= 100, "oldest events should be gone, min={min_data}");
        reset();
    }

    #[test]
    fn slow_thresholds_gate_emission() {
        let _g = exclusive();
        reset();
        crate::set_enabled(true);
        set_slow_op_threshold_ns(1_000);
        set_slow_cmd_threshold_ns(1_000);
        note_op_latency(OpKind::Get, 999);
        note_op_latency(OpKind::Get, 1_000);
        assert!(!note_cmd_latency(NetCmd::Set, 10));
        assert!(note_cmd_latency(NetCmd::Set, 5_000));
        set_slow_op_threshold_ns(0);
        set_slow_cmd_threshold_ns(0);
        note_op_latency(OpKind::Get, u64::MAX); // disabled: no event
        let events = drain();
        crate::set_enabled(false);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SlowOp);
        assert_eq!(events[0].data, 1_000);
        assert_eq!(events[1].kind, EventKind::SlowCmd);
        assert_eq!(events[1].subject_name(), "set");
        reset();
    }

    #[test]
    fn dump_json_is_balanced_and_anchored() {
        let _g = exclusive();
        reset();
        crate::set_enabled(true);
        emit(EventKind::DrainBegin, 0, 0);
        let j = dump_json();
        crate::set_enabled(false);
        assert!(j.starts_with("{\"anchor_unix_ns\":"));
        assert!(j.contains("\"kind\":\"drain_begin\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        reset();
    }

    #[test]
    fn concurrent_emit_and_drain_never_tear() {
        let _g = exclusive();
        reset();
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..20_000u64 {
                        // data encodes (kind check value) so a torn read
                        // would show as an impossible combination below.
                        emit(EventKind::ConnAccepted, t, i);
                    }
                });
            }
            for _ in 0..4 {
                let events = drain();
                for e in &events {
                    assert_eq!(e.kind, EventKind::ConnAccepted);
                    assert!(e.subject < 4);
                    assert!(e.data < 20_000);
                }
            }
        });
        crate::set_enabled(false);
        reset();
    }
}
