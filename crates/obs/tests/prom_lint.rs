//! Lint-style conformance test for the Prometheus text exposition.
//!
//! Parses every emitted line against the exposition-format grammar rather
//! than spot-checking a few family names: metric-name/label charsets,
//! HELP/TYPE pairing and ordering, numeric sample values, and the
//! histogram contract (ascending `le` bounds, monotone cumulative bucket
//! counts, a terminal `+Inf` bucket equal to `_count`, and a `_sum` for
//! every series). A scraper that accepts this output will accept any
//! output this crate can produce.

use hdnh_obs as obs;

fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            .unwrap()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn label_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `name{k="v",...} value` (labels optional). Returns
/// (name, sorted label pairs, value text).
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, String) {
    let (ident, value) = match line.find('}') {
        Some(close) => {
            let (head, rest) = line.split_at(close + 1);
            (head.to_string(), rest.trim().to_string())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            (
                it.next().unwrap().to_string(),
                it.next().unwrap_or("").trim().to_string(),
            )
        }
    };
    let (name, labels) = match ident.find('{') {
        None => (ident.clone(), Vec::new()),
        Some(open) => {
            assert!(ident.ends_with('}'), "unterminated label set: {line}");
            let name = ident[..open].to_string();
            let body = &ident[open + 1..ident.len() - 1];
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or_else(|| {
                    panic!("label without '=': {pair} in {line}");
                });
                assert!(label_name_ok(k), "bad label name {k:?} in {line}");
                assert!(
                    v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                    "unquoted label value {v:?} in {line}"
                );
                let val = &v[1..v.len() - 1];
                assert!(
                    !val.contains('"') && !val.contains('\\') && !val.contains('\n'),
                    "label value needs escaping we never emit: {line}"
                );
                labels.push((k.to_string(), val.to_string()));
            }
            (name, labels)
        }
    };
    assert!(metric_name_ok(&name), "bad metric name {name:?} in {line}");
    assert!(!value.is_empty(), "sample without value: {line}");
    (name, labels, value)
}

/// Strips a histogram-series suffix, returning (family, suffix).
fn hist_family(name: &str) -> Option<(&str, &str)> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(fam) = name.strip_suffix(suffix) {
            return Some((fam, suffix));
        }
    }
    None
}

#[test]
fn exposition_is_lint_clean() {
    // Populate every family with real traffic spanning magnitudes so the
    // lint exercises nonzero buckets, not just empty series.
    obs::reset();
    obs::trace::reset();
    obs::set_enabled(true);
    obs::trace::set_slow_cmd_threshold_ns(1_000);
    for i in 0..2_000u64 {
        let ns = 1 + (i * 2654435761) % 80_000_000; // 1 ns .. 80 ms
        obs::op_record_ns(obs::OpKind::ALL[(i % 4) as usize], ns);
        obs::net_record_ns(obs::NetCmd::ALL[(i % 11) as usize], ns);
    }
    obs::count(obs::Counter::HotHit);
    obs::add(obs::Counter::NetBytesIn, 12345);
    obs::phase_record_ns(obs::Phase::ResizeRehash, 5_000_000, 42);
    let text = obs::snapshot().to_prometheus();
    obs::trace::set_slow_cmd_threshold_ns(0);
    obs::set_enabled(false);

    let mut declared: Vec<(String, String)> = Vec::new(); // (family, type)
    let mut last_help: Option<String> = None;
    // (family, labels-minus-le) -> ascending (le, count) pairs.
    let mut buckets: std::collections::BTreeMap<(String, String), Vec<(f64, u64)>> =
        std::collections::BTreeMap::new();
    let mut sums: std::collections::BTreeMap<(String, String), f64> = Default::default();
    let mut counts: std::collections::BTreeMap<(String, String), u64> = Default::default();

    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap();
            assert!(metric_name_ok(name), "bad HELP name: {line}");
            assert!(
                !it.next().unwrap_or("").is_empty(),
                "HELP without text: {line}"
            );
            last_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap();
            let kind = it.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind:?}: {line}"
            );
            assert_eq!(
                last_help.as_deref(),
                Some(name),
                "TYPE {name} not immediately preceded by its HELP"
            );
            assert!(
                !declared.iter().any(|(n, _)| n == name),
                "family {name} declared twice"
            );
            declared.push((name.to_string(), kind.to_string()));
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line}");

        let (name, labels, value) = parse_sample(line);
        let num: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value {value:?} in {line}");
        });
        assert!(num.is_finite() && num >= 0.0, "bad value in {line}");

        // Resolve the declaring family: exact, or histogram suffix of a
        // declared histogram family.
        let fam_entry = declared.iter().find(|(n, _)| *n == name).or_else(|| {
            hist_family(&name).and_then(|(fam, _)| {
                declared
                    .iter()
                    .find(|(n, k)| n == fam && k == "histogram")
            })
        });
        let (family, kind) = fam_entry.unwrap_or_else(|| {
            panic!("sample {name} has no TYPE declaration");
        });

        if kind == "histogram" {
            let (_, suffix) = hist_family(&name).unwrap_or(("", ""));
            let key_labels: String = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v},"))
                .collect();
            let key = (family.clone(), key_labels);
            match suffix {
                "_bucket" => {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .expect("bucket sample without le label");
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().unwrap_or_else(|_| panic!("bad le {le:?}"))
                    };
                    buckets.entry(key).or_default().push((bound, num as u64));
                }
                "_sum" => {
                    sums.insert(key, num);
                }
                "_count" => {
                    counts.insert(key, num as u64);
                }
                other => panic!("histogram sample with suffix {other:?}: {line}"),
            }
        }
    }

    assert!(!declared.is_empty() && !buckets.is_empty(), "empty exposition");

    // Histogram contract per series.
    for (key, series) in &buckets {
        assert!(
            series.windows(2).all(|w| w[0].0 < w[1].0),
            "le bounds not ascending for {key:?}: {series:?}"
        );
        assert!(
            series.windows(2).all(|w| w[0].1 <= w[1].1),
            "bucket counts not cumulative for {key:?}: {series:?}"
        );
        let (last_le, last_count) = *series.last().unwrap();
        assert!(
            last_le.is_infinite(),
            "terminal bucket of {key:?} is not +Inf"
        );
        let count = *counts
            .get(key)
            .unwrap_or_else(|| panic!("histogram {key:?} missing _count"));
        let sum = *sums
            .get(key)
            .unwrap_or_else(|| panic!("histogram {key:?} missing _sum"));
        assert_eq!(
            last_count, count,
            "+Inf bucket disagrees with _count for {key:?}"
        );
        // Population sanity: a nonzero population has a nonzero sum of
        // nanosecond values (the smallest recordable latency is 1 ns).
        assert!(
            (count == 0) == (sum == 0.0),
            "_count/_sum not conserved together for {key:?}: count={count} sum={sum}"
        );
    }

    // The traffic above must have produced nonempty op and net histograms.
    let nonzero = buckets
        .iter()
        .filter(|((fam, _), s)| {
            (fam == "hdnh_op_latency_hist_ns" || fam == "hdnh_net_cmd_latency_hist_ns")
                && s.last().unwrap().1 > 0
        })
        .count();
    assert!(nonzero >= 10, "expected populated histograms, got {nonzero}");
    obs::reset();
    obs::trace::reset();
}
