//! Event-driven connection runtime: N readiness-driven event loops over
//! non-blocking sockets.
//!
//! This replaces the thread-per-connection serve loop. Connection count
//! is no longer bounded by threads: each of `cfg.threads()` event loops
//! multiplexes thousands of sockets through one `epoll` instance
//! ([`poller`]; `poll(2)` fallback off Linux), and an idle connection
//! costs one registered fd and a small heap entry — no thread, no stack,
//! and *no scheduled wakeups* (the old loop woke every connection 10×/s
//! to re-check timeouts; the reactor sleeps until a socket is ready or
//! the earliest deadline in a [`timer::TimerHeap`] is due, and
//! `hdnh_net_spurious_wakeups_total` proves it).
//!
//! **Division of labor.** Loop 0 owns the listener: one sharded acceptor
//! feeds all loops round-robin through per-loop handoff inboxes and
//! wakers, replacing the kernel accept-queue load balancing the worker
//! pool relied on (see DESIGN.md §16 for why this beats `SO_REUSEPORT`
//! here). [`Conn`] owns all protocol state and deadlines and never
//! touches a socket. The [`Engine`] supplies policy: command execution,
//! admission control, and drain notification. The loop only moves bytes
//! between the two and keeps the poller's interest sets in sync with
//! what each connection wants.
//!
//! **Backpressure as interest sets.** A connection that hits its
//! `max_inflight` reply budget stops wanting reads; the loop parks its
//! EPOLLIN interest until the output buffer drains, so TCP flow control
//! throttles the client with zero server-side buffer growth.
//!
//! **Drain.** A `SHUTDOWN` frame (surfaced by [`EngineAction::Shutdown`])
//! or [`ReactorHandle::shutdown`] flips one shared flag and wakes every
//! loop: the acceptor closes, every connection enters the drain protocol
//! ([`Conn::begin_drain`] — every received frame answered, close at the
//! first silence), and each loop exits once its last connection closes.

mod conn;
mod poller;
mod timer;

pub use conn::{Conn, DRAIN_GRACE, DRAIN_SILENCE};

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hdnh_obs as obs;

use crate::config::ServerConfig;
use crate::resp::{enc_error, Decoder, Frame};
use poller::{Poller, Waker, READABLE, WRITABLE};
use timer::TimerHeap;

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_CONN_BASE: u64 = 2;

/// What the engine wants the runtime to do after executing one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineAction {
    /// Keep serving.
    Continue,
    /// Begin a process-wide graceful drain (the `SHUTDOWN` command).
    Shutdown,
}

/// Command executor + connection policy plugged into the reactor.
///
/// The RESP server implements this; tests drive [`Conn`] with throwaway
/// engines. All methods are called from event-loop threads, potentially
/// concurrently — implementations share state through atomics or locks.
pub trait Engine: Send + Sync {
    /// Executes one decoded frame, appending exactly one reply to `out`.
    fn execute(&self, dec: &Decoder, frame: &Frame, out: &mut Vec<u8>) -> EngineAction;

    /// Admission control: claim a connection slot. A `false` return sends
    /// the [`Engine::reject`] reply and closes without creating a
    /// [`Conn`].
    fn try_admit(&self) -> bool {
        true
    }

    /// The reply written to a connection denied by [`Engine::try_admit`].
    fn reject(&self, out: &mut Vec<u8>) {
        enc_error(out, "ERR", "max connections reached");
    }

    /// A previously admitted connection closed (release its slot).
    fn on_conn_closed(&self) {}

    /// A process-wide drain just began (called exactly once).
    fn on_drain_begin(&self) {}
}

/// Per-loop handoff state reachable from other threads.
struct LoopShared {
    waker: Waker,
    /// Connections accepted by loop 0, awaiting registration here.
    inbox: Mutex<VecDeque<TcpStream>>,
}

/// State shared by every loop and the handle.
struct Control {
    shutdown: AtomicBool,
    loops: Vec<LoopShared>,
    addr: SocketAddr,
}

/// Flips the shared shutdown flag (first caller wins), fires the
/// engine's drain hook, and wakes every loop.
fn begin_shutdown(control: &Control, engine: &dyn Engine) {
    if control.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    engine.on_drain_begin();
    for l in &control.loops {
        l.waker.wake();
    }
}

/// Handle to a running reactor: address, shutdown trigger, join.
pub struct ReactorHandle {
    control: Arc<Control>,
    engine: Arc<dyn Engine>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.control.addr
    }

    /// Whether a drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.control.shutdown.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: no new connections; live connections
    /// finish their received frames and close.
    pub fn shutdown(&self) {
        begin_shutdown(&self.control, &*self.engine);
    }

    /// Waits for every event loop to exit (drain complete).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Binds the event loops over an already-bound listener and starts one
/// thread per loop. `engine` supplies execution and admission policy.
pub fn spawn(
    listener: TcpListener,
    cfg: ServerConfig,
    engine: Arc<dyn Engine>,
) -> io::Result<ReactorHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let nloops = cfg.threads();

    // Pollers and wakers are created up front so the control block (which
    // other threads use to wake loops) is complete before any loop runs.
    let mut pollers = Vec::with_capacity(nloops);
    let mut shared = Vec::with_capacity(nloops);
    for _ in 0..nloops {
        let poller = Poller::new()?;
        let waker = Waker::new(&poller, TOKEN_WAKER)?;
        pollers.push(poller);
        shared.push(LoopShared {
            waker,
            inbox: Mutex::new(VecDeque::new()),
        });
    }
    let control = Arc::new(Control {
        shutdown: AtomicBool::new(false),
        loops: shared,
        addr,
    });

    let mut threads = Vec::with_capacity(nloops);
    let mut listener = Some(listener);
    for (idx, poller) in pollers.into_iter().enumerate() {
        let mut el = EventLoop {
            idx,
            nloops,
            poller,
            control: Arc::clone(&control),
            engine: Arc::clone(&engine),
            cfg: cfg.clone(),
            listener: if idx == 0 { listener.take() } else { None },
            conns: Vec::new(),
            free: Vec::new(),
            timers: TimerHeap::new(),
            next_gen: 0,
            live: 0,
            rr: 0,
            draining_applied: false,
        };
        if let Some(l) = &el.listener {
            el.poller.register(l.as_raw_fd(), TOKEN_LISTENER, READABLE)?;
        }
        threads.push(
            std::thread::Builder::new()
                .name(format!("hdnh-net-{idx}"))
                .spawn(move || el.run())?,
        );
    }
    Ok(ReactorHandle {
        control,
        engine,
        threads,
    })
}

/// One registered connection: the socket, its protocol state, and the
/// loop-side bookkeeping (current interest set, slot generation, the
/// earliest deadline already in the timer heap).
struct ConnEntry {
    stream: TcpStream,
    conn: Conn,
    interest: u32,
    gen: u64,
    scheduled: Option<Instant>,
}

struct EventLoop {
    idx: usize,
    nloops: usize,
    poller: Poller,
    control: Arc<Control>,
    engine: Arc<dyn Engine>,
    cfg: ServerConfig,
    /// Loop 0 only; dropped (closing the socket) when the drain begins.
    listener: Option<TcpListener>,
    conns: Vec<Option<ConnEntry>>,
    free: Vec<usize>,
    timers: TimerHeap,
    next_gen: u64,
    live: usize,
    /// Round-robin placement cursor (loop 0 / acceptor only).
    rr: usize,
    draining_applied: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Vec::with_capacity(1024);
        let mut rdbuf = vec![0u8; 16 * 1024];
        loop {
            let timeout = self
                .timers
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing wait would spin; treat it as fatal for the loop.
                return;
            }
            let now = Instant::now();

            let mut accept_ready = false;
            let mut woken = false;
            for ev in &events {
                match ev.token {
                    TOKEN_WAKER => {
                        self.control.loops[self.idx].waker.drain();
                        woken = true;
                    }
                    TOKEN_LISTENER => accept_ready = true,
                    t => {
                        let slot = (t - TOKEN_CONN_BASE) as usize;
                        if ev.error {
                            // EPOLLERR/EPOLLHUP: the socket is dead (RST or
                            // full close); a level-triggered poller would
                            // spin on it if left registered.
                            self.close_conn(slot);
                        } else {
                            self.handle_conn_io(slot, ev.readable, now, &mut rdbuf);
                        }
                    }
                }
            }

            // Deadlines. A popped entry may be stale (slot reused, or the
            // deadline moved later); `on_tick` is harmless early and
            // `post_io` re-schedules whatever deadline now applies.
            let mut due = 0usize;
            while let Some((slot, gen)) = self.timers.pop_due(now) {
                due += 1;
                let live = matches!(
                    self.conns.get(slot),
                    Some(Some(e)) if e.gen == gen
                );
                if live {
                    let entry = self.conns[slot].as_mut().unwrap();
                    entry.scheduled = None;
                    entry.conn.on_tick(now);
                    self.post_io(slot, now);
                }
            }

            if self.control.shutdown.load(Ordering::SeqCst) && !self.draining_applied {
                self.apply_drain(now);
            }

            if accept_ready && !self.draining_applied {
                self.accept_all(now);
            }

            // Register connections handed over by the acceptor.
            loop {
                let next = self.control.loops[self.idx].inbox.lock().unwrap().pop_front();
                match next {
                    Some(stream) => self.register_conn(stream, now),
                    None => break,
                }
            }

            // A wakeup that moved no bytes, fired no deadline, and was not
            // an explicit wake is spurious — the counter the idle-
            // connections test (and the C10K claim) is built on.
            if events.is_empty() && due == 0 && !woken {
                obs::count(obs::Counter::NetSpuriousWakeup);
            }

            if self.draining_applied && self.live == 0 {
                let inbox_empty = self.control.loops[self.idx].inbox.lock().unwrap().is_empty();
                if inbox_empty {
                    return;
                }
            }
        }
    }

    /// Accepts until the listener would block, admitting or rejecting via
    /// the engine and placing admitted sockets round-robin across loops.
    fn accept_all(&mut self, now: Instant) {
        // Taken out of `self` for the duration so `register_conn` can
        // borrow `self` mutably; restored before returning.
        let Some(listener) = self.listener.take() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.control.shutdown.load(Ordering::SeqCst) {
                        drop(stream); // drain raced the accept queue
                        continue;
                    }
                    if !self.engine.try_admit() {
                        let mut out = Vec::new();
                        self.engine.reject(&mut out);
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(true);
                        // Best-effort single write: the reply is tiny and
                        // the socket buffer is empty, so this only fails
                        // if the peer is already gone.
                        let _ = stream.write(&out);
                        continue;
                    }
                    let target = self.rr % self.nloops;
                    self.rr += 1;
                    if target == self.idx {
                        self.register_conn(stream, now);
                    } else {
                        let l = &self.control.loops[target];
                        l.inbox.lock().unwrap().push_back(stream);
                        l.waker.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        self.listener = Some(listener);
    }

    /// Registers one admitted connection in this loop.
    fn register_conn(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            self.engine.on_conn_closed(); // release the admitted slot
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        self.next_gen += 1;
        let gen = self.next_gen;
        let token = TOKEN_CONN_BASE + slot as u64;
        if self.poller.register(stream.as_raw_fd(), token, READABLE).is_err() {
            self.free.push(slot);
            self.engine.on_conn_closed();
            return;
        }
        let mut conn = Conn::new(&self.cfg, now);
        if self.control.shutdown.load(Ordering::SeqCst) {
            conn.begin_drain(now);
        }
        self.conns[slot] = Some(ConnEntry {
            stream,
            conn,
            interest: READABLE,
            gen,
            scheduled: None,
        });
        self.live += 1;
        self.post_io(slot, now);
    }

    /// Moves bytes for one ready connection: greedy reads while the
    /// connection wants them, then greedy writes of whatever output is
    /// pending (opportunistic — replies usually leave in the same
    /// iteration that produced them, no extra EPOLLOUT round-trip).
    fn handle_conn_io(&mut self, slot: usize, readable: bool, now: Instant, rdbuf: &mut [u8]) {
        let Some(Some(entry)) = self.conns.get_mut(slot) else {
            return; // closed earlier in this batch
        };
        let engine = &*self.engine;
        let mut failed = false;
        if readable {
            while entry.conn.wants_read() {
                match entry.stream.read(rdbuf) {
                    Ok(0) => {
                        entry.conn.on_eof();
                        break;
                    }
                    Ok(n) => {
                        obs::add(obs::Counter::NetBytesIn, n as u64);
                        entry.conn.on_bytes(&rdbuf[..n], engine, now);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            self.close_conn(slot);
            return;
        }
        if self.write_pending(slot, now) {
            self.post_io(slot, now);
        }
    }

    /// Writes pending output until the socket would block. Returns false
    /// when the connection was closed on a write failure.
    fn write_pending(&mut self, slot: usize, now: Instant) -> bool {
        let Some(Some(entry)) = self.conns.get_mut(slot) else {
            return false;
        };
        let engine = &*self.engine;
        while entry.conn.wants_write() {
            match entry.stream.write(entry.conn.output()) {
                Ok(0) => break,
                Ok(n) => {
                    obs::add(obs::Counter::NetBytesOut, n as u64);
                    entry.conn.on_write_progress(n, engine, now);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return false;
                }
            }
        }
        true
    }

    /// After any state change: close if finished, propagate a `SHUTDOWN`
    /// request, sync the poller interest set, re-arm the deadline.
    fn post_io(&mut self, slot: usize, _now: Instant) {
        let Some(Some(entry)) = self.conns.get_mut(slot) else {
            return;
        };
        if entry.conn.done() {
            self.close_conn(slot);
            return;
        }
        if entry.conn.take_shutdown_request() {
            begin_shutdown(&self.control, &*self.engine);
            // The drain is applied to this loop's connections later in
            // this same iteration (see `run`).
        }
        let Some(Some(entry)) = self.conns.get_mut(slot) else {
            return;
        };
        let mut desired = 0u32;
        if entry.conn.wants_read() {
            desired |= READABLE;
        }
        if entry.conn.wants_write() {
            desired |= WRITABLE;
        }
        if desired != entry.interest {
            let token = TOKEN_CONN_BASE + slot as u64;
            if self
                .poller
                .reregister(entry.stream.as_raw_fd(), token, desired)
                .is_err()
            {
                self.close_conn(slot);
                return;
            }
            entry.interest = desired;
        }
        if let Some(d) = entry.conn.next_deadline() {
            if entry.scheduled.is_none_or(|s| d < s) {
                self.timers.schedule(d, slot, entry.gen);
                entry.scheduled = Some(d);
            }
        }
    }

    /// Unregisters and drops one connection, releasing its slot.
    fn close_conn(&mut self, slot: usize) {
        if let Some(entry) = self.conns[slot].take() {
            let _ = self.poller.deregister(entry.stream.as_raw_fd());
            drop(entry.stream);
            self.free.push(slot);
            self.live -= 1;
            self.engine.on_conn_closed();
        }
    }

    /// Applies a just-begun process drain to this loop: stop accepting
    /// (loop 0 closes the listener) and start every connection's drain
    /// protocol.
    fn apply_drain(&mut self, now: Instant) {
        self.draining_applied = true;
        if let Some(l) = self.listener.take() {
            let _ = self.poller.deregister(l.as_raw_fd());
        }
        for slot in 0..self.conns.len() {
            if let Some(Some(entry)) = self.conns.get_mut(slot) {
                entry.conn.begin_drain(now);
                self.post_io(slot, now);
            }
        }
    }
}
