//! Lazy deadline heap for the event loop.
//!
//! A connection's deadline (idle, drain, write-stall) moves every time
//! the peer does something, which makes eager cancellation O(log n) per
//! byte. Instead the heap is *lazy*: entries are only ever pushed, and a
//! popped entry is validated against the connection's current state by
//! the loop (slot generation match + the deadline actually being due).
//! Stale entries cost one early wakeup at worst and are dropped on pop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// One scheduled wakeup: `(when, slot, gen)`. `gen` is the slot's
/// generation at scheduling time, so an entry outliving its connection
/// (slot reused) is recognizably stale.
type Entry = (Instant, usize, u64);

/// Min-heap of connection deadlines (see the module docs for the lazy
/// invalidation contract).
pub struct TimerHeap {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TimerHeap {
    /// An empty heap.
    pub fn new() -> TimerHeap {
        TimerHeap {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules a wakeup for `slot` (generation `gen`) at `when`.
    pub fn schedule(&mut self, when: Instant, slot: usize, gen: u64) {
        self.heap.push(Reverse((when, slot, gen)));
    }

    /// The earliest scheduled instant, stale entries included (an early
    /// wakeup from a stale entry is harmless; a late one would not be).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pops one entry that is due at `now`, or `None` when the head is in
    /// the future (or the heap is empty). Call in a loop to drain.
    pub fn pop_due(&mut self, now: Instant) -> Option<(usize, u64)> {
        match self.heap.peek() {
            Some(Reverse((t, _, _))) if *t <= now => {
                let Reverse((_, slot, gen)) = self.heap.pop().unwrap();
                Some((slot, gen))
            }
            _ => None,
        }
    }

    /// Number of live + stale entries (bounds memory, not correctness).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pops_in_deadline_order_and_respects_now() {
        let mut h = TimerHeap::new();
        let t0 = Instant::now();
        h.schedule(t0 + Duration::from_millis(30), 3, 1);
        h.schedule(t0 + Duration::from_millis(10), 1, 1);
        h.schedule(t0 + Duration::from_millis(20), 2, 1);
        assert_eq!(h.next_deadline(), Some(t0 + Duration::from_millis(10)));

        // Nothing due yet.
        assert_eq!(h.pop_due(t0), None);
        assert_eq!(h.len(), 3);

        // Two due, in order; the third stays.
        let now = t0 + Duration::from_millis(20);
        assert_eq!(h.pop_due(now), Some((1, 1)));
        assert_eq!(h.pop_due(now), Some((2, 1)));
        assert_eq!(h.pop_due(now), None);
        assert_eq!(h.next_deadline(), Some(t0 + Duration::from_millis(30)));
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut h = TimerHeap::new();
        let t0 = Instant::now();
        h.schedule(t0, 7, 42);
        assert_eq!(h.pop_due(t0), Some((7, 42)));
        assert_eq!(h.pop_due(t0), None);
        assert_eq!(h.len(), 0);
    }
}
