//! Per-connection state machine, free of sockets and clocks.
//!
//! [`Conn`] owns the request [`Decoder`], the reply buffer, and every
//! deadline a connection can carry (idle, drain, write-stall). The event
//! loop owns the socket and the clock: it feeds bytes in
//! ([`Conn::on_bytes`]), reports write progress
//! ([`Conn::on_write_progress`]), announces deadline expiry
//! ([`Conn::on_tick`]) — always passing `now` explicitly — and reads the
//! connection's wishes back out ([`Conn::wants_read`],
//! [`Conn::wants_write`], [`Conn::next_deadline`], [`Conn::done`]).
//! Because nothing here touches a socket or calls `Instant::now`, the
//! whole protocol lifecycle is unit-testable with in-memory byte slices
//! and a hand-rolled clock (see `tests/conn_state.rs`).
//!
//! **Backpressure.** Replies accumulate in the output buffer; after
//! `max_inflight` of them pile up without the socket draining, the
//! connection *stalls*: it stops wanting reads (the loop parks its
//! EPOLLIN interest) and stops decoding, so a client that streams
//! requests faster than it reads replies is throttled by TCP flow
//! control instead of growing server memory. The stall clears the moment
//! the output buffer fully reaches the socket.
//!
//! **Drain.** [`Conn::begin_drain`] starts the end-of-life protocol the
//! old thread-per-connection loop promised: every frame already received
//! is answered; the connection closes at the first [`DRAIN_SILENCE`]
//! pause in arriving bytes, or unconditionally stops reading at the
//! [`DRAIN_GRACE`] deadline so a firehosing client cannot stretch
//! shutdown forever.

use std::time::{Duration, Instant};

use hdnh_obs as obs;

use super::{Engine, EngineAction};
use crate::config::ServerConfig;
use crate::resp::{enc_error, Decoder};

/// After a drain begins, how long a connection keeps answering bytes that
/// were already in flight before it stops reading. Bounds how much a
/// firehosing client can stretch shutdown.
pub const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// During a drain, the connection closes after this long without a byte
/// from the peer (the moment the wire goes quiet). Extended by arriving
/// bytes, capped by [`DRAIN_GRACE`].
pub const DRAIN_SILENCE: Duration = Duration::from_millis(100);

struct Drain {
    grace: Instant,
    silence: Instant,
}

/// One connection's protocol state: decoder, reply buffer, deadlines.
/// See the module docs for the driving contract.
pub struct Conn {
    dec: Decoder,
    out: Vec<u8>,
    /// Bytes of `out` already written to the socket.
    wpos: usize,
    /// Replies appended since the output buffer last fully drained.
    inflight: usize,
    max_inflight: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    last_activity: Instant,
    /// `Some(t)` while output is pending: the last instant the socket
    /// accepted bytes (or the instant output first became pending).
    last_write_progress: Option<Instant>,
    drain: Option<Drain>,
    /// Decode paused at the inflight budget, awaiting output drain.
    stalled: bool,
    /// No more bytes will be read (EOF, idle/drain deadline, fatal
    /// protocol error).
    reading_stopped: bool,
    /// The decoder is poisoned (fatal protocol error): buffered bytes
    /// are abandoned, only pending replies still go out.
    decoding_stopped: bool,
    /// The last pump left no complete frame buffered.
    decoder_empty: bool,
    close_when_flushed: bool,
    /// Hard failure (write-stall timeout): drop without flushing.
    dead: bool,
    shutdown_requested: bool,
}

impl Conn {
    /// A fresh connection with `cfg`'s budgets, idle clock starting at
    /// `now`.
    pub fn new(cfg: &ServerConfig, now: Instant) -> Conn {
        Conn {
            dec: Decoder::new(cfg.max_frame()),
            out: Vec::with_capacity(4 * 1024),
            wpos: 0,
            inflight: 0,
            max_inflight: cfg.max_inflight(),
            read_timeout: cfg.read_timeout(),
            write_timeout: cfg.write_timeout(),
            last_activity: now,
            last_write_progress: None,
            drain: None,
            stalled: false,
            reading_stopped: false,
            decoding_stopped: false,
            decoder_empty: true,
            close_when_flushed: false,
            dead: false,
            shutdown_requested: false,
        }
    }

    /// Bytes arrived from the peer: feed the decoder and execute every
    /// complete frame through `engine`, up to the inflight budget.
    pub fn on_bytes<E: Engine + ?Sized>(&mut self, bytes: &[u8], engine: &E, now: Instant) {
        if self.dead || self.reading_stopped {
            return;
        }
        self.last_activity = now;
        if let Some(d) = &mut self.drain {
            d.silence = (now + DRAIN_SILENCE).min(d.grace);
        }
        self.decoder_empty = false;
        self.dec.feed(bytes);
        self.pump(engine, now);
    }

    /// The peer half-closed: answer what was received, then close.
    pub fn on_eof(&mut self) {
        self.reading_stopped = true;
        self.maybe_finish();
    }

    /// The socket accepted `n` bytes of [`Conn::output`]. A full drain
    /// clears the inflight budget and resumes a stalled decode.
    pub fn on_write_progress<E: Engine + ?Sized>(&mut self, n: usize, engine: &E, now: Instant) {
        if n == 0 || self.dead {
            return;
        }
        self.wpos += n;
        debug_assert!(self.wpos <= self.out.len());
        if self.wpos >= self.out.len() {
            self.out.clear();
            self.wpos = 0;
            self.inflight = 0;
            self.last_write_progress = None;
            if self.stalled {
                self.stalled = false;
                self.pump(engine, now);
            } else {
                self.maybe_finish();
            }
        } else {
            self.last_write_progress = Some(now);
        }
    }

    /// A deadline may have passed; evaluate idle, drain, and write-stall
    /// clocks against `now`. Harmless to call early or often.
    pub fn on_tick(&mut self, now: Instant) {
        if self.dead {
            return;
        }
        if self.wants_write() {
            if let Some(t) = self.last_write_progress {
                if now.duration_since(t) >= self.write_timeout {
                    // The peer stopped reading its replies: hard-drop.
                    self.dead = true;
                    return;
                }
            }
        }
        if !self.reading_stopped {
            let expired = match &self.drain {
                Some(d) => now >= d.silence || now >= d.grace,
                None => now.duration_since(self.last_activity) >= self.read_timeout,
            };
            if expired {
                self.reading_stopped = true;
                self.maybe_finish();
            }
        }
    }

    /// Starts the graceful-drain protocol (idempotent): answer everything
    /// received, then close at the first silence (see the module docs).
    pub fn begin_drain(&mut self, now: Instant) {
        if self.drain.is_none() {
            let grace = now + DRAIN_GRACE;
            self.drain = Some(Drain {
                grace,
                silence: (now + DRAIN_SILENCE).min(grace),
            });
        }
    }

    /// The not-yet-written slice of the reply buffer.
    pub fn output(&self) -> &[u8] {
        &self.out[self.wpos..]
    }

    /// Whether the loop should keep EPOLLIN interest: false once reading
    /// stopped or while stalled on the inflight budget.
    pub fn wants_read(&self) -> bool {
        !self.dead && !self.reading_stopped && !self.stalled
    }

    /// Whether unwritten output is pending.
    pub fn wants_write(&self) -> bool {
        !self.dead && self.wpos < self.out.len()
    }

    /// Whether the connection is finished and the socket should close:
    /// either hard-dead, or politely done with all replies delivered.
    pub fn done(&self) -> bool {
        self.dead || (self.close_when_flushed && self.output().is_empty())
    }

    /// The earliest instant at which [`Conn::on_tick`] could do work, or
    /// `None` when no clock is running (an idle-immortal case does not
    /// exist: a live connection always carries at least the idle clock).
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.dead {
            return None;
        }
        let mut dl: Option<Instant> = None;
        let mut add = |t: Instant| {
            dl = Some(match dl {
                None => t,
                Some(cur) => cur.min(t),
            })
        };
        if self.wants_write() {
            if let Some(t) = self.last_write_progress {
                add(t + self.write_timeout);
            }
        }
        if !self.reading_stopped {
            match &self.drain {
                Some(d) => add(d.silence.min(d.grace)),
                None => add(self.last_activity + self.read_timeout),
            }
        }
        dl
    }

    /// Takes the pending `SHUTDOWN` request, if the engine raised one
    /// while executing a frame (the loop translates it into a
    /// process-wide drain).
    pub fn take_shutdown_request(&mut self) -> bool {
        std::mem::take(&mut self.shutdown_requested)
    }

    /// Decode-and-execute until the buffer is out of complete frames or
    /// the inflight budget stalls the connection.
    fn pump<E: Engine + ?Sized>(&mut self, engine: &E, now: Instant) {
        if self.decoding_stopped || self.dead {
            return;
        }
        while !self.stalled {
            match self.dec.next() {
                Ok(Some(frame)) => {
                    obs::count(obs::Counter::NetFrameDecoded);
                    match engine.execute(&self.dec, &frame, &mut self.out) {
                        EngineAction::Continue => {}
                        EngineAction::Shutdown => self.shutdown_requested = true,
                    }
                    self.inflight += 1;
                    if self.inflight >= self.max_inflight {
                        self.stalled = true;
                    }
                }
                Ok(None) => {
                    self.decoder_empty = true;
                    self.dec.compact();
                    break;
                }
                Err(e) => {
                    obs::count(obs::Counter::NetProtocolError);
                    enc_error(&mut self.out, "ERR", &format!("protocol error: {e}"));
                    if e.recoverable() {
                        continue;
                    }
                    // Fatal: deliver the error reply, then close.
                    self.decoding_stopped = true;
                    self.reading_stopped = true;
                    break;
                }
            }
        }
        // Output that just became pending starts the write-stall clock.
        if self.wants_write() && self.last_write_progress.is_none() {
            self.last_write_progress = Some(now);
        }
        self.maybe_finish();
    }

    /// If reading has stopped and every received frame has been answered
    /// (nothing stalled, nothing still decodable), arrange to close once
    /// the replies reach the socket.
    fn maybe_finish(&mut self) {
        if self.reading_stopped && !self.stalled && (self.decoder_empty || self.decoding_stopped) {
            self.close_when_flushed = true;
        }
    }
}
