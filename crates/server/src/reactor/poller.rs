//! Readiness polling behind one small interface: `epoll(7)` on Linux, a
//! `poll(2)` rebuild-the-set fallback on other Unixes.
//!
//! The crate has no FFI dependency, so the syscalls are declared by hand
//! (same precedent as the `mmap` bindings in `hdnh-nvm` and the `signal`
//! binding in [`crate::server`]). The surface is deliberately the minimum
//! the reactor needs: register/reregister/deregister a file descriptor
//! under a `u64` token with a readable/writable interest set, block in
//! `wait` until readiness or a deadline, and a [`Waker`] another thread
//! can poke to interrupt the wait.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Interest bit: wake when the fd is readable (or the peer hung up).
pub const READABLE: u32 = 0b01;
/// Interest bit: wake when the fd is writable.
pub const WRITABLE: u32 = 0b10;

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable now (includes EOF/peer-hangup: a read will not block).
    /// Write readiness is not reported separately: the loop always
    /// attempts to flush pending output after handling an event.
    pub readable: bool,
    /// Error or hangup condition: the socket is dead and must be closed
    /// (leaving it registered would spin a level-triggered poller).
    pub error: bool,
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Ceil a duration to whole milliseconds for the kernel timeout argument
/// (rounding down would wake before the deadline and spin).
fn timeout_ms(t: Option<Duration>) -> i32 {
    match t {
        None => -1,
        Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::raw::{c_int, c_uint, c_void};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    // The kernel ABI packs the struct on x86_64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// epoll-backed readiness poller (one instance per event loop).
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    // The poller is constructed on the spawning thread and moved into its
    // event-loop thread; it is never shared.
    unsafe impl Send for Poller {}

    impl Poller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn interest_bits(interest: u32) -> u32 {
            let mut ev = EPOLLRDHUP; // always learn about peer half-close
            if interest & READABLE != 0 {
                ev |= EPOLLIN;
            }
            if interest & WRITABLE != 0 {
                ev |= EPOLLOUT;
            }
            ev
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::interest_bits(interest),
                data: token,
            };
            let arg = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
            if unsafe { epoll_ctl(self.epfd, op, fd, arg) } < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        /// Adds `fd` under `token` with the given interest set.
        pub fn register(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Changes the interest set of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Removes `fd` from the set (also implicit on `close`, but kept
        /// explicit so the fallback poller stays in sync).
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until readiness, the timeout, or a wake; appends the
        /// ready events to `events`.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // signal: surface an empty batch
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy out of the (possibly packed) ABI struct by value.
                let raw = self.buf[i];
                let bits = { raw.events };
                let token = { raw.data };
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// Cross-thread wake handle: an `eventfd` registered in the poller.
    pub struct Waker {
        efd: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// Creates the eventfd and registers it under `token`.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                return Err(last_os_error());
            }
            let w = Waker { efd };
            poller.register(w.efd, token, READABLE)?;
            Ok(w)
        }

        /// Interrupts the owning loop's `wait` (idempotent, never blocks).
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe { write(self.efd, (&one as *const u64).cast(), 8) };
        }

        /// Clears the pending wake count (called by the owning loop).
        pub fn drain(&self) {
            let mut buf = 0u64;
            unsafe { read(self.efd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.efd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::{c_int, c_short, c_void};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// `poll(2)` fallback: the fd set is rebuilt on every wait. O(n) per
    /// wakeup, which is fine for the non-Linux dev targets this serves.
    /// Registration mutates through a `RefCell` so the signatures match
    /// the epoll poller's `&self`; the set is only touched from the
    /// owning loop thread (plus `Waker::new` before the loop starts).
    pub struct Poller {
        registered: std::cell::RefCell<HashMap<RawFd, (u64, u32)>>,
    }

    impl Poller {
        /// Creates an empty registration set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: std::cell::RefCell::new(HashMap::new()),
            })
        }

        /// Adds `fd` under `token` with the given interest set.
        pub fn register(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.registered.borrow_mut().insert(fd, (token, interest));
            Ok(())
        }

        /// Changes the interest set of an already-registered fd.
        pub fn reregister(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Removes `fd` from the set.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.borrow_mut().remove(&fd);
            Ok(())
        }

        /// Blocks until readiness, the timeout, or a wake.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let registered = self.registered.borrow();
            let mut fds: Vec<PollFd> = Vec::with_capacity(registered.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(registered.len());
            for (&fd, &(token, interest)) in registered.iter() {
                let mut ev = 0;
                if interest & READABLE != 0 {
                    ev |= POLLIN;
                }
                if interest & WRITABLE != 0 {
                    ev |= POLLOUT;
                }
                fds.push(PollFd { fd, events: ev, revents: 0 });
                tokens.push(token);
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
            if n < 0 {
                let e = last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    error: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Cross-thread wake handle: a self-pipe registered in the poller.
    pub struct Waker {
        rd: RawFd,
        wr: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        /// Creates the pipe and registers its read end under `token`.
        pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(last_os_error());
            }
            let w = Waker { rd: fds[0], wr: fds[1] };
            poller.register(w.rd, token, READABLE)?;
            Ok(w)
        }

        /// Interrupts the owning loop's `wait`.
        pub fn wake(&self) {
            let b = [1u8];
            unsafe { write(self.wr, b.as_ptr().cast(), 1) };
        }

        /// Clears pending wake bytes (called by the owning loop, only
        /// after `wait` reported the pipe readable — never blocks).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            unsafe { read(self.rd, buf.as_mut_ptr().cast(), buf.len()) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.rd);
                close(self.wr);
            }
        }
    }
}

pub use sys::{Poller, Waker};
