//! Pipelined multi-connection load generator for `hdnh-server`.
//!
//! Drives YCSB A/B/C (from `hdnh-ycsb`) over the RESP wire: each
//! connection runs its own deterministic op stream, sending `--pipeline`
//! requests per burst and timing every reply against the burst's send
//! instant (so the numbers include queueing inside the pipeline, which is
//! what a pipelining client actually experiences). Results land in
//! `BENCH_net.json`.
//!
//! ```text
//! netbench 127.0.0.1:6399 --conns 4 --pipeline 64 --ops 20000 \
//!     --preload 10000 --mixes a,b,c --out BENCH_net.json --shutdown
//! ```

use std::io::Write as _;
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdnh_obs::hist::{AtomicHistogram, HistSnapshot};
use hdnh_server::client::{Reply, RespClient};
use hdnh_ycsb::{generate_ops, Op, WorkloadSpec};

const OP_KINDS: [&str; 6] = ["read", "read_absent", "insert", "update", "rmw", "delete"];

fn kind_idx(kind: &str) -> usize {
    OP_KINDS.iter().position(|k| *k == kind).expect("known op kind")
}

struct Config {
    addr: String,
    conns: usize,
    pipeline: usize,
    ops: usize,
    preload: u64,
    mixes: Vec<String>,
    out: String,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: netbench <addr> [--conns N] [--pipeline N] [--ops N] [--preload N] \
         [--mixes a,b,c] [--out PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else { usage() };
    if addr.starts_with("--") {
        usage();
    }
    let mut cfg = Config {
        addr,
        conns: 4,
        pipeline: 64,
        ops: 20_000,
        preload: 10_000,
        mixes: vec!["a".into(), "b".into(), "c".into()],
        out: "BENCH_net.json".into(),
        shutdown: false,
    };
    while let Some(flag) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--conns" => cfg.conns = num(&mut args).max(1) as usize,
            "--pipeline" => cfg.pipeline = num(&mut args).max(1) as usize,
            "--ops" => cfg.ops = num(&mut args).max(1) as usize,
            "--preload" => cfg.preload = num(&mut args).max(1),
            "--mixes" => {
                cfg.mixes = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--out" => cfg.out = args.next().unwrap_or_else(|| usage()),
            "--shutdown" => cfg.shutdown = true,
            _ => usage(),
        }
    }
    cfg
}

fn spec_for(mix: &str) -> WorkloadSpec {
    match mix {
        "a" => WorkloadSpec::ycsb_a(),
        "b" => WorkloadSpec::ycsb_b(),
        "c" => WorkloadSpec::ycsb_c(),
        "f" => WorkloadSpec::ycsb_f(),
        other => {
            eprintln!("netbench: unknown mix '{other}' (expected a|b|c|f)");
            std::process::exit(2);
        }
    }
}

/// Connects with retry — the server may still be binding when CI launches
/// the bench. A connection still refused after the whole backoff window is
/// a hard error.
fn connect_retry(addr: &str) -> RespClient {
    match RespClient::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("netbench: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Preloads ids `0..n` (value = id) through one pipelined connection.
fn preload(addr: &str, n: u64, pipeline: usize) {
    let mut c = connect_retry(addr);
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    let mut id = 0u64;
    while id < n {
        let burst = pipeline.min((n - id) as usize);
        for _ in 0..burst {
            c.cmd(&[b"SET", id.to_string().as_bytes(), id.to_string().as_bytes()]);
            id += 1;
        }
        c.flush().expect("preload flush");
        for _ in 0..burst {
            let r = c.read_reply().expect("preload reply");
            assert!(r.is_ok(), "preload SET failed: {r:?}");
        }
    }
}

/// Turns one YCSB op into a queued RESP request, returning its kind index.
fn enqueue(c: &mut RespClient, op: &Op) -> usize {
    match *op {
        Op::Read(id) => c.cmd(&[b"GET", id.to_string().as_bytes()]),
        // Negative reads probe far beyond any inserted id.
        Op::ReadAbsent(id) => c.cmd(&[b"GET", (u64::MAX / 2 + id).to_string().as_bytes()]),
        Op::Insert(id) => c.cmd(&[b"SET", id.to_string().as_bytes(), id.to_string().as_bytes()]),
        Op::Update(id, seq) => {
            c.cmd(&[b"SET", id.to_string().as_bytes(), (u64::from(seq) + 1).to_string().as_bytes()])
        }
        Op::ReadModifyWrite(id, seq) => {
            // The read half happens server-side via GET pipelined just ahead.
            c.cmd(&[b"GET", id.to_string().as_bytes()]);
            c.cmd(&[b"SET", id.to_string().as_bytes(), (u64::from(seq) + 1).to_string().as_bytes()]);
            return kind_idx("rmw");
        }
        Op::Delete(id) => c.cmd(&[b"DEL", id.to_string().as_bytes()]),
    }
    kind_idx(op.kind())
}

/// How many replies one op produces (RMW pipelines GET+SET).
fn replies_for(op: &Op) -> usize {
    match op {
        Op::ReadModifyWrite(..) => 2,
        _ => 1,
    }
}

struct MixStats {
    hists: [AtomicHistogram; 6],
    errors: AtomicU64,
    reconnects: AtomicU64,
}

fn run_conn(addr: &str, ops: &[Op], pipeline: usize, stats: &MixStats) {
    let mut c = connect_retry(addr);
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    let mut i = 0usize;
    while i < ops.len() {
        let burst = &ops[i..(i + pipeline).min(ops.len())];
        let mut kinds = Vec::with_capacity(burst.len());
        for op in burst {
            kinds.push((enqueue(&mut c, op), replies_for(op)));
        }
        if let Err(e) = c.flush() {
            eprintln!("netbench: flush failed ({e}); reconnecting");
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
            c = connect_retry(addr);
            continue; // replay the burst on the fresh connection
        }
        let sent = Instant::now();
        let mut failed = false;
        'burst: for &(kind, n_replies) in &kinds {
            for _ in 0..n_replies {
                match c.read_reply() {
                    Ok(Reply::Error(_)) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("netbench: read failed ({e}); reconnecting");
                        stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        c = connect_retry(addr);
                        failed = true;
                        break 'burst;
                    }
                }
            }
            stats.hists[kind].record(sent.elapsed().as_nanos() as u64);
        }
        if failed {
            continue; // replay the burst
        }
        i += burst.len();
    }
}

fn json_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    out.push_str(&format!(
        "\"{name}\":{{\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        h.count(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max(),
    ));
}

fn main() {
    let cfg = parse_args();
    // Resolve early so a bad address fails fast with a clear message.
    if cfg.addr.to_socket_addrs().map(|mut a| a.next().is_none()).unwrap_or(true) {
        eprintln!("netbench: cannot resolve address '{}'", cfg.addr);
        std::process::exit(2);
    }

    eprintln!(
        "netbench: {} conns={} pipeline={} ops={} preload={} mixes={:?}",
        cfg.addr, cfg.conns, cfg.pipeline, cfg.ops, cfg.preload, cfg.mixes
    );
    preload(&cfg.addr, cfg.preload, cfg.pipeline);
    eprintln!("netbench: preloaded {} records", cfg.preload);

    let mut mix_reports = Vec::new();
    let mut insert_base = cfg.preload;
    for (mix_idx, mix) in cfg.mixes.iter().enumerate() {
        let spec = spec_for(mix);
        let per_conn = cfg.ops / cfg.conns.max(1);
        let stats = Arc::new(MixStats {
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
            errors: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        });
        // Disjoint insert id ranges per connection (and per mix): a
        // generated Insert must never collide with a preloaded or
        // previously inserted id, or SET would just overwrite — fine for
        // the server but wrong for the op accounting.
        let streams: Vec<Vec<Op>> = (0..cfg.conns)
            .map(|ci| {
                let base = insert_base + (ci as u64) * (per_conn as u64);
                let seed = 0x9E37_79B9_7F4A_7C15 ^ ((mix_idx as u64) << 32) ^ ci as u64;
                generate_ops(&spec, cfg.preload, base, per_conn, seed)
            })
            .collect();
        insert_base += (cfg.conns as u64) * (per_conn as u64);

        let started = Instant::now();
        std::thread::scope(|s| {
            for ops in &streams {
                let stats = Arc::clone(&stats);
                let addr = cfg.addr.as_str();
                s.spawn(move || run_conn(addr, ops, cfg.pipeline, &stats));
            }
        });
        let elapsed = started.elapsed();
        let total_ops: usize = streams.iter().map(Vec::len).sum();
        let thr = total_ops as f64 / elapsed.as_secs_f64();
        let errors = stats.errors.load(Ordering::Relaxed);
        let reconnects = stats.reconnects.load(Ordering::Relaxed);
        eprintln!(
            "netbench: mix={mix} ops={total_ops} elapsed={:.2}s throughput={thr:.0} ops/s errors={errors} reconnects={reconnects}",
            elapsed.as_secs_f64()
        );

        let mut body = String::new();
        body.push_str(&format!(
            "{{\"mix\":\"{mix}\",\"ops\":{total_ops},\"elapsed_s\":{:.4},\"throughput_ops_s\":{thr:.1},\"errors\":{errors},\"reconnects\":{reconnects},\"latency\":{{",
            elapsed.as_secs_f64()
        ));
        let mut first = true;
        for (ki, kind) in OP_KINDS.iter().enumerate() {
            let h = stats.hists[ki].snapshot();
            if h.count() == 0 {
                continue;
            }
            if !first {
                body.push(',');
            }
            first = false;
            json_hist(&mut body, kind, &h);
        }
        body.push_str("}}");
        mix_reports.push(body);
    }

    let mut json = String::new();
    json.push_str("{\"bench\":\"net\",");
    json.push_str(&format!(
        "\"config\":{{\"addr\":\"{}\",\"conns\":{},\"pipeline\":{},\"ops_per_mix\":{},\"preload\":{}}},",
        cfg.addr, cfg.conns, cfg.pipeline, cfg.ops, cfg.preload
    ));
    json.push_str("\"mixes\":[");
    json.push_str(&mix_reports.join(","));
    json.push_str("]}");
    let mut f = std::fs::File::create(&cfg.out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    f.write_all(b"\n").expect("write output");
    eprintln!("netbench: wrote {}", cfg.out);

    if cfg.shutdown {
        let mut c = connect_retry(&cfg.addr);
        match c.shutdown() {
            Ok(r) if r.is_ok() => eprintln!("netbench: server shutdown requested"),
            other => eprintln!("netbench: shutdown reply {other:?}"),
        }
    }
}
