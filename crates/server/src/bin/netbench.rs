//! Pipelined multi-connection load generator for `hdnh-server`.
//!
//! Drives YCSB A/B/C (from `hdnh-ycsb`) over the RESP wire: each
//! connection runs its own deterministic op stream, sending `--pipeline`
//! requests per burst and timing every reply against the burst's send
//! instant (so the numbers include queueing inside the pipeline, which is
//! what a pipelining client actually experiences). Results land in
//! `BENCH_net.json`.
//!
//! ```text
//! netbench 127.0.0.1:6399 --conns 4 --pipeline 64 --ops 20000 \
//!     --preload 10000 --mixes a,b,c --out BENCH_net.json --shutdown
//! ```
//!
//! Beyond the closed-loop mixes, `--open-loop-rate R` adds an *open-loop*
//! phase: `--idle-conns N` connections park silently (they exercise the
//! reactor's idle bookkeeping, not the protocol) while `--hot-conns H`
//! connections send PINGs on a fixed arrival schedule for
//! `--open-loop-secs S` seconds. Latency is measured from the *scheduled*
//! send instant, not the actual write, so a stalled server shows up as
//! tail latency instead of being hidden by coordinated omission. Results
//! land in a top-level `open_loop` section of the JSON artifact.

use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdnh_obs::hist::{AtomicHistogram, HistSnapshot};
use hdnh_server::client::{Reply, RespClient};
use hdnh_ycsb::{generate_ops, Op, WorkloadSpec};

const OP_KINDS: [&str; 6] = ["read", "read_absent", "insert", "update", "rmw", "delete"];

fn kind_idx(kind: &str) -> usize {
    OP_KINDS.iter().position(|k| *k == kind).expect("known op kind")
}

struct Config {
    addr: String,
    conns: usize,
    pipeline: usize,
    ops: usize,
    preload: u64,
    mixes: Vec<String>,
    out: String,
    shutdown: bool,
    idle_conns: usize,
    hot_conns: usize,
    open_loop_rate: f64,
    open_loop_secs: f64,
    value_size: ValueSize,
    value_size_label: String,
}

/// Value-size distribution for SET payloads. The default (`legacy`)
/// writes the decimal id/sequence strings the u64 wire vocabulary always
/// used — every value stays inline. The other shapes exercise the value
/// log: anything past the table's inline budget spills.
#[derive(Clone, Copy, Debug)]
enum ValueSize {
    /// Decimal id strings (pre-variable-length behavior).
    Legacy,
    /// Every value exactly `n` bytes.
    Fixed(usize),
    /// Uniform in `[a, b]` bytes, deterministic per (id, seq).
    Uniform(usize, usize),
    /// Zipf-flavored mixture: 80% 8 B (inline), 15% 128 B, 4% 4 KiB,
    /// 1% 64 KiB — mostly-small with a heavy tail, like real caches.
    Mix,
}

fn parse_value_size(s: &str) -> Option<ValueSize> {
    if s == "legacy" {
        return Some(ValueSize::Legacy);
    }
    if s == "mix" {
        return Some(ValueSize::Mix);
    }
    if let Some(n) = s.strip_prefix("fixed=") {
        return n.parse().ok().map(ValueSize::Fixed);
    }
    if let Some(r) = s.strip_prefix("uniform=") {
        let (a, b) = r.split_once("..")?;
        let (a, b): (usize, usize) = (a.parse().ok()?, b.parse().ok()?);
        return (a <= b).then_some(ValueSize::Uniform(a, b));
    }
    None
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The SET payload for `(id, seq)` under `vs` — deterministic, so reruns
/// of the same config produce identical traffic.
fn set_value(vs: ValueSize, id: u64, seq: u64) -> Vec<u8> {
    let len = match vs {
        ValueSize::Legacy if seq == 0 => return id.to_string().into_bytes(),
        ValueSize::Legacy => return seq.to_string().into_bytes(),
        ValueSize::Fixed(n) => n,
        ValueSize::Uniform(a, b) => a + (splitmix64(id ^ seq.rotate_left(17)) as usize) % (b - a + 1),
        ValueSize::Mix => match splitmix64(id ^ seq.rotate_left(17)) % 100 {
            0..=79 => 8,
            80..=94 => 128,
            95..=98 => 4096,
            _ => 64 * 1024,
        },
    };
    vec![(splitmix64(id) as u8) ^ (seq as u8); len]
}

fn usage() -> ! {
    eprintln!(
        "usage: netbench <addr> [--conns N] [--pipeline N] [--ops N] [--preload N] \
         [--mixes a,b,c] [--out PATH] [--shutdown] \
         [--value-size legacy|fixed=N|uniform=A..B|mix] \
         [--open-loop-rate R --open-loop-secs S --idle-conns N --hot-conns N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else { usage() };
    if addr.starts_with("--") {
        usage();
    }
    let mut cfg = Config {
        addr,
        conns: 4,
        pipeline: 64,
        ops: 20_000,
        preload: 10_000,
        mixes: vec!["a".into(), "b".into(), "c".into()],
        out: "BENCH_net.json".into(),
        shutdown: false,
        idle_conns: 0,
        hot_conns: 4,
        open_loop_rate: 0.0,
        open_loop_secs: 10.0,
        value_size: ValueSize::Legacy,
        value_size_label: "legacy".into(),
    };
    while let Some(flag) = args.next() {
        let num = |args: &mut dyn Iterator<Item = String>| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
        };
        let fnum = |args: &mut dyn Iterator<Item = String>| -> f64 {
            args.next()
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v > 0.0)
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--conns" => cfg.conns = num(&mut args).max(1) as usize,
            "--pipeline" => cfg.pipeline = num(&mut args).max(1) as usize,
            "--ops" => cfg.ops = num(&mut args).max(1) as usize,
            "--preload" => cfg.preload = num(&mut args).max(1),
            "--mixes" => {
                cfg.mixes = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--out" => cfg.out = args.next().unwrap_or_else(|| usage()),
            "--shutdown" => cfg.shutdown = true,
            "--value-size" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.value_size = parse_value_size(&spec).unwrap_or_else(|| usage());
                cfg.value_size_label = spec;
            }
            "--idle-conns" => cfg.idle_conns = num(&mut args) as usize,
            "--hot-conns" => cfg.hot_conns = num(&mut args).max(1) as usize,
            "--open-loop-rate" => cfg.open_loop_rate = fnum(&mut args),
            "--open-loop-secs" => cfg.open_loop_secs = fnum(&mut args),
            _ => usage(),
        }
    }
    cfg
}

fn spec_for(mix: &str) -> WorkloadSpec {
    match mix {
        "a" => WorkloadSpec::ycsb_a(),
        "b" => WorkloadSpec::ycsb_b(),
        "c" => WorkloadSpec::ycsb_c(),
        "f" => WorkloadSpec::ycsb_f(),
        other => {
            eprintln!("netbench: unknown mix '{other}' (expected a|b|c|f)");
            std::process::exit(2);
        }
    }
}

/// Connects with retry — the server may still be binding when CI launches
/// the bench. A connection still refused after the whole backoff window is
/// a hard error.
fn connect_retry(addr: &str) -> RespClient {
    match RespClient::connect_retry(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("netbench: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// Preloads ids `0..n` through one pipelined connection.
fn preload(addr: &str, n: u64, pipeline: usize, vs: ValueSize) {
    let mut c = connect_retry(addr);
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    let mut id = 0u64;
    while id < n {
        let burst = pipeline.min((n - id) as usize);
        for _ in 0..burst {
            let v = set_value(vs, id, 0);
            c.cmd(&[b"SET", id.to_string().as_bytes(), &v]);
            id += 1;
        }
        c.flush().expect("preload flush");
        for _ in 0..burst {
            let r = c.read_reply().expect("preload reply");
            assert!(r.is_ok(), "preload SET failed: {r:?}");
        }
    }
}

/// Turns one YCSB op into a queued RESP request, returning its kind index.
fn enqueue(c: &mut RespClient, op: &Op, vs: ValueSize) -> usize {
    match *op {
        Op::Read(id) => c.cmd(&[b"GET", id.to_string().as_bytes()]),
        // Negative reads probe far beyond any inserted id.
        Op::ReadAbsent(id) => c.cmd(&[b"GET", (u64::MAX / 2 + id).to_string().as_bytes()]),
        Op::Insert(id) => {
            let v = set_value(vs, id, 0);
            c.cmd(&[b"SET", id.to_string().as_bytes(), &v]);
        }
        Op::Update(id, seq) => {
            let v = set_value(vs, id, u64::from(seq) + 1);
            c.cmd(&[b"SET", id.to_string().as_bytes(), &v]);
        }
        Op::ReadModifyWrite(id, seq) => {
            // The read half happens server-side via GET pipelined just ahead.
            c.cmd(&[b"GET", id.to_string().as_bytes()]);
            let v = set_value(vs, id, u64::from(seq) + 1);
            c.cmd(&[b"SET", id.to_string().as_bytes(), &v]);
            return kind_idx("rmw");
        }
        Op::Delete(id) => c.cmd(&[b"DEL", id.to_string().as_bytes()]),
    }
    kind_idx(op.kind())
}

/// How many replies one op produces (RMW pipelines GET+SET).
fn replies_for(op: &Op) -> usize {
    match op {
        Op::ReadModifyWrite(..) => 2,
        _ => 1,
    }
}

struct MixStats {
    hists: [AtomicHistogram; 6],
    errors: AtomicU64,
    reconnects: AtomicU64,
}

fn run_conn(addr: &str, ops: &[Op], pipeline: usize, vs: ValueSize, stats: &MixStats) {
    let mut c = connect_retry(addr);
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    let mut i = 0usize;
    while i < ops.len() {
        let burst = &ops[i..(i + pipeline).min(ops.len())];
        let mut kinds = Vec::with_capacity(burst.len());
        for op in burst {
            kinds.push((enqueue(&mut c, op, vs), replies_for(op)));
        }
        if let Err(e) = c.flush() {
            eprintln!("netbench: flush failed ({e}); reconnecting");
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
            c = connect_retry(addr);
            continue; // replay the burst on the fresh connection
        }
        let sent = Instant::now();
        let mut failed = false;
        'burst: for &(kind, n_replies) in &kinds {
            for _ in 0..n_replies {
                match c.read_reply() {
                    Ok(Reply::Error(_)) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("netbench: read failed ({e}); reconnecting");
                        stats.reconnects.fetch_add(1, Ordering::Relaxed);
                        c = connect_retry(addr);
                        failed = true;
                        break 'burst;
                    }
                }
            }
            stats.hists[kind].record(sent.elapsed().as_nanos() as u64);
        }
        if failed {
            continue; // replay the burst
        }
        i += burst.len();
    }
}

/// Sends one inline PING and waits for its reply line. Used to confirm a
/// parked connection is registered (and later, still alive).
fn ping_inline(s: &mut TcpStream) -> std::io::Result<bool> {
    s.write_all(b"PING\r\n")?;
    let mut buf = [0u8; 64];
    let mut got = Vec::new();
    while !got.ends_with(b"\r\n") {
        let n = s.read(&mut buf)?;
        if n == 0 {
            return Ok(false);
        }
        got.extend_from_slice(&buf[..n]);
    }
    Ok(got.starts_with(b"+PONG"))
}

struct OpenLoopReport {
    idle_conns: usize,
    hot_conns: usize,
    target_rate: f64,
    achieved_rate: f64,
    duration_s: f64,
    sent: u64,
    replies: u64,
    errors: u64,
    latency: HistSnapshot,
}

/// One hot connection: a writer paces PINGs on the arrival schedule while
/// a reader attributes each reply to its *scheduled* instant. The two
/// halves share the stream via `try_clone` and a channel of schedule
/// points; the channel closing is the reader's signal to drain and stop.
fn run_hot_conn(
    addr: &str,
    rate: f64,
    secs: f64,
    hist: &AtomicHistogram,
    sent: &AtomicU64,
    replies: &AtomicU64,
    errors: &AtomicU64,
) {
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("netbench: hot connect failed: {e}");
            errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let mut wtr = stream.try_clone().expect("clone stream");
    let mut rdr = BufReader::new(stream);
    let (tx, rx) = std::sync::mpsc::channel::<Instant>();

    std::thread::scope(|s| {
        s.spawn(move || {
            let mut line = Vec::new();
            while let Ok(sched) = rx.recv() {
                line.clear();
                match rdr.read_until(b'\n', &mut line) {
                    Ok(0) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Ok(_) if line.first() == Some(&b'+') => {
                        hist.record(sched.elapsed().as_nanos() as u64);
                        replies.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) | Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
            }
        });

        let t0 = Instant::now();
        let deadline = t0 + Duration::from_secs_f64(secs);
        let mut k = 0u64;
        loop {
            let sched = t0 + Duration::from_secs_f64(k as f64 / rate);
            if sched >= deadline {
                break;
            }
            let now = Instant::now();
            if sched > now {
                std::thread::sleep(sched - now);
            }
            if wtr.write_all(b"PING\r\n").is_err() {
                errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            sent.fetch_add(1, Ordering::Relaxed);
            // The reader measures from `sched`, not from the write: if the
            // writer itself fell behind schedule (server pushed back), that
            // delay is part of what the client experienced.
            let _ = tx.send(sched);
            k += 1;
        }
        drop(tx);
    });
}

/// Open-loop overload phase: park `idle_conns` silent connections, then
/// drive `hot_conns` paced PING streams at `rate` requests/s total for
/// `secs`. Afterwards every parked connection is pinged once — an idle
/// connection dropped under load counts as an error.
fn run_open_loop(cfg: &Config) -> OpenLoopReport {
    eprintln!(
        "netbench: open-loop idle={} hot={} rate={}/s secs={}",
        cfg.idle_conns, cfg.hot_conns, cfg.open_loop_rate, cfg.open_loop_secs
    );
    let errors = AtomicU64::new(0);

    let mut parked: Vec<TcpStream> = Vec::with_capacity(cfg.idle_conns);
    for i in 0..cfg.idle_conns {
        match TcpStream::connect(&cfg.addr) {
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
                match ping_inline(&mut s) {
                    Ok(true) => parked.push(s),
                    r => {
                        eprintln!("netbench: idle conn {i} failed to register: {r:?}");
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) => {
                eprintln!("netbench: idle connect {i} failed: {e}");
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    eprintln!("netbench: parked {} idle connections", parked.len());

    let hist = AtomicHistogram::new();
    let sent = AtomicU64::new(0);
    let replies = AtomicU64::new(0);
    let per_conn_rate = cfg.open_loop_rate / cfg.hot_conns as f64;
    let started = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.hot_conns {
            s.spawn(|| {
                run_hot_conn(
                    &cfg.addr,
                    per_conn_rate,
                    cfg.open_loop_secs,
                    &hist,
                    &sent,
                    &replies,
                    &errors,
                );
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    // The hot phase is over; the parked fleet must have survived it.
    for (i, s) in parked.iter_mut().enumerate() {
        if !matches!(ping_inline(s), Ok(true)) {
            eprintln!("netbench: idle conn {i} died during the hot phase");
            errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    let report = OpenLoopReport {
        idle_conns: cfg.idle_conns,
        hot_conns: cfg.hot_conns,
        target_rate: cfg.open_loop_rate,
        achieved_rate: replies.load(Ordering::Relaxed) as f64 / elapsed.max(1e-9),
        duration_s: elapsed,
        sent: sent.load(Ordering::Relaxed),
        replies: replies.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        latency: hist.snapshot(),
    };
    eprintln!(
        "netbench: open-loop sent={} replies={} errors={} achieved={:.0}/s p99={}ns p999={}ns",
        report.sent,
        report.replies,
        report.errors,
        report.achieved_rate,
        report.latency.quantile(0.99),
        report.latency.quantile(0.999),
    );
    report
}

fn json_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    out.push_str(&format!(
        "\"{name}\":{{\"count\":{},\"mean_ns\":{:.0},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        h.count(),
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max(),
    ));
}

fn main() {
    let cfg = parse_args();
    // Resolve early so a bad address fails fast with a clear message.
    if cfg.addr.to_socket_addrs().map(|mut a| a.next().is_none()).unwrap_or(true) {
        eprintln!("netbench: cannot resolve address '{}'", cfg.addr);
        std::process::exit(2);
    }

    eprintln!(
        "netbench: {} conns={} pipeline={} ops={} preload={} mixes={:?} value_size={}",
        cfg.addr, cfg.conns, cfg.pipeline, cfg.ops, cfg.preload, cfg.mixes, cfg.value_size_label
    );
    preload(&cfg.addr, cfg.preload, cfg.pipeline, cfg.value_size);
    eprintln!("netbench: preloaded {} records", cfg.preload);

    let mut mix_reports = Vec::new();
    let mut insert_base = cfg.preload;
    for (mix_idx, mix) in cfg.mixes.iter().enumerate() {
        let spec = spec_for(mix);
        let per_conn = cfg.ops / cfg.conns.max(1);
        let stats = Arc::new(MixStats {
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
            errors: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        });
        // Disjoint insert id ranges per connection (and per mix): a
        // generated Insert must never collide with a preloaded or
        // previously inserted id, or SET would just overwrite — fine for
        // the server but wrong for the op accounting.
        let streams: Vec<Vec<Op>> = (0..cfg.conns)
            .map(|ci| {
                let base = insert_base + (ci as u64) * (per_conn as u64);
                let seed = 0x9E37_79B9_7F4A_7C15 ^ ((mix_idx as u64) << 32) ^ ci as u64;
                generate_ops(&spec, cfg.preload, base, per_conn, seed)
            })
            .collect();
        insert_base += (cfg.conns as u64) * (per_conn as u64);

        let started = Instant::now();
        std::thread::scope(|s| {
            for ops in &streams {
                let stats = Arc::clone(&stats);
                let addr = cfg.addr.as_str();
                s.spawn(move || run_conn(addr, ops, cfg.pipeline, cfg.value_size, &stats));
            }
        });
        let elapsed = started.elapsed();
        let total_ops: usize = streams.iter().map(Vec::len).sum();
        let thr = total_ops as f64 / elapsed.as_secs_f64();
        let errors = stats.errors.load(Ordering::Relaxed);
        let reconnects = stats.reconnects.load(Ordering::Relaxed);
        eprintln!(
            "netbench: mix={mix} ops={total_ops} elapsed={:.2}s throughput={thr:.0} ops/s errors={errors} reconnects={reconnects}",
            elapsed.as_secs_f64()
        );

        let mut body = String::new();
        body.push_str(&format!(
            "{{\"mix\":\"{mix}\",\"ops\":{total_ops},\"elapsed_s\":{:.4},\"throughput_ops_s\":{thr:.1},\"errors\":{errors},\"reconnects\":{reconnects},\"latency\":{{",
            elapsed.as_secs_f64()
        ));
        let mut first = true;
        for (ki, kind) in OP_KINDS.iter().enumerate() {
            let h = stats.hists[ki].snapshot();
            if h.count() == 0 {
                continue;
            }
            if !first {
                body.push(',');
            }
            first = false;
            json_hist(&mut body, kind, &h);
        }
        body.push_str("}}");
        mix_reports.push(body);
    }

    // The overload phase runs after the closed-loop mixes so its parked
    // fleet does not compete with them for connection slots.
    let open_loop = (cfg.open_loop_rate > 0.0).then(|| run_open_loop(&cfg));

    let mut json = String::new();
    json.push_str("{\"bench\":\"net\",");
    json.push_str(&format!(
        "\"config\":{{\"addr\":\"{}\",\"conns\":{},\"pipeline\":{},\"ops_per_mix\":{},\"preload\":{},\"value_size\":\"{}\"}},",
        cfg.addr, cfg.conns, cfg.pipeline, cfg.ops, cfg.preload, cfg.value_size_label
    ));
    json.push_str("\"mixes\":[");
    json.push_str(&mix_reports.join(","));
    json.push(']');
    if let Some(ol) = &open_loop {
        json.push_str(&format!(
            ",\"open_loop\":{{\"idle_conns\":{},\"hot_conns\":{},\"target_rate_ops_s\":{:.1},\
             \"achieved_rate_ops_s\":{:.1},\"duration_s\":{:.4},\"sent\":{},\"replies\":{},\"errors\":{},",
            ol.idle_conns,
            ol.hot_conns,
            ol.target_rate,
            ol.achieved_rate,
            ol.duration_s,
            ol.sent,
            ol.replies,
            ol.errors,
        ));
        json_hist(&mut json, "latency", &ol.latency);
        json.push('}');
    }
    json.push('}');
    let mut f = std::fs::File::create(&cfg.out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");
    f.write_all(b"\n").expect("write output");
    eprintln!("netbench: wrote {}", cfg.out);

    if cfg.shutdown {
        let mut c = connect_retry(&cfg.addr);
        match c.shutdown() {
            Ok(r) if r.is_ok() => eprintln!("netbench: server shutdown requested"),
            other => eprintln!("netbench: shutdown reply {other:?}"),
        }
    }
}
