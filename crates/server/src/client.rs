//! Blocking RESP client with explicit pipelining.
//!
//! [`RespClient`] queues encoded requests into an output buffer
//! ([`RespClient::cmd`]), flushes them in one `write_all`
//! ([`RespClient::flush`]), and reads replies one at a time
//! ([`RespClient::read_reply`]) through an incremental reply decoder — so
//! a caller can put hundreds of commands on the wire before collecting
//! any reply, which is exactly how `netbench` drives the server. The
//! one-shot [`RespClient::call`] helper covers the request/response case.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::resp::{enc_request, parse_i64};

/// One decoded server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+...` simple string.
    Simple(String),
    /// `-CODE msg` error.
    Error(String),
    /// `:n` integer.
    Int(i64),
    /// `$n` bulk bytes.
    Bulk(Vec<u8>),
    /// `$-1` null bulk.
    Nil,
    /// `*n` array of replies.
    Array(Vec<Reply>),
}

impl Reply {
    /// The bulk payload parsed as decimal u64, if this is a bulk reply.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Reply::Bulk(b) => crate::resp::parse_u64(b),
            _ => None,
        }
    }

    /// Whether this is the `+OK` simple reply.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Simple(s) if s == "OK")
    }
}

/// Incremental reply parser (client side of the wire).
#[derive(Default)]
pub struct ReplyDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl ReplyDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Attempts to decode one complete reply; `Ok(None)` = need more
    /// bytes, `Err` = the server broke the reply grammar.
    // Not `Iterator`: `Ok(None)` means "feed more bytes", not exhaustion.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Reply>, String> {
        let mut cur = self.pos;
        match Self::parse_at(&self.buf, &mut cur) {
            Ok(Some(r)) => {
                self.pos = cur;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                } else if self.pos > 64 * 1024 {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(r))
            }
            other => other,
        }
    }

    fn line(buf: &[u8], cur: &mut usize) -> Result<Option<(usize, usize)>, String> {
        let start = *cur + 1;
        let mut i = start;
        while i < buf.len() && buf[i] != b'\r' {
            i += 1;
        }
        if i + 1 >= buf.len() {
            return Ok(None);
        }
        if buf[i + 1] != b'\n' {
            return Err("reply line not CRLF-terminated".into());
        }
        *cur = i + 2;
        Ok(Some((start, i)))
    }

    fn parse_at(buf: &[u8], cur: &mut usize) -> Result<Option<Reply>, String> {
        if *cur >= buf.len() {
            return Ok(None);
        }
        let t = buf[*cur];
        match t {
            b'+' | b'-' | b':' => {
                let Some((s, e)) = Self::line(buf, cur)? else {
                    return Ok(None);
                };
                let body = &buf[s..e];
                Ok(Some(match t {
                    b'+' => Reply::Simple(String::from_utf8_lossy(body).into_owned()),
                    b'-' => Reply::Error(String::from_utf8_lossy(body).into_owned()),
                    _ => Reply::Int(
                        parse_i64(body).ok_or_else(|| "bad integer reply".to_string())?,
                    ),
                }))
            }
            b'$' => {
                let start = *cur;
                let Some((s, e)) = Self::line(buf, cur)? else {
                    return Ok(None);
                };
                let len = parse_i64(&buf[s..e]).ok_or_else(|| "bad bulk length".to_string())?;
                if len < 0 {
                    return Ok(Some(Reply::Nil));
                }
                let len = len as usize;
                if *cur + len + 2 > buf.len() {
                    *cur = start;
                    return Ok(None);
                }
                if &buf[*cur + len..*cur + len + 2] != b"\r\n" {
                    return Err("bulk body not CRLF-terminated".into());
                }
                let body = buf[*cur..*cur + len].to_vec();
                *cur += len + 2;
                Ok(Some(Reply::Bulk(body)))
            }
            b'*' => {
                let start = *cur;
                let Some((s, e)) = Self::line(buf, cur)? else {
                    return Ok(None);
                };
                let n = parse_i64(&buf[s..e]).ok_or_else(|| "bad array length".to_string())?;
                if n < 0 {
                    return Ok(Some(Reply::Nil));
                }
                let mut items = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    match Self::parse_at(buf, cur)? {
                        Some(r) => items.push(r),
                        None => {
                            *cur = start;
                            return Ok(None);
                        }
                    }
                }
                Ok(Some(Reply::Array(items)))
            }
            other => Err(format!("unexpected reply type byte 0x{other:02x}")),
        }
    }
}

/// A blocking, pipelining-capable connection to an `hdnh-server`.
pub struct RespClient {
    stream: TcpStream,
    dec: ReplyDecoder,
    out: Vec<u8>,
    rdbuf: [u8; 16 * 1024],
}

impl RespClient {
    /// Connects (with Nagle disabled — pipelined batches are flushed
    /// explicitly, so there is nothing for the kernel to coalesce).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient {
            stream,
            dec: ReplyDecoder::new(),
            out: Vec::with_capacity(16 * 1024),
            rdbuf: [0u8; 16 * 1024],
        })
    }

    /// Connects with bounded retry: refused/reset connects are retried with
    /// exponential backoff (10 ms doubling to a 200 ms cap) until `timeout`
    /// elapses, then the last error is returned. Covers the race where a
    /// freshly spawned (or just-restarted) server has not bound yet.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Duration::from_millis(10);
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if std::time::Instant::now() + backoff > deadline {
                        return Err(e);
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
            }
        }
    }

    /// Sets the receive timeout for [`RespClient::read_reply`].
    pub fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Queues one request (not yet written to the socket).
    pub fn cmd(&mut self, args: &[&[u8]]) {
        enc_request(&mut self.out, args);
    }

    /// Writes every queued request in one burst.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.out.is_empty() {
            self.stream.write_all(&self.out)?;
            self.out.clear();
        }
        Ok(())
    }

    /// Blocks until one reply is available. An `Err` of kind
    /// `UnexpectedEof` means the server closed the connection.
    pub fn read_reply(&mut self) -> std::io::Result<Reply> {
        loop {
            match self.dec.next() {
                Ok(Some(r)) => return Ok(r),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
            let n = self.stream.read(&mut self.rdbuf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.dec.feed(&self.rdbuf[..n]);
        }
    }

    /// One request, one reply.
    pub fn call(&mut self, args: &[&[u8]]) -> std::io::Result<Reply> {
        self.cmd(args);
        self.flush()?;
        self.read_reply()
    }

    // -- typed helpers over the u64 key/value wire vocabulary ---------------

    /// `PING` → true when the server answered `+PONG`.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(matches!(self.call(&[b"PING"])?, Reply::Simple(s) if s == "PONG"))
    }

    /// `SET k v` → `Ok(())` on `+OK`, else the error text.
    pub fn set(&mut self, k: u64, v: u64) -> std::io::Result<Result<(), String>> {
        match self.call(&[b"SET", k.to_string().as_bytes(), v.to_string().as_bytes()])? {
            r if r.is_ok() => Ok(Ok(())),
            Reply::Error(e) => Ok(Err(e)),
            other => Ok(Err(format!("unexpected reply {other:?}"))),
        }
    }

    /// `GET k` → the value, `None` when absent.
    pub fn get(&mut self, k: u64) -> std::io::Result<Option<u64>> {
        match self.call(&[b"GET", k.to_string().as_bytes()])? {
            Reply::Nil => Ok(None),
            r => Ok(r.as_u64()),
        }
    }

    /// `DEL k` → whether the key existed.
    pub fn del(&mut self, k: u64) -> std::io::Result<bool> {
        Ok(matches!(self.call(&[b"DEL", k.to_string().as_bytes()])?, Reply::Int(n) if n > 0))
    }

    /// `EXISTS k` → membership.
    pub fn exists(&mut self, k: u64) -> std::io::Result<bool> {
        Ok(matches!(self.call(&[b"EXISTS", k.to_string().as_bytes()])?, Reply::Int(n) if n > 0))
    }

    /// `MGET keys...` → per-key values in order.
    pub fn mget(&mut self, keys: &[u64]) -> std::io::Result<Vec<Option<u64>>> {
        let arg_strings: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        let mut args: Vec<&[u8]> = vec![b"MGET"];
        args.extend(arg_strings.iter().map(|s| s.as_bytes()));
        match self.call(&args)? {
            Reply::Array(items) => Ok(items
                .into_iter()
                .map(|r| match r {
                    Reply::Nil => None,
                    other => other.as_u64(),
                })
                .collect()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("MGET expected array, got {other:?}"),
            )),
        }
    }

    /// `INFO` → the server's info text.
    pub fn info(&mut self) -> std::io::Result<String> {
        match self.call(&[b"INFO"])? {
            Reply::Bulk(b) => Ok(String::from_utf8_lossy(&b).into_owned()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("INFO expected bulk, got {other:?}"),
            )),
        }
    }

    /// `SHUTDOWN` → `+OK` once the drain has begun.
    pub fn shutdown(&mut self) -> std::io::Result<Reply> {
        self.call(&[b"SHUTDOWN"])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_decoder_handles_all_types_and_splits() {
        let wire = b"+OK\r\n-ERR boom\r\n:42\r\n$3\r\nabc\r\n$-1\r\n*2\r\n$1\r\nx\r\n:7\r\n";
        // Whole-buffer decode.
        let mut d = ReplyDecoder::new();
        d.feed(wire);
        let mut replies = Vec::new();
        while let Some(r) = d.next().unwrap() {
            replies.push(r);
        }
        let expect = vec![
            Reply::Simple("OK".into()),
            Reply::Error("ERR boom".into()),
            Reply::Int(42),
            Reply::Bulk(b"abc".to_vec()),
            Reply::Nil,
            Reply::Array(vec![Reply::Bulk(b"x".to_vec()), Reply::Int(7)]),
        ];
        assert_eq!(replies, expect);
        // Byte-at-a-time decode produces the identical stream.
        let mut d = ReplyDecoder::new();
        let mut replies = Vec::new();
        for &b in wire.iter() {
            d.feed(&[b]);
            while let Some(r) = d.next().unwrap() {
                replies.push(r);
            }
        }
        assert_eq!(replies, expect);
    }

    #[test]
    fn reply_decoder_rejects_garbage_type() {
        let mut d = ReplyDecoder::new();
        d.feed(b"!what\r\n");
        assert!(d.next().is_err());
    }
}
