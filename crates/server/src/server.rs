//! RESP command engine over the event-driven [`crate::reactor`] runtime.
//!
//! **Architecture.** The runtime concerns (sockets, readiness, deadlines,
//! backpressure, drain mechanics) live in [`crate::reactor`]; this module
//! supplies the *policy* as a [`reactor::Engine`] implementation:
//! [`dispatch`]ing decoded RESP frames against one shared [`Hdnh`] table,
//! admission control against the `max_conns` budget, and the ops-plane
//! hooks (readiness flips, connection accounting). `cfg.threads()` event
//! loops each multiplex thousands of non-blocking sockets, so connection
//! count is bounded by the `max_conns` budget and fd limits — not by
//! threads. The table itself is the only shared state (reads go through
//! the epoch-pinned lock-free path, writes take per-slot locks, so loops
//! never serialize on server-side locks).
//!
//! **Backpressure.** Three independent bounds protect the server:
//! connection slots (`max_conns`; a connection over budget is answered
//! `-ERR max connections` and closed), a per-frame byte budget
//! (`max_frame`; oversized frames are a fatal protocol error), and a
//! per-connection pipelining budget (`max_inflight`; at most that many
//! replies accumulate in the output buffer before the connection stops
//! wanting reads, so a client streaming requests faster than it reads
//! replies is throttled by TCP flow control instead of growing server
//! memory).
//!
//! **Shutdown.** `SHUTDOWN` (any connection) or [`ServerHandle::shutdown`]
//! (process signal, test harness) flips one shared flag and wakes every
//! event loop. The acceptor closes; every live connection finishes
//! executing the requests already received, flushes its replies, and
//! closes. No reply that was owed for a received frame is ever dropped.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdnh::{Hdnh, HdnhError};
use hdnh_common::Key;
use hdnh_obs as obs;

use crate::config::ServerConfig;
use crate::ops::OpsState;
use crate::reactor::{self, EngineAction};
use crate::resp::{
    enc_array_header, enc_bulk, enc_error, enc_int, enc_nil, enc_simple, parse_u64, Decoder,
};

/// Handle to a running server: address, shutdown trigger, join.
pub struct ServerHandle {
    inner: reactor::ReactorHandle,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Whether a drain has been requested (by `SHUTDOWN` or
    /// [`ServerHandle::shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.is_shutting_down()
    }

    /// Begins a graceful drain: no new connections; live connections
    /// finish their received frames and close.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    /// Waits for every event loop to exit (drain complete).
    pub fn join(self) {
        self.inner.join();
    }

    /// [`ServerHandle::shutdown`] + [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds `addr` and starts the event loops. The table is shared; the
/// caller keeps its own `Arc` and may continue using it in-process.
///
/// Convenience wrapper over [`start_with_state`] with a private
/// [`OpsState`] that is published and marked ready immediately.
pub fn start<A: ToSocketAddrs>(
    table: Arc<Hdnh>,
    addr: A,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let state = OpsState::new();
    state.set_table(&table);
    let handle = start_with_state(table, addr, cfg, Arc::clone(&state))?;
    state.set_ready();
    Ok(handle)
}

/// [`start`] with a caller-supplied [`OpsState`], so an ops listener
/// started *before* the table was opened (readiness false through
/// recovery) shares the same readiness/drain/connection state as the
/// data path.
///
/// `cfg` is valid by construction ([`ServerConfig::builder`] rejects
/// nonsense knobs), so the old runtime asserts are gone.
pub fn start_with_state<A: ToSocketAddrs>(
    table: Arc<Hdnh>,
    addr: A,
    cfg: ServerConfig,
    state: Arc<OpsState>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let engine: Arc<dyn reactor::Engine> = Arc::new(RespEngine {
        table,
        state,
        cfg: cfg.clone(),
    });
    let inner = reactor::spawn(listener, cfg, engine)?;
    Ok(ServerHandle { inner })
}

/// The RESP policy plugged into the reactor: command execution against
/// the table, `max_conns` admission, ops-plane integration.
struct RespEngine {
    table: Arc<Hdnh>,
    /// Shared ops-plane state: readiness, drain flag, uptime, and the
    /// canonical live-connection count (so `INFO` and `/varz` agree).
    state: Arc<OpsState>,
    cfg: ServerConfig,
}

impl reactor::Engine for RespEngine {
    fn execute(&self, dec: &Decoder, frame: &crate::resp::Frame, out: &mut Vec<u8>) -> EngineAction {
        dispatch(self, dec, frame, out)
    }

    fn try_admit(&self) -> bool {
        // Connection budget: a slot is held for the connection's lifetime.
        let conns = &self.state.active_conns;
        if conns.fetch_add(1, Ordering::SeqCst) >= self.cfg.max_conns() {
            conns.fetch_sub(1, Ordering::SeqCst);
            obs::count(obs::Counter::NetConnRejected);
            false
        } else {
            obs::count(obs::Counter::NetConnAccepted);
            true
        }
    }

    fn on_conn_closed(&self) {
        self.state.active_conns.fetch_sub(1, Ordering::SeqCst);
    }

    fn on_drain_begin(&self) {
        // Readiness probes flip false the instant the drain begins,
        // before the event loops have even noticed.
        self.state.begin_drain();
    }
}

/// Maps a table error onto a typed RESP error reply.
fn enc_hdnh_error(out: &mut Vec<u8>, e: &HdnhError) {
    let code = match e {
        HdnhError::Corruption { .. } => "CORRUPTION",
        HdnhError::Capacity(_) => "CAPACITY",
        HdnhError::Io(_) => "IO",
        HdnhError::Recovery(_) => "RECOVERY",
        HdnhError::Integrity { .. } => "INTEGRITY",
        _ => "ERR",
    };
    enc_error(out, code, &e.to_string());
}

fn wrong_args(out: &mut Vec<u8>, cmd: &str) {
    enc_error(out, "ERR", &format!("wrong number of arguments for '{cmd}'"));
}

/// Parses one u64 argument or encodes the canonical error.
fn u64_arg(dec: &Decoder, frame: &crate::resp::Frame, i: usize, out: &mut Vec<u8>) -> Option<u64> {
    match parse_u64(dec.arg(frame, i)) {
        Some(v) => Some(v),
        None => {
            enc_error(out, "ERR", "value is not an unsigned integer or out of range");
            None
        }
    }
}

/// Rejects a value the table cannot represent *before* any table work,
/// with the typed `-CAPACITY` reply. Values up to the inline budget live
/// in the slot; longer ones go through the value log, whose per-record
/// cap is [`hdnh::MAX_VALUE_BYTES`]. The RESP frame budget (1 MiB) is
/// deliberately a little above the cap, so an over-representable value
/// draws this typed command error rather than a fatal framing error.
fn check_value_len(out: &mut Vec<u8>, v: &[u8]) -> bool {
    if v.len() > hdnh::MAX_VALUE_BYTES {
        enc_error(
            out,
            "CAPACITY",
            &format!(
                "value of {} bytes exceeds the {} byte cap",
                v.len(),
                hdnh::MAX_VALUE_BYTES
            ),
        );
        return false;
    }
    true
}

/// A sticky backend I/O fault is recorded in the flight recorder exactly
/// once per process — the fault itself is sticky, so one timeline event
/// marks the transition without flooding the ring on every denied ack.
static IO_FAULT_TRACED: AtomicBool = AtomicBool::new(false);

fn note_io_fault() {
    if !IO_FAULT_TRACED.swap(true, Ordering::Relaxed) {
        obs::trace::emit(obs::trace::EventKind::IoFault, 0, 0);
    }
}

/// Emits `+OK` only when the backend carries no sticky i/o fault. A write
/// whose flush already failed (pool-file `msync` error) must not be
/// acknowledged as durable; the fault surfaces here as `-IO`.
fn ack_ok(table: &Hdnh, out: &mut Vec<u8>) {
    match table.io_fault() {
        None => enc_simple(out, "OK"),
        Some(e) => {
            note_io_fault();
            enc_hdnh_error(out, &e);
        }
    }
}

/// Executes one decoded frame, appending exactly one reply to `out`.
/// Returns [`EngineAction::Shutdown`] for the `SHUTDOWN` command so the
/// runtime can begin the process-wide drain.
fn dispatch(
    engine: &RespEngine,
    dec: &Decoder,
    frame: &crate::resp::Frame,
    out: &mut Vec<u8>,
) -> EngineAction {
    let started = obs::op_start();
    let name = dec.arg(frame, 0);
    let mut upper = [0u8; 16];
    if name.is_empty() || name.len() > upper.len() {
        obs::count(obs::Counter::NetUnknownCmd);
        enc_error(out, "ERR", "unknown command");
        return EngineAction::Continue;
    }
    for (d, s) in upper.iter_mut().zip(name) {
        *d = s.to_ascii_uppercase();
    }
    let cmd = &upper[..name.len()];
    let table = &engine.table;
    let mut action = EngineAction::Continue;
    let netcmd = match cmd {
        b"PING" => {
            if frame.len() > 2 {
                wrong_args(out, "ping");
            } else if frame.len() == 2 {
                enc_bulk(out, dec.arg(frame, 1));
            } else {
                enc_simple(out, "PONG");
            }
            obs::NetCmd::Ping
        }
        b"GET" => {
            if frame.len() != 2 {
                wrong_args(out, "get");
            } else if let Some(k) = u64_arg(dec, frame, 1, out) {
                match table.get_bytes(&Key::from_u64(k)) {
                    Ok(Some(v)) => enc_bulk(out, &v),
                    Ok(None) => enc_nil(out),
                    Err(e) => enc_hdnh_error(out, &e),
                }
            }
            obs::NetCmd::Get
        }
        b"SET" => {
            if frame.len() != 3 {
                wrong_args(out, "set");
            } else if let Some(k) = u64_arg(dec, frame, 1, out) {
                let v = dec.arg(frame, 2);
                if check_value_len(out, v) {
                    match table.upsert_bytes(&Key::from_u64(k), v) {
                        Ok(()) => ack_ok(table, out),
                        Err(e) => enc_hdnh_error(out, &e),
                    }
                }
            }
            obs::NetCmd::Set
        }
        b"DEL" => {
            if frame.len() < 2 {
                wrong_args(out, "del");
            } else {
                let mut removed = 0i64;
                let mut failed = None;
                for i in 1..frame.len() {
                    let Some(k) = parse_u64(dec.arg(frame, i)) else {
                        failed = Some(());
                        break;
                    };
                    match table.remove(&Key::from_u64(k)) {
                        Ok(true) => removed += 1,
                        Ok(false) => {}
                        Err(e) => {
                            enc_hdnh_error(out, &e);
                            finish(started, obs::NetCmd::Del);
                            return action;
                        }
                    }
                }
                if failed.is_some() {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else if let Some(e) = table.io_fault() {
                    // Deletions mutate NVM too: no ack over a failed flush.
                    note_io_fault();
                    enc_hdnh_error(out, &e);
                } else {
                    enc_int(out, removed);
                }
            }
            obs::NetCmd::Del
        }
        b"EXISTS" => {
            if frame.len() < 2 {
                wrong_args(out, "exists");
            } else {
                let mut found = 0i64;
                let mut bad = false;
                for i in 1..frame.len() {
                    let Some(k) = parse_u64(dec.arg(frame, i)) else {
                        bad = true;
                        break;
                    };
                    if matches!(table.get(&Key::from_u64(k)), Ok(Some(_))) {
                        found += 1;
                    }
                }
                if bad {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else {
                    enc_int(out, found);
                }
            }
            obs::NetCmd::Exists
        }
        b"MGET" => {
            if frame.len() < 2 {
                wrong_args(out, "mget");
            } else {
                // Parse every key before emitting the array header so a bad
                // key yields one error reply, not a torn array.
                let mut keys = Vec::with_capacity(frame.len() - 1);
                let mut bad = false;
                for i in 1..frame.len() {
                    match parse_u64(dec.arg(frame, i)) {
                        Some(k) => keys.push(k),
                        None => {
                            bad = true;
                            break;
                        }
                    }
                }
                if bad {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else {
                    enc_array_header(out, keys.len());
                    for k in keys {
                        match table.get_bytes(&Key::from_u64(k)) {
                            Ok(Some(v)) => enc_bulk(out, &v),
                            // Per-element nil for misses *and* per-element
                            // failures: the array shape must match the ask.
                            _ => enc_nil(out),
                        }
                    }
                }
            }
            obs::NetCmd::MGet
        }
        b"MSET" => {
            if frame.len() < 3 || frame.len().is_multiple_of(2) {
                wrong_args(out, "mset");
            } else {
                let mut err = None;
                for i in (1..frame.len()).step_by(2) {
                    let Some(k) = parse_u64(dec.arg(frame, i)) else {
                        enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                        finish(started, obs::NetCmd::MSet);
                        return action;
                    };
                    let v = dec.arg(frame, i + 1);
                    if !check_value_len(out, v) {
                        finish(started, obs::NetCmd::MSet);
                        return action;
                    }
                    if let Err(e) = table.upsert_bytes(&Key::from_u64(k), v) {
                        err = Some(e);
                        break;
                    }
                }
                match err {
                    None => ack_ok(table, out),
                    Some(e) => enc_hdnh_error(out, &e),
                }
            }
            obs::NetCmd::MSet
        }
        b"INFO" => {
            if frame.len() != 1 {
                wrong_args(out, "info");
            } else {
                let state = &engine.state;
                let mut s = format!(
                    "version:{}\r\ngit_sha:{}\r\nuptime_seconds:{}\r\nbackend:{}\r\nrecords:{}\r\nload_factor:{:.3}\r\nresizes:{}\r\nocf_bytes:{}\r\nconnections:{}\r\nmax_connections:{}\r\nworkers:{}\r\nready:{}\r\ndraining:{}\r\nshutting_down:{}\r\n",
                    crate::ops::VERSION,
                    crate::ops::GIT_HASH,
                    state.uptime_secs(),
                    table.backend_kind(),
                    table.len(),
                    table.load_factor(),
                    table.resize_count(),
                    table.ocf_footprint_bytes(),
                    state.active_conns.load(Ordering::SeqCst),
                    engine.cfg.max_conns(),
                    engine.cfg.threads(),
                    state.not_ready_reason().is_none() as u8,
                    state.is_draining() as u8,
                    state.is_draining() as u8,
                );
                let vs = table.vlog_stats();
                s.push_str(&format!(
                    "vlog_segments:{}\r\nvlog_capacity_bytes:{}\r\nvlog_used_bytes:{}\r\nvlog_garbage_bytes:{}\r\nvlog_live_bytes:{}\r\n",
                    vs.segments, vs.capacity_bytes, vs.used_bytes, vs.garbage_bytes, vs.live_bytes,
                ));
                if let Some(gc) = vs.last_gc {
                    s.push_str(&format!(
                        "vlog_last_gc_segments_retired:{}\r\nvlog_last_gc_records_relocated:{}\r\nvlog_last_gc_bytes_reclaimed:{}\r\n",
                        gc.segments_retired, gc.records_relocated, gc.bytes_reclaimed,
                    ));
                }
                enc_bulk(out, s.as_bytes());
            }
            obs::NetCmd::Info
        }
        b"SCRUB" => {
            if frame.len() != 1 {
                wrong_args(out, "scrub");
            } else {
                enc_bulk(out, table.scrub().to_json().as_bytes());
            }
            obs::NetCmd::Scrub
        }
        b"METRICS" => {
            let mode = if frame.len() >= 2 {
                let mut m = [0u8; 8];
                let a = dec.arg(frame, 1);
                if a.len() > m.len() {
                    enc_error(out, "ERR", "METRICS takes JSON or PROM");
                    finish(started, obs::NetCmd::Metrics);
                    return action;
                }
                for (d, s) in m.iter_mut().zip(a) {
                    *d = s.to_ascii_uppercase();
                }
                match &m[..a.len()] {
                    b"JSON" => 0u8,
                    b"PROM" => 1,
                    _ => {
                        enc_error(out, "ERR", "METRICS takes JSON or PROM");
                        finish(started, obs::NetCmd::Metrics);
                        return action;
                    }
                }
            } else {
                0
            };
            let snap = obs::snapshot();
            let body = if mode == 0 { snap.to_json() } else { snap.to_prometheus() };
            enc_bulk(out, body.as_bytes());
            obs::NetCmd::Metrics
        }
        b"BACKUP" => {
            if frame.len() != 2 {
                wrong_args(out, "backup");
            } else {
                // The path is server-side: the snapshot lands on the
                // server's filesystem, like Redis's BGSAVE target.
                match std::str::from_utf8(dec.arg(frame, 1)) {
                    Ok(dir) if !dir.is_empty() => {
                        match table.snapshot(std::path::Path::new(dir)) {
                            Ok(report) => enc_bulk(
                                out,
                                format!("files:{} bytes:{}", report.files, report.bytes)
                                    .as_bytes(),
                            ),
                            Err(e) => enc_hdnh_error(out, &e),
                        }
                    }
                    _ => enc_error(out, "ERR", "BACKUP takes a directory path"),
                }
            }
            obs::NetCmd::Backup
        }
        b"COMPACT" => {
            if frame.len() != 1 {
                wrong_args(out, "compact");
            } else {
                // Synchronous on purpose: the caller learns exactly what
                // one pass reclaimed. Readers and writers are never
                // blocked by compaction, only concurrent COMPACTs queue.
                match table.compact() {
                    Ok(r) => enc_bulk(
                        out,
                        format!(
                            "victims:{} segments_retired:{} records_relocated:{} bytes_reclaimed:{}",
                            r.victims, r.segments_retired, r.records_relocated, r.bytes_reclaimed
                        )
                        .as_bytes(),
                    ),
                    Err(e) => enc_hdnh_error(out, &e),
                }
            }
            obs::NetCmd::Compact
        }
        b"SHUTDOWN" => {
            enc_simple(out, "OK");
            action = EngineAction::Shutdown;
            obs::NetCmd::Shutdown
        }
        _ => {
            obs::count(obs::Counter::NetUnknownCmd);
            enc_error(
                out,
                "ERR",
                &format!("unknown command '{}'", String::from_utf8_lossy(name)),
            );
            return action;
        }
    };
    finish(started, netcmd);
    action
}

#[inline]
fn finish(started: Option<Instant>, cmd: obs::NetCmd) {
    obs::net_record(cmd, started);
}

// ---------------------------------------------------------------------------
// Process signal integration (SIGTERM/SIGINT → graceful drain)
// ---------------------------------------------------------------------------

static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: std::os::raw::c_int) {
    // Only an atomic store: async-signal-safe by construction.
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set a process-wide drain flag
/// (poll it with [`signaled`]). No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(
                signum: std::os::raw::c_int,
                handler: extern "C" fn(std::os::raw::c_int),
            ) -> usize;
        }
        const SIGINT: std::os::raw::c_int = 2;
        const SIGTERM: std::os::raw::c_int = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Whether a termination signal arrived since
/// [`install_signal_handlers`].
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Runs the server until `SHUTDOWN` or a termination signal, then drains
/// and returns. The convenience wrapper behind `hdnh-cli serve`.
pub fn serve_until_signal(handle: ServerHandle) {
    install_signal_handlers();
    while !handle.is_shutting_down() && !signaled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown_and_join();
}
