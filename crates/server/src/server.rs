//! Threaded RESP server over one shared [`Hdnh`] table.
//!
//! **Threading.** `threads` workers share one `TcpListener`; each worker
//! loops `accept → serve one connection to completion`. There is no
//! central dispatcher and no cross-worker queue — the kernel's accept
//! queue is the load balancer, and the table itself is the only shared
//! state (reads go through the epoch-pinned lock-free path, writes take
//! per-slot locks, so workers never serialize on server-side locks).
//!
//! **Backpressure.** Three independent bounds protect the server:
//! connection slots (`max_conns`; a connection over budget is answered
//! `-ERR max connections` and closed), a per-frame byte budget
//! (`max_frame`; oversized frames are a fatal protocol error), and a
//! per-connection pipelining budget (`max_inflight`; at most that many
//! replies accumulate in the output buffer before the server stops
//! decoding and flushes, so a client streaming requests faster than it
//! reads replies is eventually throttled by TCP flow control instead of
//! growing server memory).
//!
//! **Shutdown.** `SHUTDOWN` (any connection) or [`ServerHandle::shutdown`]
//! (process signal, test harness) flips one shared flag. Accept loops
//! stop taking new connections; every live connection finishes executing
//! the requests already received, flushes its replies, and closes. No
//! reply that was owed for a received frame is ever dropped.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdnh::{Hdnh, HdnhError};
use hdnh_common::{Key, Value};
use hdnh_obs as obs;

use crate::ops::OpsState;
use crate::resp::{
    enc_array_header, enc_bulk, enc_error, enc_int, enc_nil, enc_simple, parse_u64, Decoder,
    DEFAULT_MAX_FRAME,
};

/// How long a worker blocks in one read before re-checking the shutdown
/// flag and the idle clock.
const POLL: Duration = Duration::from_millis(100);

/// After a drain begins, how long a connection keeps answering bytes that
/// were already in flight before closing. Bounds how much a firehosing
/// client can stretch shutdown.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker (accept + serve) threads.
    pub threads: usize,
    /// Concurrent connection budget; extra connections are rejected with
    /// an error reply.
    pub max_conns: usize,
    /// Close a connection after this long with no bytes from the peer.
    pub read_timeout: Duration,
    /// Socket write timeout (a peer that stops reading its replies for
    /// this long is dropped).
    pub write_timeout: Duration,
    /// Pipelining budget: max replies buffered before a forced flush.
    pub max_inflight: usize,
    /// Per-frame byte budget (see [`crate::resp::Decoder`]).
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_conns: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_inflight: 128,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

struct Shared {
    table: Arc<Hdnh>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Shared ops-plane state: readiness, drain flag, uptime, and the
    /// canonical live-connection count (so `INFO` and `/varz` agree).
    state: Arc<OpsState>,
}

/// Handle to a running server: address, shutdown trigger, join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a drain has been requested (by `SHUTDOWN` or
    /// [`ServerHandle::shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: no new connections; live connections
    /// finish their received frames and close.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Waits for every worker to exit (drain complete).
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// [`ServerHandle::shutdown`] + [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Readiness probes flip false the instant the drain begins, before the
    // accept loops have even noticed.
    shared.state.begin_drain();
    // Wake workers blocked in accept(): each dummy connection unblocks one
    // accept call, whose worker then observes the flag and exits.
    for _ in 0..shared.cfg.threads {
        let _ = TcpStream::connect(shared.addr);
    }
}

/// Binds `addr` and starts the worker threads. The table is shared; the
/// caller keeps its own `Arc` and may continue using it in-process.
///
/// Convenience wrapper over [`start_with_state`] with a private
/// [`OpsState`] that is published and marked ready immediately.
pub fn start<A: ToSocketAddrs>(table: Arc<Hdnh>, addr: A, cfg: ServerConfig) -> std::io::Result<ServerHandle> {
    let state = OpsState::new();
    state.set_table(&table);
    let handle = start_with_state(table, addr, cfg, Arc::clone(&state))?;
    state.set_ready();
    Ok(handle)
}

/// [`start`] with a caller-supplied [`OpsState`], so an ops listener
/// started *before* the table was opened (readiness false through
/// recovery) shares the same readiness/drain/connection state as the
/// data path.
pub fn start_with_state<A: ToSocketAddrs>(
    table: Arc<Hdnh>,
    addr: A,
    cfg: ServerConfig,
    state: Arc<OpsState>,
) -> std::io::Result<ServerHandle> {
    assert!(cfg.threads >= 1, "server needs at least one worker");
    assert!(cfg.max_inflight >= 1, "pipelining budget must be positive");
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        table,
        cfg,
        shutdown: AtomicBool::new(false),
        addr: local,
        state,
    });
    let mut workers = Vec::with_capacity(shared.cfg.threads);
    for i in 0..shared.cfg.threads {
        let shared = Arc::clone(&shared);
        let listener = listener.try_clone()?;
        workers.push(
            std::thread::Builder::new()
                .name(format!("hdnh-net-{i}"))
                .spawn(move || worker_loop(&shared, &listener))?,
        );
    }
    Ok(ServerHandle { shared, workers })
}

fn worker_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Connection budget: a slot is held for the connection's lifetime.
        let conns = &shared.state.active_conns;
        if conns.fetch_add(1, Ordering::SeqCst) >= shared.cfg.max_conns {
            conns.fetch_sub(1, Ordering::SeqCst);
            obs::count(obs::Counter::NetConnRejected);
            let mut out = Vec::new();
            enc_error(&mut out, "ERR", "max connections reached");
            let mut stream = stream;
            let _ = stream.write_all(&out);
            continue;
        }
        obs::count(obs::Counter::NetConnAccepted);
        let _ = serve_conn(shared, stream);
        conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serves one connection until EOF, timeout, fatal protocol error, or
/// drain. Frames already received when a drain begins are always answered.
fn serve_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let mut stream = stream;
    let mut dec = Decoder::new(shared.cfg.max_frame);
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut rdbuf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Drain the decoder: execute buffered frames, flushing every
        // `max_inflight` replies so the output buffer stays bounded.
        let mut inflight = 0usize;
        loop {
            match dec.next() {
                Ok(Some(frame)) => {
                    obs::count(obs::Counter::NetFrameDecoded);
                    dispatch(shared, &dec, &frame, &mut out);
                    inflight += 1;
                    if inflight >= shared.cfg.max_inflight {
                        flush(&mut stream, &mut out)?;
                        inflight = 0;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    obs::count(obs::Counter::NetProtocolError);
                    enc_error(&mut out, "ERR", &format!("protocol error: {e}"));
                    flush(&mut stream, &mut out)?;
                    if e.recoverable() {
                        continue;
                    }
                    return Ok(()); // fatal: close with the error delivered
                }
            }
        }
        flush(&mut stream, &mut out)?;
        dec.compact();

        // Drain semantics: every received frame is answered. After the
        // shutdown flag is seen, the connection keeps reading for a short
        // grace window so a pipelined batch split across TCP segments
        // still gets all its replies, then closes at the first moment of
        // silence (or at the grace deadline).
        if shared.shutdown.load(Ordering::SeqCst) {
            match drain_deadline {
                None => drain_deadline = Some(Instant::now() + DRAIN_GRACE),
                Some(d) if Instant::now() >= d => return Ok(()),
                Some(_) => {}
            }
        }

        match stream.read(&mut rdbuf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                obs::add(obs::Counter::NetBytesIn, n as u64);
                dec.feed(&rdbuf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if drain_deadline.is_some() {
                    return Ok(()); // draining and the wire went quiet
                }
                if last_activity.elapsed() >= shared.cfg.read_timeout {
                    return Ok(()); // idle timeout
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn flush(stream: &mut TcpStream, out: &mut Vec<u8>) -> std::io::Result<()> {
    if !out.is_empty() {
        stream.write_all(out)?;
        obs::add(obs::Counter::NetBytesOut, out.len() as u64);
        out.clear();
    }
    Ok(())
}

/// Maps a table error onto a typed RESP error reply.
fn enc_hdnh_error(out: &mut Vec<u8>, e: &HdnhError) {
    let code = match e {
        HdnhError::Corruption { .. } => "CORRUPTION",
        HdnhError::Capacity(_) => "CAPACITY",
        HdnhError::Io(_) => "IO",
        HdnhError::Recovery(_) => "RECOVERY",
        HdnhError::Integrity { .. } => "INTEGRITY",
        _ => "ERR",
    };
    enc_error(out, code, &e.to_string());
}

fn wrong_args(out: &mut Vec<u8>, cmd: &str) {
    enc_error(out, "ERR", &format!("wrong number of arguments for '{cmd}'"));
}

/// Parses one u64 argument or encodes the canonical error.
fn u64_arg(dec: &Decoder, frame: &crate::resp::Frame, i: usize, out: &mut Vec<u8>) -> Option<u64> {
    match parse_u64(dec.arg(frame, i)) {
        Some(v) => Some(v),
        None => {
            enc_error(out, "ERR", "value is not an unsigned integer or out of range");
            None
        }
    }
}

/// Update-then-insert upsert keeping the typed error (the `HashIndex`
/// trait's `upsert` narrows errors to the small `IndexError` vocabulary).
fn upsert(table: &Hdnh, k: u64, v: u64) -> Result<(), HdnhError> {
    let key = Key::from_u64(k);
    let val = Value::from_u64(v);
    loop {
        match table.update(&key, &val) {
            Ok(()) => return Ok(()),
            Err(HdnhError::KeyNotFound) => match table.insert(&key, &val) {
                Ok(()) => return Ok(()),
                Err(HdnhError::DuplicateKey) => continue, // lost a race; retry update
                Err(e) => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// A sticky backend I/O fault is recorded in the flight recorder exactly
/// once per process — the fault itself is sticky, so one timeline event
/// marks the transition without flooding the ring on every denied ack.
static IO_FAULT_TRACED: AtomicBool = AtomicBool::new(false);

fn note_io_fault() {
    if !IO_FAULT_TRACED.swap(true, Ordering::Relaxed) {
        obs::trace::emit(obs::trace::EventKind::IoFault, 0, 0);
    }
}

/// Emits `+OK` only when the backend carries no sticky i/o fault. A write
/// whose flush already failed (pool-file `msync` error) must not be
/// acknowledged as durable; the fault surfaces here as `-IO`.
fn ack_ok(table: &Hdnh, out: &mut Vec<u8>) {
    match table.io_fault() {
        None => enc_simple(out, "OK"),
        Some(e) => {
            note_io_fault();
            enc_hdnh_error(out, &e);
        }
    }
}

/// Executes one decoded frame, appending exactly one reply to `out`.
fn dispatch(shared: &Arc<Shared>, dec: &Decoder, frame: &crate::resp::Frame, out: &mut Vec<u8>) {
    let started = obs::op_start();
    let name = dec.arg(frame, 0);
    let mut upper = [0u8; 16];
    if name.is_empty() || name.len() > upper.len() {
        obs::count(obs::Counter::NetUnknownCmd);
        enc_error(out, "ERR", "unknown command");
        return;
    }
    for (d, s) in upper.iter_mut().zip(name) {
        *d = s.to_ascii_uppercase();
    }
    let cmd = &upper[..name.len()];
    let table = &shared.table;
    let netcmd = match cmd {
        b"PING" => {
            if frame.len() > 2 {
                wrong_args(out, "ping");
            } else if frame.len() == 2 {
                enc_bulk(out, dec.arg(frame, 1));
            } else {
                enc_simple(out, "PONG");
            }
            obs::NetCmd::Ping
        }
        b"GET" => {
            if frame.len() != 2 {
                wrong_args(out, "get");
            } else if let Some(k) = u64_arg(dec, frame, 1, out) {
                match table.get(&Key::from_u64(k)) {
                    Ok(Some(v)) => enc_bulk(out, v.as_u64().to_string().as_bytes()),
                    Ok(None) => enc_nil(out),
                    Err(e) => enc_hdnh_error(out, &e),
                }
            }
            obs::NetCmd::Get
        }
        b"SET" => {
            if frame.len() != 3 {
                wrong_args(out, "set");
            } else if let Some(k) = u64_arg(dec, frame, 1, out) {
                if let Some(v) = u64_arg(dec, frame, 2, out) {
                    match upsert(table, k, v) {
                        Ok(()) => ack_ok(table, out),
                        Err(e) => enc_hdnh_error(out, &e),
                    }
                }
            }
            obs::NetCmd::Set
        }
        b"DEL" => {
            if frame.len() < 2 {
                wrong_args(out, "del");
            } else {
                let mut removed = 0i64;
                let mut failed = None;
                for i in 1..frame.len() {
                    let Some(k) = parse_u64(dec.arg(frame, i)) else {
                        failed = Some(());
                        break;
                    };
                    match table.remove(&Key::from_u64(k)) {
                        Ok(true) => removed += 1,
                        Ok(false) => {}
                        Err(e) => {
                            enc_hdnh_error(out, &e);
                            return finish(started, obs::NetCmd::Del);
                        }
                    }
                }
                if failed.is_some() {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else if let Some(e) = table.io_fault() {
                    // Deletions mutate NVM too: no ack over a failed flush.
                    note_io_fault();
                    enc_hdnh_error(out, &e);
                } else {
                    enc_int(out, removed);
                }
            }
            obs::NetCmd::Del
        }
        b"EXISTS" => {
            if frame.len() < 2 {
                wrong_args(out, "exists");
            } else {
                let mut found = 0i64;
                let mut bad = false;
                for i in 1..frame.len() {
                    let Some(k) = parse_u64(dec.arg(frame, i)) else {
                        bad = true;
                        break;
                    };
                    if matches!(table.get(&Key::from_u64(k)), Ok(Some(_))) {
                        found += 1;
                    }
                }
                if bad {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else {
                    enc_int(out, found);
                }
            }
            obs::NetCmd::Exists
        }
        b"MGET" => {
            if frame.len() < 2 {
                wrong_args(out, "mget");
            } else {
                // Parse every key before emitting the array header so a bad
                // key yields one error reply, not a torn array.
                let mut keys = Vec::with_capacity(frame.len() - 1);
                let mut bad = false;
                for i in 1..frame.len() {
                    match parse_u64(dec.arg(frame, i)) {
                        Some(k) => keys.push(k),
                        None => {
                            bad = true;
                            break;
                        }
                    }
                }
                if bad {
                    enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                } else {
                    enc_array_header(out, keys.len());
                    for k in keys {
                        match table.get(&Key::from_u64(k)) {
                            Ok(Some(v)) => enc_bulk(out, v.as_u64().to_string().as_bytes()),
                            // Per-element nil for misses *and* per-element
                            // failures: the array shape must match the ask.
                            _ => enc_nil(out),
                        }
                    }
                }
            }
            obs::NetCmd::MGet
        }
        b"MSET" => {
            if frame.len() < 3 || frame.len().is_multiple_of(2) {
                wrong_args(out, "mset");
            } else {
                let mut err = None;
                for i in (1..frame.len()).step_by(2) {
                    let (Some(k), Some(v)) =
                        (parse_u64(dec.arg(frame, i)), parse_u64(dec.arg(frame, i + 1)))
                    else {
                        enc_error(out, "ERR", "value is not an unsigned integer or out of range");
                        return finish(started, obs::NetCmd::MSet);
                    };
                    if let Err(e) = upsert(table, k, v) {
                        err = Some(e);
                        break;
                    }
                }
                match err {
                    None => ack_ok(table, out),
                    Some(e) => enc_hdnh_error(out, &e),
                }
            }
            obs::NetCmd::MSet
        }
        b"INFO" => {
            if frame.len() != 1 {
                wrong_args(out, "info");
            } else {
                let state = &shared.state;
                let s = format!(
                    "version:{}\r\ngit_sha:{}\r\nuptime_seconds:{}\r\nbackend:{}\r\nrecords:{}\r\nload_factor:{:.3}\r\nresizes:{}\r\nocf_bytes:{}\r\nconnections:{}\r\nmax_connections:{}\r\nworkers:{}\r\nready:{}\r\ndraining:{}\r\nshutting_down:{}\r\n",
                    crate::ops::VERSION,
                    crate::ops::GIT_HASH,
                    state.uptime_secs(),
                    table.backend_kind(),
                    table.len(),
                    table.load_factor(),
                    table.resize_count(),
                    table.ocf_footprint_bytes(),
                    state.active_conns.load(Ordering::SeqCst),
                    shared.cfg.max_conns,
                    shared.cfg.threads,
                    state.not_ready_reason().is_none() as u8,
                    state.is_draining() as u8,
                    shared.shutdown.load(Ordering::SeqCst) as u8,
                );
                enc_bulk(out, s.as_bytes());
            }
            obs::NetCmd::Info
        }
        b"SCRUB" => {
            if frame.len() != 1 {
                wrong_args(out, "scrub");
            } else {
                enc_bulk(out, table.scrub().to_json().as_bytes());
            }
            obs::NetCmd::Scrub
        }
        b"METRICS" => {
            let mode = if frame.len() >= 2 {
                let mut m = [0u8; 8];
                let a = dec.arg(frame, 1);
                if a.len() > m.len() {
                    enc_error(out, "ERR", "METRICS takes JSON or PROM");
                    return finish(started, obs::NetCmd::Metrics);
                }
                for (d, s) in m.iter_mut().zip(a) {
                    *d = s.to_ascii_uppercase();
                }
                match &m[..a.len()] {
                    b"JSON" => 0u8,
                    b"PROM" => 1,
                    _ => {
                        enc_error(out, "ERR", "METRICS takes JSON or PROM");
                        return finish(started, obs::NetCmd::Metrics);
                    }
                }
            } else {
                0
            };
            let snap = obs::snapshot();
            let body = if mode == 0 { snap.to_json() } else { snap.to_prometheus() };
            enc_bulk(out, body.as_bytes());
            obs::NetCmd::Metrics
        }
        b"BACKUP" => {
            if frame.len() != 2 {
                wrong_args(out, "backup");
            } else {
                // The path is server-side: the snapshot lands on the
                // server's filesystem, like Redis's BGSAVE target.
                match std::str::from_utf8(dec.arg(frame, 1)) {
                    Ok(dir) if !dir.is_empty() => {
                        match table.snapshot(std::path::Path::new(dir)) {
                            Ok(report) => enc_bulk(
                                out,
                                format!("files:{} bytes:{}", report.files, report.bytes)
                                    .as_bytes(),
                            ),
                            Err(e) => enc_hdnh_error(out, &e),
                        }
                    }
                    _ => enc_error(out, "ERR", "BACKUP takes a directory path"),
                }
            }
            obs::NetCmd::Backup
        }
        b"SHUTDOWN" => {
            enc_simple(out, "OK");
            begin_shutdown(shared);
            obs::NetCmd::Shutdown
        }
        _ => {
            obs::count(obs::Counter::NetUnknownCmd);
            enc_error(
                out,
                "ERR",
                &format!("unknown command '{}'", String::from_utf8_lossy(name)),
            );
            return;
        }
    };
    finish(started, netcmd)
}

#[inline]
fn finish(started: Option<Instant>, cmd: obs::NetCmd) {
    obs::net_record(cmd, started);
}

// ---------------------------------------------------------------------------
// Process signal integration (SIGTERM/SIGINT → graceful drain)
// ---------------------------------------------------------------------------

static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_sig: std::os::raw::c_int) {
    // Only an atomic store: async-signal-safe by construction.
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set a process-wide drain flag
/// (poll it with [`signaled`]). No-op off Unix.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(
                signum: std::os::raw::c_int,
                handler: extern "C" fn(std::os::raw::c_int),
            ) -> usize;
        }
        const SIGINT: std::os::raw::c_int = 2;
        const SIGTERM: std::os::raw::c_int = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Whether a termination signal arrived since
/// [`install_signal_handlers`].
pub fn signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Runs the server until `SHUTDOWN` or a termination signal, then drains
/// and returns. The convenience wrapper behind `hdnh-cli serve`.
pub fn serve_until_signal(handle: ServerHandle) {
    install_signal_handlers();
    while !handle.is_shutting_down() && !signaled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown_and_join();
}
