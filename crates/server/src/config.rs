//! Validated server configuration.
//!
//! [`ServerConfig`] used to be a bag of public fields; any nonsense
//! combination (zero event loops, a zero pipelining budget, a read
//! timeout finer than the reactor's timer granularity) compiled fine and
//! failed at runtime in whatever way it happened to fail. The redesigned
//! type can only be obtained two ways, both of which guarantee a sane
//! configuration:
//!
//! * [`ServerConfig::default`] — today's production values, unchanged
//!   from the pre-builder era;
//! * [`ServerConfig::builder`] — explicit knobs, checked by
//!   [`ServerConfigBuilder::build`] with a typed [`ConfigError`] naming
//!   the first offending knob.
//!
//! Fields are private on purpose: read them through the accessors, and
//! construct through the builder so validation cannot be skipped.

use std::fmt;
use std::time::Duration;

use crate::resp::DEFAULT_MAX_FRAME;

/// Finest timeout the reactor honors. Deadlines (idle, drain) are lazily
/// re-armed timer-heap entries; a read timeout below this granularity
/// would promise a precision the event loop does not deliver.
pub const MIN_TIMEOUT: Duration = Duration::from_millis(100);

/// A rejected configuration: the first nonsense knob found by
/// [`ServerConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads == 0`: the reactor needs at least one event loop.
    ZeroThreads,
    /// `max_conns == 0`: a server that admits nothing serves nothing.
    ZeroMaxConns,
    /// `max_inflight == 0`: the pipelining budget must admit at least one
    /// reply or every connection stalls before its first answer.
    ZeroInflight,
    /// `max_frame == 0`: every request would be oversized.
    ZeroFrameBudget,
    /// `read_timeout` below [`MIN_TIMEOUT`], the reactor's timer
    /// granularity.
    ReadTimeoutTooShort {
        /// The rejected value.
        got: Duration,
    },
    /// `write_timeout` below [`MIN_TIMEOUT`].
    WriteTimeoutTooShort {
        /// The rejected value.
        got: Duration,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "threads must be >= 1"),
            ConfigError::ZeroMaxConns => write!(f, "max_conns must be >= 1"),
            ConfigError::ZeroInflight => write!(f, "max_inflight must be >= 1"),
            ConfigError::ZeroFrameBudget => write!(f, "max_frame must be >= 1"),
            ConfigError::ReadTimeoutTooShort { got } => write!(
                f,
                "read_timeout {got:?} is below the {MIN_TIMEOUT:?} timer granularity"
            ),
            ConfigError::WriteTimeoutTooShort { got } => write!(
                f,
                "write_timeout {got:?} is below the {MIN_TIMEOUT:?} timer granularity"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Server tuning knobs (validated; see the module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    threads: usize,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_inflight: usize,
    max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_conns: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_inflight: 128,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

impl ServerConfig {
    /// A builder seeded with the [`Default`] values.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: ServerConfig::default(),
        }
    }

    /// Reactor event loops (each pinned to its own poller; loop 0 also
    /// accepts).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Concurrent connection budget; extra connections are answered
    /// `-ERR max connections reached` and closed.
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// Close a connection after this long with no bytes from the peer.
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// Drop a connection whose peer stops reading replies for this long
    /// while output is pending.
    pub fn write_timeout(&self) -> Duration {
        self.write_timeout
    }

    /// Pipelining budget: max replies buffered before decoding pauses
    /// until the output buffer reaches the socket.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Per-frame byte budget (see [`crate::resp::Decoder`]).
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }
}

/// Builder for [`ServerConfig`]; every setter overrides one default.
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Sets the number of reactor event loops.
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Sets the concurrent connection budget.
    pub fn max_conns(mut self, n: usize) -> Self {
        self.cfg.max_conns = n;
        self
    }

    /// Sets the idle read timeout.
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.cfg.read_timeout = t;
        self
    }

    /// Sets the pending-output write timeout.
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.cfg.write_timeout = t;
        self
    }

    /// Sets the pipelining budget.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.cfg.max_inflight = n;
        self
    }

    /// Sets the per-frame byte budget.
    pub fn max_frame(mut self, n: usize) -> Self {
        self.cfg.max_frame = n;
        self
    }

    /// Validates and produces the configuration, or names the first
    /// nonsense knob.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = self.cfg;
        if c.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if c.max_conns == 0 {
            return Err(ConfigError::ZeroMaxConns);
        }
        if c.max_inflight == 0 {
            return Err(ConfigError::ZeroInflight);
        }
        if c.max_frame == 0 {
            return Err(ConfigError::ZeroFrameBudget);
        }
        if c.read_timeout < MIN_TIMEOUT {
            return Err(ConfigError::ReadTimeoutTooShort { got: c.read_timeout });
        }
        if c.write_timeout < MIN_TIMEOUT {
            return Err(ConfigError::WriteTimeoutTooShort { got: c.write_timeout });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_historical_values() {
        let c = ServerConfig::default();
        assert_eq!(c.threads(), 4);
        assert_eq!(c.max_conns(), 64);
        assert_eq!(c.read_timeout(), Duration::from_secs(30));
        assert_eq!(c.write_timeout(), Duration::from_secs(10));
        assert_eq!(c.max_inflight(), 128);
        assert_eq!(c.max_frame(), DEFAULT_MAX_FRAME);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let c = ServerConfig::builder()
            .threads(2)
            .max_conns(10)
            .read_timeout(Duration::from_secs(1))
            .write_timeout(Duration::from_secs(2))
            .max_inflight(7)
            .max_frame(4096)
            .build()
            .unwrap();
        assert_eq!(c.threads(), 2);
        assert_eq!(c.max_conns(), 10);
        assert_eq!(c.read_timeout(), Duration::from_secs(1));
        assert_eq!(c.write_timeout(), Duration::from_secs(2));
        assert_eq!(c.max_inflight(), 7);
        assert_eq!(c.max_frame(), 4096);
    }

    #[test]
    fn nonsense_knobs_get_typed_errors() {
        assert_eq!(
            ServerConfig::builder().threads(0).build(),
            Err(ConfigError::ZeroThreads)
        );
        assert_eq!(
            ServerConfig::builder().max_conns(0).build(),
            Err(ConfigError::ZeroMaxConns)
        );
        assert_eq!(
            ServerConfig::builder().max_inflight(0).build(),
            Err(ConfigError::ZeroInflight)
        );
        assert_eq!(
            ServerConfig::builder().max_frame(0).build(),
            Err(ConfigError::ZeroFrameBudget)
        );
        let short = Duration::from_millis(5);
        assert_eq!(
            ServerConfig::builder().read_timeout(short).build(),
            Err(ConfigError::ReadTimeoutTooShort { got: short })
        );
        assert_eq!(
            ServerConfig::builder().write_timeout(short).build(),
            Err(ConfigError::WriteTimeoutTooShort { got: short })
        );
        // Errors render a human-readable reason naming the bound.
        let msg = ConfigError::ReadTimeoutTooShort { got: short }.to_string();
        assert!(msg.contains("read_timeout"), "{msg}");
    }

    #[test]
    fn config_errors_implement_partial_eq_for_matching() {
        assert_ne!(ConfigError::ZeroThreads, ConfigError::ZeroInflight);
    }
}
