//! HTTP ops plane: metrics scrape, health/readiness probes, varz, trace.
//!
//! A tiny dedicated HTTP/1.0 listener on its *own* port, deliberately
//! separate from the RESP data path: a scraper, load balancer, or human
//! with `curl` must be able to probe the process even when the data port
//! is saturated, draining, or rejecting over budget. No dependencies —
//! the request grammar accepted is exactly `GET <path> HTTP/1.x` and
//! every response closes the connection.
//!
//! Routes:
//!
//! | path       | body                                             |
//! |------------|--------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of the whole registry |
//! | `/healthz` | `ok` — liveness (the process can answer)         |
//! | `/readyz`  | `ready` (200) or the reason it is not (503)      |
//! | `/varz`    | JSON snapshot: build, uptime, table, readiness   |
//! | `/trace`   | flight-recorder timeline dump (JSON)             |
//!
//! **Readiness state machine.** `/readyz` is false (503) from process
//! start until the table is opened and published ([`OpsState::set_ready`]
//! — on a pool this is *after* recovery completes), false again the
//! moment a graceful drain begins ([`OpsState::begin_drain`], which the
//! RESP server calls on `SHUTDOWN`/SIGTERM), and false whenever the
//! storage backend carries a sticky I/O fault (a failed `msync` means
//! writes are no longer durable — load balancers should stop sending
//! traffic even though reads still work). Liveness (`/healthz`) stays
//! true throughout: a draining or faulted process is alive, just not
//! accepting work.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use hdnh::Hdnh;
use hdnh_obs as obs;

/// Crate version reported by `INFO` and `/varz`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Git revision baked in at build time via the `HDNH_GIT_HASH` env var
/// (CI sets it; local builds report `unknown`).
pub const GIT_HASH: &str = match option_env!("HDNH_GIT_HASH") {
    Some(h) => h,
    None => "unknown",
};

/// Shared operational state: readiness, drain, uptime, the served table.
/// One instance is shared by the RESP server (which flips `draining`),
/// the ops listener (which answers probes from it), and the `INFO`
/// command (which reports it in-band).
pub struct OpsState {
    start: Instant,
    ready: AtomicBool,
    draining: AtomicBool,
    /// Weak on purpose: after a drain the serve path must be able to
    /// reclaim sole ownership of the table (`Arc::try_unwrap`) to mark
    /// the pool clean; a strong reference here would forever block that.
    table: OnceLock<Weak<Hdnh>>,
    /// Live RESP connections (owned here so `INFO` and `/varz` agree).
    pub(crate) active_conns: AtomicUsize,
}

impl OpsState {
    /// Fresh state: not ready, not draining, clock started now.
    pub fn new() -> Arc<OpsState> {
        Arc::new(OpsState {
            start: Instant::now(),
            ready: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            table: OnceLock::new(),
            active_conns: AtomicUsize::new(0),
        })
    }

    /// Publishes the table this process serves (first call wins).
    pub fn set_table(&self, table: &Arc<Hdnh>) {
        let _ = self.table.set(Arc::downgrade(table));
    }

    /// The published table — `None` before startup reaches that point or
    /// after the serve path has dropped it (post-drain pool close).
    pub fn table(&self) -> Option<Arc<Hdnh>> {
        self.table.get().and_then(Weak::upgrade)
    }

    /// Marks startup complete: the table is open (recovery, if any, has
    /// finished) and the data port is serving.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::SeqCst);
        obs::trace::milestone(obs::trace::Milestone::Ready);
    }

    /// Marks the beginning of a graceful drain; `/readyz` turns false
    /// immediately so probes stop routing new traffic.
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            obs::trace::emit(obs::trace::EventKind::DrainBegin, 0, 0);
        }
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Seconds since this state (≈ the process) started.
    pub fn uptime_secs(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// `None` when ready to serve; otherwise the reason.
    pub fn not_ready_reason(&self) -> Option<String> {
        if !self.ready.load(Ordering::SeqCst) {
            return Some("starting (table not yet open)".into());
        }
        if self.is_draining() {
            return Some("draining".into());
        }
        if let Some(e) = self.table().and_then(|t| t.io_fault()) {
            return Some(format!("sticky io fault: {e}"));
        }
        None
    }

    /// JSON snapshot for `/varz`: build identity, uptime, readiness and
    /// table geometry, plus the full metrics registry under `"metrics"`.
    pub fn varz_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let reason = self.not_ready_reason();
        let _ = write!(
            out,
            "{{\"version\":\"{VERSION}\",\"git\":\"{GIT_HASH}\",\"uptime_secs\":{},\"ready\":{},\"draining\":{},\"not_ready_reason\":{},",
            self.uptime_secs(),
            reason.is_none(),
            self.is_draining(),
            match &reason {
                None => "null".to_string(),
                Some(r) => format!("\"{}\"", r.replace('"', "'")),
            },
        );
        match self.table() {
            None => out.push_str("\"table\":null,"),
            Some(t) => {
                let _ = write!(
                    out,
                    "\"table\":{{\"backend\":\"{}\",\"records\":{},\"load_factor\":{:.3},\"resizes\":{},\"ocf_bytes\":{}}},",
                    t.backend_kind(),
                    t.len(),
                    t.load_factor(),
                    t.resize_count(),
                    t.ocf_footprint_bytes(),
                );
                let vs = t.vlog_stats();
                let _ = write!(
                    out,
                    "\"valuelog\":{{\"segments\":{},\"capacity_bytes\":{},\"used_bytes\":{},\"garbage_bytes\":{},\"live_bytes\":{},\"last_gc\":{}}},",
                    vs.segments,
                    vs.capacity_bytes,
                    vs.used_bytes,
                    vs.garbage_bytes,
                    vs.live_bytes,
                    match vs.last_gc {
                        None => "null".to_string(),
                        Some(gc) => format!(
                            "{{\"victims\":{},\"segments_retired\":{},\"records_relocated\":{},\"bytes_reclaimed\":{}}}",
                            gc.victims, gc.segments_retired, gc.records_relocated, gc.bytes_reclaimed
                        ),
                    },
                );
            }
        }
        let snap = obs::snapshot();
        let _ = write!(
            out,
            "\"snapshot\":{{\"taken\":{},\"failed\":{},\"bytes\":{}}},",
            snap.counter(obs::Counter::SnapshotTaken),
            snap.counter(obs::Counter::SnapshotFailed),
            snap.counter(obs::Counter::SnapshotBytes),
        );
        let _ = write!(
            out,
            "\"connections\":{},\"metrics\":{}}}",
            self.active_conns.load(Ordering::SeqCst),
            snap.to_json(),
        );
        out
    }
}

/// Handle to a running ops listener.
pub struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves the ops routes on one background thread.
///
/// Single-threaded on purpose: every route renders from in-memory state
/// in microseconds, probes arrive a few per second, and one thread can
/// never amplify a probe storm into data-path pressure.
pub fn start_ops<A: ToSocketAddrs>(addr: A, state: Arc<OpsState>) -> std::io::Result<OpsHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("hdnh-ops".into())
        .spawn(move || ops_loop(&listener, &state, &stop2))?;
    Ok(OpsHandle {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

fn ops_loop(listener: &TcpListener, state: &Arc<OpsState>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline; a wedged peer is bounded by the timeouts.
                let _ = serve_http(stream, state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Reads one request, answers it, closes. Accepts exactly the subset of
/// HTTP every prober emits: a `GET <path> HTTP/1.x` request line; headers
/// are read (bounded) and ignored.
fn serve_http(mut stream: TcpStream, state: &Arc<OpsState>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = [0u8; 4096];
    let mut n = 0usize;
    // Read until the end of the request head (or the buffer bound —
    // anything longer than 4 KiB is not a probe we serve).
    while n < buf.len() {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => {
                n += k;
                if buf[..n].windows(4).any(|w| w == b"\r\n\r\n")
                    || buf[..n].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..n]);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    // Ignore any query string: probes sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = obs::snapshot().to_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/readyz" => match state.not_ready_reason() {
            None => respond(&mut stream, 200, "text/plain", "ready\n"),
            Some(reason) => respond(
                &mut stream,
                503,
                "text/plain",
                &format!("not ready: {reason}\n"),
            ),
        },
        "/varz" => respond(&mut stream, 200, "application/json", &state.varz_json()),
        "/trace" => respond(
            &mut stream,
            200,
            "application/json",
            &obs::trace::dump_json(),
        ),
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
