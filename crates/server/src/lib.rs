//! Network service layer for HDNH: a RESP2-subset TCP front-end plus an
//! HTTP ops plane.
//!
//! Six pieces:
//!
//! - [`resp`] — the wire grammar: a zero-copy incremental request
//!   [`resp::Decoder`] (frames are byte ranges into the decoder's buffer;
//!   partial reads and deep pipelining are first-class) plus reply
//!   encoders.
//! - [`reactor`] — the connection runtime: N epoll-driven event loops
//!   over non-blocking sockets, a per-connection state machine
//!   ([`reactor::Conn`]) owning decoder + output buffer + deadlines, and
//!   the [`reactor::Engine`] trait that separates command execution and
//!   admission policy from byte shoveling. Tens of thousands of mostly
//!   idle connections cost zero threads and zero scheduled wakeups.
//! - [`server`] — the RESP policy: an `Engine` implementation
//!   [`dispatch`](server)ing commands against one shared [`hdnh::Hdnh`]
//!   through its lock-free read path, plus the public
//!   [`start`]/[`ServerHandle`] surface and signal-driven drain.
//! - [`config`] — [`ServerConfig`], obtainable only through `Default` or
//!   the validated [`ServerConfig::builder`] (typed [`ConfigError`]s for
//!   nonsense knobs).
//! - [`client`] — a blocking pipelining [`client::RespClient`] used by
//!   the `netbench` load generator and the integration tests.
//! - [`ops`] — a dependency-free HTTP/1.0 listener on a separate port
//!   serving `/metrics`, `/healthz`, `/readyz`, `/varz`, and `/trace`,
//!   sharing readiness/drain state with the RESP server through
//!   [`ops::OpsState`].
//!
//! The command vocabulary (`PING GET SET DEL EXISTS MGET MSET INFO SCRUB
//! METRICS SHUTDOWN`) maps 1:1 onto the table's typed API; table errors
//! come back as RESP errors with a machine-readable code prefix
//! (`-CORRUPTION`, `-IO`, `-CAPACITY`, `-RECOVERY`, `-INTEGRITY`,
//! `-ERR`). See DESIGN.md §12 for the full protocol contract and §16 for
//! the reactor architecture.

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod ops;
pub mod reactor;
pub mod resp;
pub mod server;

pub use client::{Reply, RespClient};
pub use config::{ConfigError, ServerConfig, ServerConfigBuilder};
pub use ops::{start_ops, OpsHandle, OpsState, GIT_HASH, VERSION};
pub use reactor::{Conn, Engine, EngineAction};
pub use resp::{Decoder, Frame, ProtoError};
pub use server::{
    install_signal_handlers, serve_until_signal, signaled, start, start_with_state, ServerHandle,
};
