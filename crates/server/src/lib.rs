//! Network service layer for HDNH: a RESP2-subset TCP front-end plus an
//! HTTP ops plane.
//!
//! Four pieces:
//!
//! - [`resp`] — the wire grammar: a zero-copy incremental request
//!   [`resp::Decoder`] (frames are byte ranges into the decoder's buffer;
//!   partial reads and deep pipelining are first-class) plus reply
//!   encoders.
//! - [`server`] — a thread-per-worker TCP server sharing one
//!   [`hdnh::Hdnh`] through its lock-free read path, with connection
//!   limits, read/write timeouts, a pipelining budget as backpressure,
//!   and graceful drain on `SHUTDOWN`/SIGTERM.
//! - [`client`] — a blocking pipelining [`client::RespClient`] used by
//!   the `netbench` load generator and the integration tests.
//! - [`ops`] — a dependency-free HTTP/1.0 listener on a separate port
//!   serving `/metrics`, `/healthz`, `/readyz`, `/varz`, and `/trace`,
//!   sharing readiness/drain state with the RESP server through
//!   [`ops::OpsState`].
//!
//! The command vocabulary (`PING GET SET DEL EXISTS MGET MSET INFO SCRUB
//! METRICS SHUTDOWN`) maps 1:1 onto the table's typed API; table errors
//! come back as RESP errors with a machine-readable code prefix
//! (`-CORRUPTION`, `-IO`, `-CAPACITY`, `-RECOVERY`, `-INTEGRITY`,
//! `-ERR`). See DESIGN.md §12 for the full protocol contract.

#![warn(missing_docs)]

pub mod client;
pub mod ops;
pub mod resp;
pub mod server;

pub use client::{Reply, RespClient};
pub use ops::{start_ops, OpsHandle, OpsState, GIT_HASH, VERSION};
pub use resp::{Decoder, Frame, ProtoError};
pub use server::{
    install_signal_handlers, serve_until_signal, signaled, start, start_with_state, ServerConfig,
    ServerHandle,
};
