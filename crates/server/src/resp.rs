//! Incremental RESP2 framing: request decoder and reply encoder.
//!
//! The server reads raw bytes off a socket into a [`Decoder`], which
//! carves complete request frames out of the accumulated buffer without
//! copying argument bytes — a [`Frame`] is a list of byte ranges into the
//! decoder's buffer, valid until the next [`Decoder::compact`]. Partial
//! frames (a read() that ends mid-bulk-string) simply yield `None` until
//! more bytes arrive, so deep pipelining and pathological fragmentation
//! are handled by construction.
//!
//! Two request grammars are accepted, mirroring Redis:
//!
//! * **RESP arrays of bulk strings** — `*2\r\n$3\r\nGET\r\n$2\r\n17\r\n` —
//!   the form every real client speaks;
//! * **inline commands** — `GET 17\n` — whitespace-separated tokens on one
//!   line, for `telnet`/`nc` debugging.
//!
//! Framing violations are *fatal* for the connection ([`ProtoError`]; the
//! server answers `-ERR protocol error ...` and closes), because after a
//! framing error the byte stream has no trustworthy resync point. One
//! deliberate exception: an over-long *inline* line is consumed through
//! its newline and reported as an error, after which the stream is
//! positioned at a clean boundary — inline users get typo recovery.

use std::fmt;

/// Default cap on one frame's total encoded size (1 MiB, like Redis'
/// `proto-max-bulk-len` spirit: far beyond any legitimate u64 command).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Cap on argument count per request (DoS guard; MSET of 256 pairs fits).
pub const MAX_ARGS: usize = 1024;

/// Cap on one inline command line.
const MAX_INLINE: usize = 64 * 1024;

/// A fatal framing violation. The connection that produced it cannot be
/// resynchronized and must be closed after an error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// First byte of a frame was not `*` or printable-inline.
    BadType(u8),
    /// An integer field (array or bulk length) was malformed.
    BadLength,
    /// Array or bulk length exceeds the configured frame budget.
    FrameTooLarge {
        /// Offending declared size in bytes (or a lower bound).
        declared: usize,
        /// The decoder's configured budget.
        max: usize,
    },
    /// More arguments than [`MAX_ARGS`].
    TooManyArgs(usize),
    /// A length-prefixed field was not terminated by CRLF.
    MissingCrlf,
    /// An inline line exceeded the inline cap. Recoverable: the decoder
    /// skips to the next newline and continues.
    InlineTooLong,
    /// An array element was not a bulk string (`$`).
    ExpectedBulk(u8),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::BadType(b) => write!(f, "unexpected frame type byte 0x{b:02x}"),
            ProtoError::BadLength => write!(f, "malformed length field"),
            ProtoError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max} byte budget")
            }
            ProtoError::TooManyArgs(n) => write!(f, "{n} arguments exceeds the {MAX_ARGS} cap"),
            ProtoError::MissingCrlf => write!(f, "missing CRLF terminator"),
            ProtoError::InlineTooLong => write!(f, "inline command line too long"),
            ProtoError::ExpectedBulk(b) => {
                write!(f, "array element must be a bulk string, got 0x{b:02x}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// Whether the stream is positioned at a clean frame boundary after
    /// this error (only over-long inline lines qualify).
    pub fn recoverable(&self) -> bool {
        matches!(self, ProtoError::InlineTooLong)
    }
}

/// One decoded request: argument byte ranges into the decoder's buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    args: Vec<(usize, usize)>,
}

impl Frame {
    /// Number of arguments (≥ 1).
    pub fn len(&self) -> usize {
        self.args.len()
    }

    /// Always false — zero-argument frames are skipped by the decoder.
    pub fn is_empty(&self) -> bool {
        self.args.is_empty()
    }
}

/// Incremental request decoder over an owned byte buffer.
pub struct Decoder {
    buf: Vec<u8>,
    /// Start of the first undecoded byte.
    pos: usize,
    max_frame: usize,
}

impl Decoder {
    /// A decoder enforcing `max_frame` bytes per request frame.
    pub fn new(max_frame: usize) -> Self {
        Decoder {
            buf: Vec::with_capacity(4096),
            pos: 0,
            max_frame,
        }
    }

    /// Appends raw socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The bytes of one argument of a decoded frame. The ranges stay valid
    /// until [`Decoder::compact`] is called.
    pub fn arg<'a>(&'a self, frame: &Frame, i: usize) -> &'a [u8] {
        let (s, e) = frame.args[i];
        &self.buf[s..e]
    }

    /// Drops consumed bytes from the front of the buffer. Call between
    /// read batches, after every frame handed out so far has been fully
    /// processed (it invalidates outstanding [`Frame`] ranges).
    pub fn compact(&mut self) {
        if self.pos == 0 {
            return;
        }
        self.buf.drain(..self.pos);
        self.pos = 0;
    }

    /// Attempts to decode the next complete frame. `Ok(None)` means the
    /// buffer holds only a partial frame — feed more bytes. Blank inline
    /// lines are skipped. On `Err`, see [`ProtoError::recoverable`].
    // Not `Iterator`: `Ok(None)` means "feed more bytes", not exhaustion,
    // and errors are sticky per connection rather than per item.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, ProtoError> {
        loop {
            if self.pos >= self.buf.len() {
                return Ok(None);
            }
            let frame = if self.buf[self.pos] == b'*' {
                self.next_array()?
            } else {
                self.next_inline()?
            };
            match frame {
                // Blank inline line or `*0` array: consumed, look again —
                // callers never see an empty frame.
                Some(f) if f.is_empty() => continue,
                other => return Ok(other),
            }
        }
    }

    /// Parses `*<n>\r\n` followed by `n` bulk strings.
    fn next_array(&mut self) -> Result<Option<Frame>, ProtoError> {
        let start = self.pos;
        let mut cur = start;
        let n = match self.read_int_line(&mut cur)? {
            None => return Ok(None),
            Some(n) => n,
        };
        if n < 0 {
            return Err(ProtoError::BadLength);
        }
        let n = n as usize;
        if n > MAX_ARGS {
            return Err(ProtoError::TooManyArgs(n));
        }
        let mut args = Vec::with_capacity(n);
        for _ in 0..n {
            if cur >= self.buf.len() {
                return Ok(None);
            }
            if self.buf[cur] != b'$' {
                return Err(ProtoError::ExpectedBulk(self.buf[cur]));
            }
            let len = match self.read_int_line(&mut cur)? {
                None => return Ok(None),
                Some(l) => l,
            };
            if len < 0 {
                return Err(ProtoError::BadLength);
            }
            let len = len as usize;
            if len > self.max_frame || cur - start + len > self.max_frame {
                return Err(ProtoError::FrameTooLarge {
                    declared: cur - start + len,
                    max: self.max_frame,
                });
            }
            if cur + len + 2 > self.buf.len() {
                return Ok(None);
            }
            if &self.buf[cur + len..cur + len + 2] != b"\r\n" {
                return Err(ProtoError::MissingCrlf);
            }
            args.push((cur, cur + len));
            cur += len + 2;
        }
        self.pos = cur;
        Ok(Some(Frame { args }))
    }

    /// Parses a signed decimal after a one-byte type marker, through CRLF.
    /// Advances `cur` past the CRLF. `None` = line incomplete. Enforces the
    /// frame budget on unterminated header lines so garbage can't buffer
    /// unboundedly.
    fn read_int_line(&mut self, cur: &mut usize) -> Result<Option<i64>, ProtoError> {
        let line_start = *cur + 1; // skip the type byte
        let mut i = line_start;
        while i < self.buf.len() && self.buf[i] != b'\r' {
            i += 1;
        }
        if i + 1 >= self.buf.len() {
            if self.buf.len() - *cur > 32 {
                // A length header is at most ~22 bytes; anything longer
                // unterminated is garbage, not a slow sender.
                return Err(ProtoError::BadLength);
            }
            return Ok(None);
        }
        if self.buf[i + 1] != b'\n' {
            return Err(ProtoError::MissingCrlf);
        }
        let digits = &self.buf[line_start..i];
        let v = parse_i64(digits).ok_or(ProtoError::BadLength)?;
        *cur = i + 2;
        Ok(Some(v))
    }

    /// Parses one inline line into whitespace-separated argument ranges.
    /// An empty `Frame` means a blank line was consumed.
    fn next_inline(&mut self) -> Result<Option<Frame>, ProtoError> {
        let start = self.pos;
        let mut nl = start;
        while nl < self.buf.len() && self.buf[nl] != b'\n' {
            nl += 1;
        }
        if nl >= self.buf.len() {
            if self.buf.len() - start > MAX_INLINE {
                // Recoverable by contract: drop the oversized prefix so the
                // stream resyncs at the next newline once it arrives.
                self.buf.drain(start..);
                return Err(ProtoError::InlineTooLong);
            }
            return Ok(None);
        }
        if nl - start > MAX_INLINE {
            self.pos = nl + 1;
            return Err(ProtoError::InlineTooLong);
        }
        let line_end = if nl > start && self.buf[nl - 1] == b'\r' {
            nl - 1
        } else {
            nl
        };
        let mut args = Vec::new();
        let mut i = start;
        while i < line_end {
            if self.buf[i].is_ascii_whitespace() {
                i += 1;
                continue;
            }
            let tok_start = i;
            while i < line_end && !self.buf[i].is_ascii_whitespace() {
                i += 1;
            }
            args.push((tok_start, i));
            if args.len() > MAX_ARGS {
                return Err(ProtoError::TooManyArgs(args.len()));
            }
        }
        self.pos = nl + 1;
        Ok(Some(Frame { args }))
    }
}

/// Parses a decimal i64 from raw bytes (no allocation, rejects empty).
pub fn parse_i64(b: &[u8]) -> Option<i64> {
    if b.is_empty() {
        return None;
    }
    let (neg, digits) = if b[0] == b'-' { (true, &b[1..]) } else { (false, b) };
    if digits.is_empty() {
        return None;
    }
    let mut v: i64 = 0;
    for &c in digits {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((c - b'0') as i64)?;
    }
    Some(if neg { -v } else { v })
}

/// Parses a decimal u64 from raw bytes.
pub fn parse_u64(b: &[u8]) -> Option<u64> {
    if b.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &c in b {
        if !c.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((c - b'0') as u64)?;
    }
    Some(v)
}

// ---------------------------------------------------------------------------
// Reply encoding
// ---------------------------------------------------------------------------

/// `+<s>\r\n` simple string.
pub fn enc_simple(out: &mut Vec<u8>, s: &str) {
    out.push(b'+');
    out.extend_from_slice(s.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `-<code> <msg>\r\n` error (newlines in `msg` are flattened).
pub fn enc_error(out: &mut Vec<u8>, code: &str, msg: &str) {
    out.push(b'-');
    out.extend_from_slice(code.as_bytes());
    out.push(b' ');
    for b in msg.bytes() {
        out.push(if b == b'\r' || b == b'\n' { b' ' } else { b });
    }
    out.extend_from_slice(b"\r\n");
}

/// `:<v>\r\n` integer.
pub fn enc_int(out: &mut Vec<u8>, v: i64) {
    out.push(b':');
    out.extend_from_slice(v.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `$<len>\r\n<bytes>\r\n` bulk string.
pub fn enc_bulk(out: &mut Vec<u8>, b: &[u8]) {
    out.push(b'$');
    out.extend_from_slice(b.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(b);
    out.extend_from_slice(b"\r\n");
}

/// `$-1\r\n` null bulk ("nil").
pub fn enc_nil(out: &mut Vec<u8>) {
    out.extend_from_slice(b"$-1\r\n");
}

/// `*<n>\r\n` array header (elements follow via the other encoders).
pub fn enc_array_header(out: &mut Vec<u8>, n: usize) {
    out.push(b'*');
    out.extend_from_slice(n.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Encodes a request as a RESP array of bulk strings (the client's and
/// the codec tests' canonical request form).
pub fn enc_request(out: &mut Vec<u8>, args: &[&[u8]]) {
    enc_array_header(out, args.len());
    for a in args {
        enc_bulk(out, a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(dec: &Decoder, f: &Frame) -> Vec<Vec<u8>> {
        (0..f.len()).map(|i| dec.arg(f, i).to_vec()).collect()
    }

    #[test]
    fn decodes_a_whole_array_frame() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(b"*2\r\n$3\r\nGET\r\n$2\r\n17\r\n");
        let f = dec.next().unwrap().unwrap();
        assert_eq!(args_of(&dec, &f), vec![b"GET".to_vec(), b"17".to_vec()]);
        assert!(dec.next().unwrap().is_none());
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn partial_frames_yield_none_until_complete() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        let wire = b"*3\r\n$3\r\nSET\r\n$1\r\n5\r\n$2\r\n99\r\n";
        for cut in 1..wire.len() {
            let mut d = Decoder::new(DEFAULT_MAX_FRAME);
            d.feed(&wire[..cut]);
            assert!(d.next().unwrap().is_none(), "cut at {cut}");
            d.feed(&wire[cut..]);
            let f = d.next().unwrap().unwrap();
            assert_eq!(d.arg(&f, 0), b"SET");
            assert_eq!(d.arg(&f, 2), b"99");
        }
        dec.feed(wire);
        assert!(dec.next().unwrap().is_some());
    }

    #[test]
    fn pipelined_batch_decodes_in_order() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        let mut wire = Vec::new();
        for i in 0..50u64 {
            enc_request(&mut wire, &[b"SET", i.to_string().as_bytes(), b"1"]);
        }
        enc_request(&mut wire, &[b"PING"]);
        dec.feed(&wire);
        for i in 0..50u64 {
            let f = dec.next().unwrap().unwrap();
            assert_eq!(dec.arg(&f, 1), i.to_string().as_bytes());
        }
        let f = dec.next().unwrap().unwrap();
        assert_eq!(dec.arg(&f, 0), b"PING");
        assert!(dec.next().unwrap().is_none());
        dec.compact();
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_array_frames_are_skipped() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(b"*0\r\n*1\r\n$4\r\nPING\r\n");
        let f = dec.next().unwrap().unwrap();
        assert_eq!(dec.arg(&f, 0), b"PING");
        assert!(dec.next().unwrap().is_none());
    }

    #[test]
    fn inline_commands_parse_and_blank_lines_skip() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(b"\r\n  \r\nGET 17\r\nPING\nSET 1   2\r\n");
        let f = dec.next().unwrap().unwrap();
        assert_eq!(args_of(&dec, &f), vec![b"GET".to_vec(), b"17".to_vec()]);
        let f = dec.next().unwrap().unwrap();
        assert_eq!(args_of(&dec, &f), vec![b"PING".to_vec()]);
        let f = dec.next().unwrap().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(dec.arg(&f, 2), b"2");
        assert!(dec.next().unwrap().is_none());
    }

    #[test]
    fn oversized_bulk_is_rejected() {
        let mut dec = Decoder::new(1024);
        dec.feed(b"*2\r\n$3\r\nSET\r\n$99999\r\n");
        match dec.next() {
            Err(ProtoError::FrameTooLarge { declared, max }) => {
                assert!(declared >= 99999);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_arg_count_is_rejected() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(format!("*{}\r\n", MAX_ARGS + 1).as_bytes());
        assert_eq!(dec.next(), Err(ProtoError::TooManyArgs(MAX_ARGS + 1)));
    }

    #[test]
    fn negative_and_garbled_lengths_are_rejected() {
        for wire in [
            b"*-1\r\n".as_slice(),
            b"*x\r\n",
            b"*2\r\n$-5\r\n",
            b"*1\r\n$3x\r\nabc\r\n",
            b"*1\r\n$3\r\nabcXX",
        ] {
            let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
            dec.feed(wire);
            assert!(dec.next().is_err(), "{:?}", String::from_utf8_lossy(wire));
        }
    }

    #[test]
    fn array_element_must_be_bulk() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(b"*1\r\n:5\r\n");
        assert_eq!(dec.next(), Err(ProtoError::ExpectedBulk(b':')));
        assert!(!ProtoError::ExpectedBulk(b':').recoverable());
    }

    #[test]
    fn unterminated_length_header_is_bounded() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        dec.feed(b"*");
        dec.feed(&[b'1'; 64]);
        assert_eq!(dec.next(), Err(ProtoError::BadLength));
    }

    #[test]
    fn overlong_inline_line_is_recoverable() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        let mut junk = vec![b'x'; MAX_INLINE + 10];
        junk.push(b'\n');
        dec.feed(&junk);
        let e = dec.next().unwrap_err();
        assert_eq!(e, ProtoError::InlineTooLong);
        assert!(e.recoverable());
        // The stream resyncs at the newline: the next command parses.
        dec.feed(b"PING\r\n");
        let f = dec.next().unwrap().unwrap();
        assert_eq!(dec.arg(&f, 0), b"PING");
    }

    #[test]
    fn compact_preserves_a_partial_tail() {
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        let mut wire = Vec::new();
        enc_request(&mut wire, &[b"GET", b"1"]);
        wire.extend_from_slice(b"*2\r\n$3\r\nGET"); // partial second frame
        dec.feed(&wire);
        assert!(dec.next().unwrap().is_some());
        assert!(dec.next().unwrap().is_none());
        dec.compact();
        dec.feed(b"\r\n$1\r\n2\r\n");
        let f = dec.next().unwrap().unwrap();
        assert_eq!(dec.arg(&f, 1), b"2");
    }

    #[test]
    fn int_parsers_reject_garbage() {
        assert_eq!(parse_u64(b"184"), Some(184));
        assert_eq!(parse_u64(b"18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_u64(b"18446744073709551616"), None);
        assert_eq!(parse_u64(b""), None);
        assert_eq!(parse_u64(b"1x"), None);
        assert_eq!(parse_i64(b"-42"), Some(-42));
        assert_eq!(parse_i64(b"-"), None);
    }
}
