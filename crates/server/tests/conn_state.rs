//! Unit tests for the connection state machine in isolation: a [`Conn`]
//! driven with in-memory byte slices and a hand-rolled clock — no
//! sockets, no threads, no real time. This is the payoff of the reactor
//! API split: the entire protocol lifecycle (partial reads, split
//! frames, inflight-budget stalls, drain-with-pending-replies, idle
//! timeout) is exercised deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use hdnh_server::reactor::{Conn, DRAIN_GRACE, DRAIN_SILENCE};
use hdnh_server::resp::{enc_simple, Decoder, Frame};
use hdnh_server::{Engine, EngineAction, ServerConfig};

/// Echo-style test engine: answers `+OK` to everything, flags `SHUTDOWN`,
/// and counts executions.
struct TestEngine {
    executed: AtomicUsize,
}

impl TestEngine {
    fn new() -> TestEngine {
        TestEngine {
            executed: AtomicUsize::new(0),
        }
    }

    fn count(&self) -> usize {
        self.executed.load(Ordering::SeqCst)
    }
}

impl Engine for TestEngine {
    fn execute(&self, dec: &Decoder, frame: &Frame, out: &mut Vec<u8>) -> EngineAction {
        self.executed.fetch_add(1, Ordering::SeqCst);
        let name = dec.arg(frame, 0);
        enc_simple(out, "OK");
        if name.eq_ignore_ascii_case(b"SHUTDOWN") {
            EngineAction::Shutdown
        } else {
            EngineAction::Continue
        }
    }
}

fn cfg(max_inflight: usize) -> ServerConfig {
    ServerConfig::builder().max_inflight(max_inflight).build().unwrap()
}

/// Simulates the socket accepting all currently pending output.
fn drain_output(conn: &mut Conn, engine: &TestEngine, now: Instant) -> usize {
    let n = conn.output().len();
    conn.on_write_progress(n, engine, now);
    n
}

#[test]
fn partial_reads_assemble_one_frame() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    // An inline command delivered one byte at a time: nothing executes
    // until the terminating newline arrives.
    for b in b"PIN" {
        conn.on_bytes(&[*b], &engine, t0);
        assert_eq!(engine.count(), 0);
        assert!(conn.output().is_empty());
    }
    conn.on_bytes(b"G\r\n", &engine, t0);
    assert_eq!(engine.count(), 1);
    assert_eq!(conn.output(), b"+OK\r\n");
    assert!(conn.wants_read());
    assert!(conn.wants_write());
    assert!(!conn.done());
}

#[test]
fn frames_split_across_arbitrary_boundaries() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    // Two pipelined RESP arrays, fed in chunks that split mid-header and
    // mid-bulk-payload.
    let wire = b"*3\r\n$3\r\nSET\r\n$1\r\n7\r\n$2\r\n77\r\n*2\r\n$3\r\nGET\r\n$1\r\n7\r\n";
    for chunk in wire.chunks(5) {
        conn.on_bytes(chunk, &engine, t0);
    }
    assert_eq!(engine.count(), 2);
    assert_eq!(conn.output(), b"+OK\r\n+OK\r\n");
}

#[test]
fn inflight_budget_stalls_decoding_until_output_drains() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(2), t0);

    // Five pipelined commands against a budget of 2: only two execute,
    // then the connection stops wanting reads (backpressure surfaces as
    // an interest-set change, not a blocking flush).
    conn.on_bytes(b"PING\r\nPING\r\nPING\r\nPING\r\nPING\r\n", &engine, t0);
    assert_eq!(engine.count(), 2);
    assert_eq!(conn.output(), b"+OK\r\n+OK\r\n");
    assert!(!conn.wants_read(), "stalled connection must not want reads");
    assert!(conn.wants_write());

    // Partial write progress is not enough: the budget clears only when
    // the buffer fully reaches the socket.
    conn.on_write_progress(3, &engine, t0);
    assert_eq!(engine.count(), 2);
    assert!(!conn.wants_read());

    // Full drain resumes the pump: two more execute, stall again.
    let rest = conn.output().len();
    conn.on_write_progress(rest, &engine, t0);
    assert_eq!(engine.count(), 4);
    assert_eq!(conn.output(), b"+OK\r\n+OK\r\n");
    assert!(!conn.wants_read());

    // Final drain executes the last one; the connection is readable again.
    drain_output(&mut conn, &engine, t0);
    assert_eq!(engine.count(), 5);
    drain_output(&mut conn, &engine, t0);
    assert!(conn.wants_read());
    assert!(!conn.done());
}

#[test]
fn drain_answers_pending_replies_before_closing() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(1), t0);

    // Three commands against a budget of 1, then the process starts
    // draining while two frames are still undecoded and one reply is
    // still unflushed.
    conn.on_bytes(b"PING\r\nPING\r\nPING\r\n", &engine, t0);
    assert_eq!(engine.count(), 1);
    conn.begin_drain(t0);

    // The silence deadline passes — but replies are still owed, so the
    // connection must not close.
    let after_silence = t0 + DRAIN_SILENCE + Duration::from_millis(1);
    conn.on_tick(after_silence);
    assert!(!conn.done(), "drain must not drop unanswered frames");

    // As the socket drains, the remaining frames execute one by one.
    drain_output(&mut conn, &engine, after_silence);
    assert_eq!(engine.count(), 2);
    drain_output(&mut conn, &engine, after_silence);
    assert_eq!(engine.count(), 3);
    assert!(!conn.done(), "last reply still unflushed");

    // Only after the last reply reaches the socket does the connection
    // finish.
    drain_output(&mut conn, &engine, after_silence);
    assert!(conn.done(), "all frames answered and flushed → close");
}

#[test]
fn drain_closes_idle_connection_at_first_silence() {
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    conn.begin_drain(t0);
    assert!(!conn.done());
    let dl = conn.next_deadline().expect("draining conn has a deadline");
    assert!(dl <= t0 + DRAIN_SILENCE);

    conn.on_tick(t0 + DRAIN_SILENCE);
    assert!(conn.done(), "idle draining connection closes at silence");
}

#[test]
fn drain_grace_bounds_a_firehosing_client() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);
    conn.begin_drain(t0);

    // A client that keeps sending extends the silence window — but only
    // up to the grace deadline.
    let mut now = t0;
    for _ in 0..10 {
        now += Duration::from_millis(50);
        conn.on_bytes(b"PING\r\n", &engine, now);
        conn.on_tick(now);
        drain_output(&mut conn, &engine, now);
        drain_output(&mut conn, &engine, now);
        if conn.done() {
            break;
        }
    }
    assert!(
        now <= t0 + DRAIN_GRACE + Duration::from_millis(50),
        "grace deadline must have stopped the reads"
    );
    assert!(conn.done(), "firehosing client cannot stretch the drain");
    // Every frame received before the cutoff was answered.
    assert!(engine.count() >= 4, "frames received in the grace window are answered");
}

#[test]
fn idle_timeout_closes_a_silent_connection() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let cfg = ServerConfig::builder()
        .read_timeout(Duration::from_secs(30))
        .build()
        .unwrap();
    let mut conn = Conn::new(&cfg, t0);

    // The idle clock is the only scheduled deadline for a quiet
    // connection — exactly one wakeup in 30 s, not ten per second.
    assert_eq!(conn.next_deadline(), Some(t0 + Duration::from_secs(30)));

    conn.on_tick(t0 + Duration::from_secs(29));
    assert!(!conn.done());

    // Activity re-arms the clock.
    let t1 = t0 + Duration::from_secs(29);
    conn.on_bytes(b"PING\r\n", &engine, t1);
    drain_output(&mut conn, &engine, t1);
    assert_eq!(conn.next_deadline(), Some(t1 + Duration::from_secs(30)));

    conn.on_tick(t1 + Duration::from_secs(30));
    assert!(conn.done(), "idle timeout must close the connection");
}

#[test]
fn eof_answers_received_frames_then_closes() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    conn.on_bytes(b"PING\r\nPING\r\n", &engine, t0);
    conn.on_eof();
    assert_eq!(engine.count(), 2);
    assert!(!conn.done(), "replies still owed");
    assert!(!conn.wants_read());
    drain_output(&mut conn, &engine, t0);
    assert!(conn.done(), "flushed after EOF → close");
}

#[test]
fn eof_resumes_a_stalled_decode_before_closing() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(1), t0);

    // Stall with one executed, two buffered — then EOF. The buffered
    // frames must still be answered before the connection finishes.
    conn.on_bytes(b"PING\r\nPING\r\nPING\r\n", &engine, t0);
    assert_eq!(engine.count(), 1);
    conn.on_eof();
    assert!(!conn.done());
    drain_output(&mut conn, &engine, t0);
    drain_output(&mut conn, &engine, t0);
    assert_eq!(engine.count(), 3, "EOF must not drop buffered frames");
    drain_output(&mut conn, &engine, t0);
    assert!(conn.done());
}

#[test]
fn fatal_protocol_error_replies_then_closes() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    // An array element that is not a bulk string is a fatal framing
    // error: one error reply, no further decoding, close after flush.
    conn.on_bytes(b"*1\r\n:5\r\nPING\r\n", &engine, t0);
    assert_eq!(engine.count(), 0);
    let out = String::from_utf8_lossy(conn.output()).to_string();
    assert!(out.starts_with("-ERR protocol error"), "{out}");
    assert!(!conn.wants_read());
    assert!(!conn.done(), "error reply must be delivered first");
    drain_output(&mut conn, &engine, t0);
    assert!(conn.done());
}

#[test]
fn write_stall_timeout_hard_drops_the_connection() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let cfg = ServerConfig::builder()
        .write_timeout(Duration::from_secs(10))
        .build()
        .unwrap();
    let mut conn = Conn::new(&cfg, t0);

    conn.on_bytes(b"PING\r\n", &engine, t0);
    assert!(conn.wants_write());

    // The peer never reads: after `write_timeout` with zero progress the
    // connection is dropped even though output is pending.
    conn.on_tick(t0 + Duration::from_secs(10));
    assert!(conn.done(), "peer ignoring replies must be dropped");
    assert!(!conn.wants_write());
}

#[test]
fn shutdown_request_is_surfaced_once() {
    let engine = TestEngine::new();
    let t0 = Instant::now();
    let mut conn = Conn::new(&cfg(128), t0);

    conn.on_bytes(b"SHUTDOWN\r\n", &engine, t0);
    assert_eq!(conn.output(), b"+OK\r\n", "SHUTDOWN is acked before the drain");
    assert!(conn.take_shutdown_request());
    assert!(!conn.take_shutdown_request(), "request is taken exactly once");
}
