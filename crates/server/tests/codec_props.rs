//! Property tests for the RESP request codec: whatever `enc_request`
//! produces, the [`Decoder`] must reproduce argument-for-argument — no
//! matter how the byte stream is fragmented across feeds.

// The `.. ProptestConfig::default()` spread is redundant against the local
// proptest shim (one field) but required by the real crate; keep the
// portable spelling.
#![allow(clippy::needless_update)]

use hdnh_server::resp::{enc_request, Decoder, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

/// Arbitrary binary argument, 1..32 bytes (RESP bulk strings carry any
/// bytes; empty args are legal on the wire but indistinguishable from a
/// skipped blank inline token, so the grammar keeps them non-empty).
fn arg_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 1..32)
}

/// One request: 1..8 arguments.
fn request_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(arg_strategy(), 1..8)
}

/// Encodes requests, splits the wire at boundaries derived from `cuts`,
/// feeds the chunks one by one, and returns every decoded frame's args.
fn roundtrip(requests: &[Vec<Vec<u8>>], cuts: &[u16]) -> Vec<Vec<Vec<u8>>> {
    let mut wire = Vec::new();
    for req in requests {
        let borrowed: Vec<&[u8]> = req.iter().map(Vec::as_slice).collect();
        enc_request(&mut wire, &borrowed);
    }
    // Turn the cut seeds into sorted distinct offsets inside the wire.
    let mut offsets: Vec<usize> = cuts
        .iter()
        .map(|&c| c as usize % wire.len().max(1))
        .collect();
    offsets.sort_unstable();
    offsets.dedup();

    let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
    let mut decoded = Vec::new();
    let mut prev = 0usize;
    let drain = |dec: &mut Decoder, decoded: &mut Vec<Vec<Vec<u8>>>| {
        while let Some(f) = dec.next().expect("valid wire bytes must decode") {
            decoded.push((0..f.len()).map(|i| dec.arg(&f, i).to_vec()).collect());
        }
        dec.compact();
    };
    for off in offsets {
        if off > prev {
            dec.feed(&wire[prev..off]);
            prev = off;
        }
        drain(&mut dec, &mut decoded);
    }
    dec.feed(&wire[prev..]);
    drain(&mut dec, &mut decoded);
    assert_eq!(dec.pending(), 0, "no bytes may be left behind");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn encode_then_split_then_decode_is_identity(
        requests in proptest::collection::vec(request_strategy(), 1..12),
        cuts in proptest::collection::vec(any::<u16>(), 0..24),
    ) {
        let decoded = roundtrip(&requests, &cuts);
        prop_assert_eq!(decoded, requests);
    }

    #[test]
    fn byte_at_a_time_decode_is_identity(
        requests in proptest::collection::vec(request_strategy(), 1..6),
    ) {
        let mut wire = Vec::new();
        for req in &requests {
            let borrowed: Vec<&[u8]> = req.iter().map(Vec::as_slice).collect();
            enc_request(&mut wire, &borrowed);
        }
        let mut dec = Decoder::new(DEFAULT_MAX_FRAME);
        let mut decoded: Vec<Vec<Vec<u8>>> = Vec::new();
        for &b in &wire {
            dec.feed(&[b]);
            while let Some(f) = dec.next().expect("valid wire bytes must decode") {
                decoded.push((0..f.len()).map(|i| dec.arg(&f, i).to_vec()).collect());
                dec.compact();
            }
        }
        prop_assert_eq!(decoded, requests);
    }
}
