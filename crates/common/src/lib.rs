//! Shared substrate for the HDNH reproduction.
//!
//! This crate holds everything the hash tables, the workload generator and
//! the benchmark harness have in common:
//!
//! * fixed-size [`Key`] / [`Value`] types matching the paper's evaluation
//!   setup (16-byte keys, 15-byte values, §4.1),
//! * a self-contained 64-bit hash ([`hash::hash64`], xxhash64-style) plus the
//!   derived quantities every scheme needs: second independent hash and the
//!   one-byte [`fingerprint`](hash::fingerprint) used by HDNH's Optimistic
//!   Compression Filter,
//! * the [`HashIndex`] trait implemented by HDNH and all three baselines so
//!   the harness can drive them uniformly,
//! * small deterministic PRNGs ([`rng`]) used for RAFL's random eviction and
//!   for workload generation.


#![warn(missing_docs)]
pub mod hash;
pub mod index;
pub mod kv;
pub mod rng;

pub use index::{HashIndex, IndexError, IndexResult};
pub use kv::{Key, Record, Value, KEY_LEN, RECORD_LEN, VALUE_LEN};
