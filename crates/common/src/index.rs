//! The `HashIndex` trait.
//!
//! HDNH and the three baselines (Level hashing, CCEH, Path hashing) all
//! implement this trait so the YCSB harness, the figure generators and the
//! integration tests can drive any scheme through one interface, exactly
//! like the paper's evaluation drives four binaries with the same workloads.

use std::fmt;

use crate::kv::{Key, Value};

/// Errors surfaced by index operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The key is already present (insert of a duplicate).
    DuplicateKey,
    /// The key was not found (update/delete of a missing key).
    KeyNotFound,
    /// The table is full and the scheme cannot grow (static schemes such as
    /// Path hashing, or a resize limit was hit).
    TableFull,
    /// The operation raced with a resize and should be retried by the
    /// caller. Public APIs retry internally; this only escapes from
    /// low-level entry points used in tests.
    RetryResize,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DuplicateKey => write!(f, "key already present"),
            IndexError::KeyNotFound => write!(f, "key not found"),
            IndexError::TableFull => write!(f, "hash table is full"),
            IndexError::RetryResize => write!(f, "operation raced with resize"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, IndexError>;

/// A concurrent persistent hash index over fixed-size keys and values.
///
/// All methods take `&self`: implementations do their own concurrency
/// control (that is the point of the paper's comparison). Implementations
/// must be [`Send`] + [`Sync`] so the harness can share one instance across
/// worker threads.
pub trait HashIndex: Send + Sync {
    /// Inserts a new key/value pair. Fails with
    /// [`IndexError::DuplicateKey`] if the key already exists and
    /// [`IndexError::TableFull`] if there is no room and the scheme cannot
    /// grow.
    fn insert(&self, key: &Key, value: &Value) -> IndexResult<()>;

    /// Looks up `key`, returning its value if present.
    fn get(&self, key: &Key) -> Option<Value>;

    /// Replaces the value of an existing key. Fails with
    /// [`IndexError::KeyNotFound`] if absent.
    fn update(&self, key: &Key, value: &Value) -> IndexResult<()>;

    /// Removes `key`. Returns `true` if it was present.
    fn remove(&self, key: &Key) -> bool;

    /// Number of live records.
    fn len(&self) -> usize;

    /// `true` if no records are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of slots occupied (0.0 ..= 1.0).
    fn load_factor(&self) -> f64;

    /// Short scheme name for benchmark output (e.g. `"HDNH"`, `"CCEH"`).
    fn scheme_name(&self) -> &'static str;

    /// Insert-or-update convenience used by YCSB's `update` on schemes where
    /// the key may have been evicted (default: update, insert on miss).
    fn upsert(&self, key: &Key, value: &Value) -> IndexResult<()> {
        match self.update(key, value) {
            Err(IndexError::KeyNotFound) => match self.insert(key, value) {
                Err(IndexError::DuplicateKey) => self.update(key, value),
                other => other,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// A trivial reference implementation used to test the trait's default
    /// methods and to serve as a behavioural oracle in higher-level tests.
    pub struct OracleIndex {
        map: Mutex<HashMap<Key, Value>>,
    }

    impl OracleIndex {
        pub fn new() -> Self {
            OracleIndex {
                map: Mutex::new(HashMap::new()),
            }
        }
    }

    impl HashIndex for OracleIndex {
        fn insert(&self, key: &Key, value: &Value) -> IndexResult<()> {
            let mut m = self.map.lock().unwrap();
            if m.contains_key(key) {
                return Err(IndexError::DuplicateKey);
            }
            m.insert(*key, *value);
            Ok(())
        }

        fn get(&self, key: &Key) -> Option<Value> {
            self.map.lock().unwrap().get(key).copied()
        }

        fn update(&self, key: &Key, value: &Value) -> IndexResult<()> {
            let mut m = self.map.lock().unwrap();
            match m.get_mut(key) {
                Some(v) => {
                    *v = *value;
                    Ok(())
                }
                None => Err(IndexError::KeyNotFound),
            }
        }

        fn remove(&self, key: &Key) -> bool {
            self.map.lock().unwrap().remove(key).is_some()
        }

        fn len(&self) -> usize {
            self.map.lock().unwrap().len()
        }

        fn load_factor(&self) -> f64 {
            0.0
        }

        fn scheme_name(&self) -> &'static str {
            "ORACLE"
        }
    }

    #[test]
    fn oracle_basic_flow() {
        let idx = OracleIndex::new();
        let k = Key::from_u64(1);
        assert!(idx.is_empty());
        idx.insert(&k, &Value::from_u64(10)).unwrap();
        assert_eq!(idx.get(&k).unwrap().as_u64(), 10);
        assert_eq!(idx.insert(&k, &Value::from_u64(11)), Err(IndexError::DuplicateKey));
        idx.update(&k, &Value::from_u64(12)).unwrap();
        assert_eq!(idx.get(&k).unwrap().as_u64(), 12);
        assert!(idx.remove(&k));
        assert!(!idx.remove(&k));
        assert_eq!(idx.update(&k, &Value::ZERO), Err(IndexError::KeyNotFound));
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let idx = OracleIndex::new();
        let k = Key::from_u64(7);
        idx.upsert(&k, &Value::from_u64(1)).unwrap();
        assert_eq!(idx.get(&k).unwrap().as_u64(), 1);
        idx.upsert(&k, &Value::from_u64(2)).unwrap();
        assert_eq!(idx.get(&k).unwrap().as_u64(), 2);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn error_display() {
        assert_eq!(IndexError::DuplicateKey.to_string(), "key already present");
        assert_eq!(IndexError::KeyNotFound.to_string(), "key not found");
        assert_eq!(IndexError::TableFull.to_string(), "hash table is full");
    }
}
