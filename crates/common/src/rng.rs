//! Small deterministic PRNGs.
//!
//! Two generators cover every random choice in the reproduction:
//!
//! * [`SplitMix64`] — seeding and one-shot scrambling (also used by the YCSB
//!   generator to scramble zipfian ranks).
//! * [`XorShift64Star`] — the per-thread generator behind RAFL's random
//!   eviction (paper §3.3) and the randomized crash simulator. A three-shift
//!   xorshift with a multiply finisher: one word of state, a few cycles per
//!   draw, never in the measured NVM path long enough to matter.

/// SplitMix64 (Steele, Lea, Flood 2014). Good seed-stretcher: consecutive
/// integers map to well-distributed outputs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 scramble of a single word. Used where a stateless
/// permutation-ish mixing of an integer is needed (scrambled zipfian).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xorshift64* — tiny, fast, never zero-state.
#[derive(Clone, Debug)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator; a zero seed is remapped (xorshift requires
    /// nonzero state).
    #[inline]
    pub fn new(seed: u64) -> Self {
        // Stretch the seed so that small consecutive seeds (thread ids)
        // start in very different parts of the sequence.
        let s = mix64(seed);
        XorShift64Star {
            state: if s == 0 { 0x9E37_79B9_7F4A_7C15 } else { s },
        }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..bound` (Lemire's multiply-shift; slight modulo
    /// bias is irrelevant for eviction choice but we avoid it anyway).
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        let r = self.next_u64() as u32 as u64;
        ((r * bound as u64) >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xorshift_zero_seed_is_usable() {
        let mut g = XorShift64Star::new(0);
        let x = g.next_u64();
        let y = g.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = XorShift64Star::new(7);
        for _ in 0..10_000 {
            assert!(g.next_below(8) < 8);
        }
    }

    #[test]
    fn next_below_hits_every_residue() {
        let mut g = XorShift64Star::new(9);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[g.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = XorShift64Star::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = g.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a >> 56, b >> 56, "high bytes should differ for 1,2");
    }
}
