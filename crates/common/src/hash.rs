//! Self-contained 64-bit hashing.
//!
//! The reproduction cannot pull in external hash crates, so we implement
//! xxHash64 (Collet's algorithm) directly. It is fast on the short 16-byte
//! keys used throughout the evaluation and has excellent avalanche behaviour,
//! which matters because HDNH carves *several* quantities out of a single
//! hash value: segment choices, bucket choices, and the one-byte fingerprint
//! stored in the Optimistic Compression Filter (paper §3.2: "fingerprints
//! are one-byte hashes of keys … the least significant byte of the key's
//! hash value").

use crate::kv::Key;

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline(always)]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline(always)]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline(always)]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// xxHash64 of `data` with the given `seed`.
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(PRIME64_1);
        h = h.rotate_left(23).wrapping_mul(PRIME64_2).wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

/// xxHash64 with seed 0 — the primary hash used by every scheme.
#[inline]
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0)
}

/// Primary hash of a [`Key`].
#[inline]
pub fn key_hash(key: &Key) -> u64 {
    hash64(key.as_bytes())
}

/// Second, independent hash of a [`Key`] for the 2-choice ("2-cuckoo")
/// placement. Derived with a different seed so the two segment/bucket
/// choices are statistically independent.
#[inline]
pub fn key_hash2(key: &Key) -> u64 {
    hash64_seeded(key.as_bytes(), 0x5851_F42D_4C95_7F2D)
}

/// One-byte fingerprint of a key: the least significant byte of the primary
/// hash, exactly as the paper specifies for the OCF (§3.2).
#[inline]
pub fn fingerprint(hash: u64) -> u8 {
    (hash & 0xFF) as u8
}

/// Convenience: both hashes and the fingerprint of a key in one call.
///
/// Most operations need all three; computing them together keeps call sites
/// tidy and lets the compiler share the key loads.
#[derive(Clone, Copy, Debug)]
pub struct KeyHashes {
    /// Primary hash (drives the first segment/bucket choice and the OCF
    /// fingerprint).
    pub h1: u64,
    /// Secondary hash (drives the second segment/bucket choice).
    pub h2: u64,
    /// One-byte fingerprint (`h1 & 0xFF`).
    pub fp: u8,
}

impl KeyHashes {
    /// Computes both hashes and the fingerprint of `key`.
    #[inline]
    pub fn of(key: &Key) -> Self {
        let h1 = key_hash(key);
        let h2 = key_hash2(key);
        KeyHashes {
            h1,
            h2,
            fp: fingerprint(h1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors computed with the canonical xxHash64
    /// implementation (xxhsum 0.8, seed 0 unless stated).
    #[test]
    fn xxhash64_reference_vectors() {
        assert_eq!(hash64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(hash64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(hash64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            hash64(b"xxhash is a fast non-cryptographic hash"),
            hash64(b"xxhash is a fast non-cryptographic hash")
        );
    }

    #[test]
    fn seeded_vector() {
        // Canonical: xxh64("abc", seed=1) — distinct from seed 0.
        assert_ne!(hash64_seeded(b"abc", 1), hash64(b"abc"));
    }

    #[test]
    fn covers_all_length_classes() {
        // Exercise the >=32, >=8, >=4 and byte tails.
        let data: Vec<u8> = (0..=255u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..64 {
            assert!(seen.insert(hash64(&data[..len])), "collision at len {len}");
        }
    }

    #[test]
    fn h1_h2_are_independent_in_practice() {
        // On 10k keys, the low 16 bits of h1 and h2 should rarely agree.
        let mut agree = 0;
        for i in 0..10_000u64 {
            let k = Key::from_u64(i);
            let h = KeyHashes::of(&k);
            if (h.h1 & 0xFFFF) == (h.h2 & 0xFFFF) {
                agree += 1;
            }
        }
        // Expected ≈ 10_000 / 65536 ≈ 0.15; allow generous slack.
        assert!(agree < 10, "h1/h2 agree too often: {agree}");
    }

    #[test]
    fn fingerprint_is_low_byte() {
        for i in 0..1000u64 {
            let k = Key::from_u64(i);
            let h = key_hash(&k);
            assert_eq!(fingerprint(h), (h & 0xFF) as u8);
        }
    }

    #[test]
    fn fingerprints_are_roughly_uniform() {
        let mut counts = [0u32; 256];
        let n = 256 * 200;
        for i in 0..n as u64 {
            counts[fingerprint(key_hash(&Key::from_u64(i))) as usize] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        // Mean 200 per bin; a healthy hash keeps every bin within ±60%.
        assert!(min > 80 && max < 320, "skewed fingerprints: {min}..{max}");
    }
}
