//! Fixed-size key/value types.
//!
//! The paper's evaluation (§4.1) uses 16-byte keys and 15-byte values so that
//! one record plus one byte of per-slot metadata packs eight slots and an
//! 8-byte persisted header into a single 256-byte NVM bucket — the block
//! access granularity of Optane AEP. We keep exactly those sizes.

use std::fmt;

/// Length of a [`Key`] in bytes.
pub const KEY_LEN: usize = 16;
/// Length of a [`Value`] in bytes.
pub const VALUE_LEN: usize = 15;
/// Length of a serialized [`Record`] (key followed by value).
pub const RECORD_LEN: usize = KEY_LEN + VALUE_LEN;

/// A fixed-size 16-byte key.
///
/// Keys are plain byte arrays: the hash tables never interpret their
/// contents. Helpers exist to build keys from integers, which is how the
/// YCSB generator names records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub [u8; KEY_LEN]);

/// A fixed-size 15-byte value.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(pub [u8; VALUE_LEN]);

/// A key/value pair in its serialized on-NVM form.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// The record's key.
    pub key: Key,
    /// The record's value.
    pub value: Value,
}

impl Key {
    /// Key of all zero bytes.
    pub const ZERO: Key = Key([0; KEY_LEN]);

    /// Builds a key that encodes `id` in its first eight bytes
    /// (little-endian) and zero-fills the rest.
    #[inline]
    pub fn from_u64(id: u64) -> Self {
        let mut k = [0u8; KEY_LEN];
        k[..8].copy_from_slice(&id.to_le_bytes());
        Key(k)
    }

    /// Builds a key from two 64-bit words (covers the full 16 bytes).
    #[inline]
    pub fn from_u64_pair(hi: u64, lo: u64) -> Self {
        let mut k = [0u8; KEY_LEN];
        k[..8].copy_from_slice(&lo.to_le_bytes());
        k[8..].copy_from_slice(&hi.to_le_bytes());
        Key(k)
    }

    /// Reads back the integer stored by [`Key::from_u64`].
    #[inline]
    pub fn as_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }

    /// Raw bytes of the key.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

impl Value {
    /// Value of all zero bytes.
    pub const ZERO: Value = Value([0; VALUE_LEN]);

    /// Builds a value that encodes `v` in its first eight bytes
    /// (little-endian) and zero-fills the rest.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        let mut b = [0u8; VALUE_LEN];
        b[..8].copy_from_slice(&v.to_le_bytes());
        Value(b)
    }

    /// Reads back the integer stored by [`Value::from_u64`].
    #[inline]
    pub fn as_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().unwrap())
    }

    /// Raw bytes of the value.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; VALUE_LEN] {
        &self.0
    }
}

impl Record {
    /// Assembles a record from its parts.
    #[inline]
    pub fn new(key: Key, value: Value) -> Self {
        Record { key, value }
    }

    /// Serializes the record into its on-NVM wire form: key bytes followed
    /// by value bytes, no padding.
    #[inline]
    pub fn to_bytes(&self) -> [u8; RECORD_LEN] {
        let mut out = [0u8; RECORD_LEN];
        out[..KEY_LEN].copy_from_slice(&self.key.0);
        out[KEY_LEN..].copy_from_slice(&self.value.0);
        out
    }

    /// Parses a record from its on-NVM wire form.
    #[inline]
    pub fn from_bytes(bytes: &[u8; RECORD_LEN]) -> Self {
        let mut key = [0u8; KEY_LEN];
        let mut value = [0u8; VALUE_LEN];
        key.copy_from_slice(&bytes[..KEY_LEN]);
        value.copy_from_slice(&bytes[KEY_LEN..]);
        Record {
            key: Key(key),
            value: Value(value),
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:#018x}/{:#018x})", self.as_u64(), {
            u64::from_le_bytes(self.0[8..].try_into().unwrap())
        })
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value({:#018x})", self.as_u64())
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Record")
            .field("key", &self.key)
            .field("value", &self.value)
            .finish()
    }
}

impl From<u64> for Key {
    fn from(id: u64) -> Self {
        Key::from_u64(id)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_u64() {
        for id in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(Key::from_u64(id).as_u64(), id);
        }
    }

    #[test]
    fn key_pair_covers_both_halves() {
        let k = Key::from_u64_pair(7, 9);
        assert_eq!(k.as_u64(), 9);
        assert_eq!(u64::from_le_bytes(k.0[8..].try_into().unwrap()), 7);
    }

    #[test]
    fn value_roundtrip_u64() {
        for v in [0u64, 1, u64::MAX / 2, 0x0123_4567_89ab_cdef] {
            assert_eq!(Value::from_u64(v).as_u64(), v);
        }
    }

    #[test]
    fn record_wire_roundtrip() {
        let r = Record::new(Key::from_u64(123), Value::from_u64(456));
        let bytes = r.to_bytes();
        assert_eq!(Record::from_bytes(&bytes), r);
        assert_eq!(bytes.len(), RECORD_LEN);
    }

    #[test]
    fn record_layout_is_key_then_value() {
        let r = Record::new(Key::from_u64(1), Value::from_u64(2));
        let bytes = r.to_bytes();
        assert_eq!(&bytes[..KEY_LEN], r.key.as_bytes());
        assert_eq!(&bytes[KEY_LEN..], r.value.as_bytes());
    }

    #[test]
    fn sizes_match_paper_configuration() {
        assert_eq!(KEY_LEN, 16);
        assert_eq!(VALUE_LEN, 15);
        assert_eq!(RECORD_LEN, 31);
    }

    #[test]
    fn distinct_ids_give_distinct_keys() {
        let a = Key::from_u64(1);
        let b = Key::from_u64(2);
        assert_ne!(a, b);
    }
}
