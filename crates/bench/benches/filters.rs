//! Criterion microbenchmarks for HDNH's DRAM components in isolation:
//! hashing, OCF probing, hot-table hit path (RAFL vs LRU touch cost), and
//! the zipfian generator feeding the workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use hdnh::hot::HotTable;
use hdnh::ocf::{LockOutcome, Ocf};
use hdnh::HotPolicy;
use hdnh_common::hash::KeyHashes;
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Record, Value};
use hdnh_ycsb::{KeyDist, Zipfian};

fn bench_hash(c: &mut Criterion) {
    let keys: Vec<Key> = (0..1024u64).map(Key::from_u64).collect();
    let mut i = 0usize;
    c.bench_function("key_hashes_of_16B_key", |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            std::hint::black_box(KeyHashes::of(&keys[i]))
        })
    });
}

fn bench_ocf_probe(c: &mut Criterion) {
    // A populated filter; probe 8 entries of one bucket like a search does.
    let ocf = Ocf::new(4096, 8);
    let mut rng = XorShift64Star::new(5);
    for b in 0..4096 {
        for s in 0..8 {
            if rng.next_u64() % 10 < 8 {
                ocf.install(b, s, true, (rng.next_u64() & 0xFF) as u8);
            }
        }
    }
    let mut b = 0usize;
    c.bench_function("ocf_probe_bucket_8_entries", |bch| {
        bch.iter(|| {
            b = (b + 1) & 4095;
            let mut matches = 0u32;
            for s in 0..8 {
                let e = ocf.load(b, s);
                if hdnh::ocf::is_valid(e) && hdnh::ocf::fp(e) == 0x42 {
                    matches += 1;
                }
            }
            std::hint::black_box(matches)
        })
    });
}

fn bench_ocf_lock_commit(c: &mut Criterion) {
    let ocf = Ocf::new(1, 8);
    c.bench_function("ocf_lock_then_abort", |b| {
        b.iter(|| match ocf.try_lock_empty(0, 0) {
            LockOutcome::Locked(pre) => ocf.abort(0, 0, pre),
            other => panic!("{other:?}"),
        })
    });
}

fn bench_hot_hit(c: &mut Criterion) {
    for policy in [HotPolicy::Rafl, HotPolicy::Lru] {
        let hot = HotTable::new(4096, 4, policy);
        let mut rng = XorShift64Star::new(6);
        let mut keys = Vec::new();
        for i in 0..512u64 {
            let k = Key::from_u64(i);
            let h = KeyHashes::of(&k);
            hot.put(&Record::new(k, Value::from_u64(i)), h.h1, h.h2, h.fp, &mut rng);
            keys.push((k, h));
        }
        let mut i = 0usize;
        let name = format!(
            "hot_table_hit_{}",
            if policy == HotPolicy::Rafl { "rafl" } else { "lru" }
        );
        c.bench_function(&name, |b| {
            b.iter(|| {
                i = (i + 1) & 511;
                let (k, h) = &keys[i];
                std::hint::black_box(hot.search(k, h.h1, h.h2, h.fp))
            })
        });
    }
}

fn bench_zipfian(c: &mut Criterion) {
    let mut z = Zipfian::new(1_000_000, 0.99);
    let mut rng = XorShift64Star::new(7);
    c.bench_function("zipfian_next_id_1M", |b| {
        b.iter(|| std::hint::black_box(z.next_id(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_hash,
    bench_ocf_probe,
    bench_ocf_lock_commit,
    bench_hot_hit,
    bench_zipfian
);
criterion_main!(benches);
