//! Criterion microbenchmarks: per-operation latency of every scheme.
//!
//! Complements the figure binaries (which measure end-to-end throughput
//! with the AEP latency model): these run *without* latency injection so
//! they isolate algorithmic CPU cost per operation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdnh_bench::runner::preload;
use hdnh_bench::schemes::{build, Scheme};
use hdnh_common::rng::XorShift64Star;
use hdnh_ycsb::KeySpace;

const PRELOAD: u64 = 50_000;

fn bench_get(c: &mut Criterion) {
    std::env::set_var("HDNH_NO_LATENCY", "1");
    let ks = KeySpace::default();
    let mut group = c.benchmark_group("get_hit");
    for scheme in Scheme::paper_set() {
        let idx = build(scheme, PRELOAD as usize);
        preload(idx.as_ref(), &ks, PRELOAD, 2);
        let mut rng = XorShift64Star::new(1);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &idx, |b, idx| {
            b.iter(|| {
                let id = rng.next_u64() % PRELOAD;
                std::hint::black_box(idx.get(&ks.key(id)))
            })
        });
    }
    group.finish();
}

fn bench_get_miss(c: &mut Criterion) {
    std::env::set_var("HDNH_NO_LATENCY", "1");
    let ks = KeySpace::default();
    let mut group = c.benchmark_group("get_miss");
    for scheme in Scheme::paper_set() {
        let idx = build(scheme, PRELOAD as usize);
        preload(idx.as_ref(), &ks, PRELOAD, 2);
        let mut rng = XorShift64Star::new(2);
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &idx, |b, idx| {
            b.iter(|| {
                let id = rng.next_u64();
                std::hint::black_box(idx.get(&ks.negative_key(id)))
            })
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    std::env::set_var("HDNH_NO_LATENCY", "1");
    let ks = KeySpace::default();
    let mut group = c.benchmark_group("insert");
    group.sample_size(20);
    for scheme in Scheme::paper_set() {
        // Generous capacity: criterion decides the iteration count, so the
        // table must absorb whatever it runs (dynamic schemes grow anyway;
        // PATH gets a large static allocation).
        let idx = build(scheme, 4_000_000);
        let mut next = 1_000_000_000u64;
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &idx, |b, idx| {
            b.iter(|| {
                next += 1;
                std::hint::black_box(idx.insert(&ks.key(next), &ks.value(next, 0)).is_ok())
            })
        });
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    std::env::set_var("HDNH_NO_LATENCY", "1");
    let ks = KeySpace::default();
    let mut group = c.benchmark_group("update");
    for scheme in Scheme::paper_set() {
        let idx = build(scheme, PRELOAD as usize);
        preload(idx.as_ref(), &ks, PRELOAD, 2);
        let mut rng = XorShift64Star::new(3);
        let mut seq = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(scheme.name()), &idx, |b, idx| {
            b.iter(|| {
                let id = rng.next_u64() % PRELOAD;
                seq = seq.wrapping_add(1);
                std::hint::black_box(idx.update(&ks.key(id), &ks.value(id, seq)).is_ok())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_get, bench_get_miss, bench_insert, bench_update);
criterion_main!(benches);
