//! Log-bucketed latency histogram (figure 15's CDF).
//!
//! HdrHistogram-style: values are bucketed by magnitude (power of two) with
//! 16 linear sub-buckets per magnitude, giving ≤ ~6 % relative error over
//! nanoseconds-to-seconds — plenty for tail-latency CDFs. Plain `u64`
//! counters; per-thread instances are merged after the run.

/// Sub-buckets per power of two.
const SUBS: usize = 16;
/// Magnitudes covered (2^0 .. 2^47 ns ≈ 1.6 days).
const MAGS: usize = 48;

/// A mergeable latency histogram over `u64` nanosecond values.
///
/// ```
/// use hdnh_bench::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v * 100); // 100ns .. 100us
/// }
/// assert!(h.quantile(0.5) >= 40_000 && h.quantile(0.5) <= 60_000);
/// assert_eq!(h.quantile(1.0), 100_000);
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; MAGS * SUBS],
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_of(v: u64) -> usize {
        let v = v.max(1);
        let mag = 63 - v.leading_zeros() as usize;
        if mag < 4 {
            // Values below 16 land in the first magnitude's linear range.
            return (v as usize).min(SUBS - 1);
        }
        let sub = ((v >> (mag - 4)) & 0xF) as usize;
        ((mag.min(MAGS - 1)) * SUBS + sub).min(MAGS * SUBS - 1)
    }

    /// Lower edge of a bucket (representative value for reporting).
    fn bucket_value(idx: usize) -> u64 {
        let mag = idx / SUBS;
        let sub = (idx % SUBS) as u64;
        if mag < 1 {
            return sub;
        }
        (1u64 << mag) + (sub << (mag.saturating_sub(4)))
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (exact).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` (0.0 ..= 1.0), approximated by bucket edge.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_value(i);
            }
        }
        self.max
    }

    /// CDF sample points: `(latency_ns, cumulative_fraction)` for every
    /// non-empty bucket.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            acc += c;
            out.push((Self::bucket_value(i), acc as f64 / self.total as f64));
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn quantiles_are_ordered_and_approximate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p100 = h.quantile(1.0);
        assert!(p50 <= p99 && p99 <= p100);
        // ≤ ~7% relative error.
        assert!((4_500..=5_500).contains(&p50), "p50={p50}");
        assert!((9_000..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(p100, 10_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            let x = (v * 2654435761) % 100_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), c.quantile(q));
        }
    }

    #[test]
    fn cdf_is_monotonic_and_ends_at_one() {
        let mut h = Histogram::new();
        for v in [5u64, 50, 500, 5000, 50_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn small_values_do_not_collide_into_one_bucket() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(9);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.01) < h.quantile(0.99));
    }
}
