//! Bench regression gating: compare fresh `BENCH_*.json` artifacts
//! against committed baselines with tolerance bands.
//!
//! The gate is deliberately coarse. CI machines, laptops, and the
//! container this repo grows in differ by integer factors in absolute
//! throughput, so a tight band would only train people to ignore the
//! gate. What the bands *can* catch reliably is the class of regression
//! that matters: an accidental O(n) scan on the hot path, a lock
//! reintroduced on the read side, a debug assert left in a release build
//! — all of which shift throughput or tail latency by multiples, not
//! percents. Defaults: throughput may drop to 35% of baseline before
//! failing, p99 latency may grow 4× ([`Tolerance::default`]); CI can
//! tighten or loosen per artifact with flags.
//!
//! Shape drift is gated exactly, not tolerantly: a workload, mix, or
//! thread level present in the baseline but missing from the fresh run
//! fails the check — silent coverage loss is a regression even when
//! every remaining number is fine.

use crate::json::Json;

/// Tolerance bands for one comparison run.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Fresh throughput must be at least `throughput_floor` × baseline.
    pub throughput_floor: f64,
    /// Fresh p99 latency must be at most `latency_ceiling` × baseline.
    pub latency_ceiling: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            throughput_floor: 0.35,
            latency_ceiling: 4.0,
        }
    }
}

/// One detected regression (or shape violation), human-readable.
pub type Violation = String;

fn num(j: &Json, path: &str) -> Option<f64> {
    j.path(path).and_then(Json::as_f64)
}

/// Floor check on a throughput-like metric; `None` means the fresh
/// artifact lost the cell entirely.
fn check_floor(
    out: &mut Vec<Violation>,
    what: &str,
    base: Option<f64>,
    fresh: Option<f64>,
    floor: f64,
) {
    match (base, fresh) {
        // A baseline cell without a fresh counterpart is coverage loss.
        (Some(b), None) => out.push(format!("{what}: missing from fresh run (baseline {b:.4})")),
        (Some(b), Some(f)) if b > 0.0 && f < b * floor => out.push(format!(
            "{what}: {f:.4} fell below {:.4} ({:.0}% of baseline {b:.4})",
            b * floor,
            floor * 100.0
        )),
        // No baseline: nothing to gate against (new cells are fine).
        _ => {}
    }
}

/// Ceiling check on a latency-like metric.
fn check_ceiling(
    out: &mut Vec<Violation>,
    what: &str,
    base: Option<f64>,
    fresh: Option<f64>,
    ceiling: f64,
) {
    match (base, fresh) {
        (Some(b), None) => out.push(format!("{what}: missing from fresh run (baseline {b:.0})")),
        (Some(b), Some(f)) if b > 0.0 && f > b * ceiling => out.push(format!(
            "{what}: {f:.0} exceeded {:.0} ({}x baseline {b:.0})",
            b * ceiling,
            ceiling
        )),
        _ => {}
    }
}

fn expect_bench(base: &Json, fresh: &Json, kind: &str, out: &mut Vec<Violation>) -> bool {
    for (doc, which) in [(base, "baseline"), (fresh, "fresh")] {
        if doc.get("bench").and_then(Json::as_str) != Some(kind) {
            out.push(format!("{which} document is not a \"{kind}\" artifact"));
            return false;
        }
    }
    true
}

/// Compares `BENCH_ops.json` artifacts: per-workload Mops floors.
pub fn compare_ops(base: &Json, fresh: &Json, tol: Tolerance) -> Vec<Violation> {
    let mut out = Vec::new();
    if !expect_bench(base, fresh, "ops", &mut out) {
        return out;
    }
    let Some(workloads) = base.get("workloads").and_then(Json::as_obj) else {
        out.push("baseline ops artifact has no workloads object".into());
        return out;
    };
    for (name, wl) in workloads {
        check_floor(
            &mut out,
            &format!("ops workload {name} mops"),
            wl.get("mops").and_then(Json::as_f64),
            num(fresh, &format!("workloads.{name}.mops")),
            tol.throughput_floor,
        );
    }
    out
}

/// Compares `BENCH_scale.json` artifacts: per-(threads, workload) Mops
/// floors and get-p99 ceilings. Thread levels are matched by their
/// `threads` value, not array position, so a reordered sweep still
/// compares the right cells.
pub fn compare_scale(base: &Json, fresh: &Json, tol: Tolerance) -> Vec<Violation> {
    let mut out = Vec::new();
    if !expect_bench(base, fresh, "scale", &mut out) {
        return out;
    }
    let sweep_of = |doc: &Json| -> Vec<(u64, Json)> {
        doc.get("sweep")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|lvl| {
                        Some((num(lvl, "threads")? as u64, lvl.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_sweep = sweep_of(base);
    let fresh_sweep = sweep_of(fresh);
    if base_sweep.is_empty() {
        out.push("baseline scale artifact has no sweep".into());
        return out;
    }
    for (threads, lvl) in &base_sweep {
        let Some((_, fresh_lvl)) = fresh_sweep.iter().find(|(t, _)| t == threads) else {
            out.push(format!("scale sweep lost the {threads}-thread level"));
            continue;
        };
        let Some(workloads) = lvl.get("workloads").and_then(Json::as_obj) else {
            continue;
        };
        for (name, wl) in workloads {
            let ctx = format!("scale {threads}t workload {name}");
            check_floor(
                &mut out,
                &format!("{ctx} mops"),
                wl.get("mops").and_then(Json::as_f64),
                num(fresh_lvl, &format!("workloads.{name}.mops")),
                tol.throughput_floor,
            );
            check_ceiling(
                &mut out,
                &format!("{ctx} get_p99_ns"),
                wl.get("get_p99_ns").and_then(Json::as_f64),
                num(fresh_lvl, &format!("workloads.{name}.get_p99_ns")),
                tol.latency_ceiling,
            );
        }
    }
    out
}

/// Compares `BENCH_net.json` artifacts: per-mix throughput floors and
/// per-op-kind p99 ceilings. Mixes are matched by their `mix` name.
pub fn compare_net(base: &Json, fresh: &Json, tol: Tolerance) -> Vec<Violation> {
    let mut out = Vec::new();
    if !expect_bench(base, fresh, "net", &mut out) {
        return out;
    }
    let mixes_of = |doc: &Json| -> Vec<(String, Json)> {
        doc.get("mixes")
            .and_then(Json::as_arr)
            .map(|arr| {
                arr.iter()
                    .filter_map(|m| {
                        Some((m.get("mix")?.as_str()?.to_string(), m.clone()))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_mixes = mixes_of(base);
    let fresh_mixes = mixes_of(fresh);
    if base_mixes.is_empty() {
        out.push("baseline net artifact has no mixes".into());
        return out;
    }
    for (name, mix) in &base_mixes {
        let Some((_, fresh_mix)) = fresh_mixes.iter().find(|(n, _)| n == name) else {
            out.push(format!("net run lost mix {name}"));
            continue;
        };
        check_floor(
            &mut out,
            &format!("net mix {name} throughput_ops_s"),
            mix.get("throughput_ops_s").and_then(Json::as_f64),
            fresh_mix.get("throughput_ops_s").and_then(Json::as_f64),
            tol.throughput_floor,
        );
        if let Some(lat) = mix.get("latency").and_then(Json::as_obj) {
            for (kind, h) in lat {
                check_ceiling(
                    &mut out,
                    &format!("net mix {name} {kind} p99_ns"),
                    h.get("p99_ns").and_then(Json::as_f64),
                    num(fresh_mix, &format!("latency.{kind}.p99_ns")),
                    tol.latency_ceiling,
                );
            }
        }
    }
    // Open-loop overload section: once a baseline carries one, every
    // fresh run must too, sustain a comparable reply rate, keep tail
    // latency inside the band, and complete with zero errors (an error
    // under overload is a dropped or misanswered request, not noise).
    if let Some(ol) = base.get("open_loop") {
        match fresh.get("open_loop") {
            None => out.push("net run lost the open_loop section".into()),
            Some(f) => {
                check_floor(
                    &mut out,
                    "net open_loop achieved_rate_ops_s",
                    ol.get("achieved_rate_ops_s").and_then(Json::as_f64),
                    f.get("achieved_rate_ops_s").and_then(Json::as_f64),
                    tol.throughput_floor,
                );
                for q in ["p99_ns", "p999_ns"] {
                    check_ceiling(
                        &mut out,
                        &format!("net open_loop latency {q}"),
                        num(ol, &format!("latency.{q}")),
                        num(f, &format!("latency.{q}")),
                        tol.latency_ceiling,
                    );
                }
                match f.get("errors").and_then(Json::as_f64) {
                    Some(e) if e > 0.0 => {
                        out.push(format!("net open_loop fresh run had {e:.0} errors"))
                    }
                    Some(_) => {}
                    None => out.push("net open_loop fresh run has no errors field".into()),
                }
            }
        }
    }
    out
}

/// Dispatches on the artifact's `bench` tag.
pub fn compare(base: &Json, fresh: &Json, tol: Tolerance) -> Vec<Violation> {
    match base.get("bench").and_then(Json::as_str) {
        Some("ops") => compare_ops(base, fresh, tol),
        Some("scale") => compare_scale(base, fresh, tol),
        Some("net") => compare_net(base, fresh, tol),
        other => vec![format!("unknown baseline artifact kind {other:?}")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: &str = r#"{"bench":"ops","threads":2,"workloads":{
        "a":{"ops":1000,"secs":0.001,"mops":1.0},
        "c":{"ops":1000,"secs":0.0005,"mops":2.0}}}"#;

    const SCALE: &str = r#"{"bench":"scale","max_threads":2,"sweep":[
        {"threads":1,"workloads":{"c":{"mops":4.0,"get_p99_ns":600}}},
        {"threads":2,"workloads":{"c":{"mops":4.5,"get_p99_ns":620}}}]}"#;

    const NET: &str = r#"{"bench":"net","config":{},"mixes":[
        {"mix":"a","throughput_ops_s":100000.0,"latency":{
            "get":{"count":10,"p99_ns":50000},"set":{"count":10,"p99_ns":80000}}},
        {"mix":"c","throughput_ops_s":200000.0,"latency":{
            "get":{"count":10,"p99_ns":40000}}}]}"#;

    const NET_OL: &str = r#"{"bench":"net","config":{},"mixes":[
        {"mix":"a","throughput_ops_s":100000.0,"latency":{
            "get":{"count":10,"p99_ns":50000}}}],
        "open_loop":{"idle_conns":1000,"hot_conns":4,"target_rate_ops_s":5000.0,
            "achieved_rate_ops_s":4900.0,"duration_s":10.0,
            "sent":50000,"replies":50000,"errors":0,
            "latency":{"count":50000,"mean_ns":40000,"p50_ns":30000,
                "p99_ns":200000,"p999_ns":900000,"max_ns":2000000}}}"#;

    fn j(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn identical_artifacts_pass() {
        let tol = Tolerance::default();
        assert!(compare(&j(OPS), &j(OPS), tol).is_empty());
        assert!(compare(&j(SCALE), &j(SCALE), tol).is_empty());
        assert!(compare(&j(NET), &j(NET), tol).is_empty());
    }

    #[test]
    fn modest_noise_stays_inside_the_band() {
        // 30% slower and 2x p99: machine noise, not a regression.
        let fresh = j(&OPS.replace("\"mops\":1.0", "\"mops\":0.7"));
        assert!(compare(&j(OPS), &fresh, Tolerance::default()).is_empty());
        let fresh = j(&SCALE.replace("\"get_p99_ns\":600", "\"get_p99_ns\":1200"));
        assert!(compare(&j(SCALE), &fresh, Tolerance::default()).is_empty());
    }

    #[test]
    fn doctored_throughput_collapse_fails() {
        // 10x collapse on one workload: the gate must fire and name the cell.
        let fresh = j(&OPS.replace("\"mops\":2.0", "\"mops\":0.2"));
        let v = compare(&j(OPS), &fresh, Tolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("workload c"), "{v:?}");
    }

    #[test]
    fn doctored_latency_blowup_fails() {
        let fresh = j(&NET.replace("\"p99_ns\":40000", "\"p99_ns\":900000"));
        let v = compare(&j(NET), &fresh, Tolerance::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("mix c") && v[0].contains("p99"), "{v:?}");
    }

    #[test]
    fn lost_coverage_fails_even_with_good_numbers() {
        // Fresh run silently dropped workload c.
        let fresh = j(r#"{"bench":"ops","workloads":{"a":{"mops":99.0}}}"#);
        let v = compare(&j(OPS), &fresh, Tolerance::default());
        assert!(v.iter().any(|m| m.contains("workload c") && m.contains("missing")), "{v:?}");

        // Fresh scale run lost the 2-thread level.
        let fresh = j(r#"{"bench":"scale","sweep":[
            {"threads":1,"workloads":{"c":{"mops":4.0,"get_p99_ns":600}}}]}"#);
        let v = compare(&j(SCALE), &fresh, Tolerance::default());
        assert!(v.iter().any(|m| m.contains("2-thread")), "{v:?}");

        // Fresh net run lost mix c.
        let fresh = j(r#"{"bench":"net","mixes":[
            {"mix":"a","throughput_ops_s":100000.0,"latency":{}}]}"#);
        let v = compare(&j(NET), &fresh, Tolerance::default());
        assert!(v.iter().any(|m| m.contains("lost mix c")), "{v:?}");
    }

    #[test]
    fn scale_sweep_matches_by_thread_count_not_position() {
        let reordered = j(r#"{"bench":"scale","sweep":[
            {"threads":2,"workloads":{"c":{"mops":4.5,"get_p99_ns":620}}},
            {"threads":1,"workloads":{"c":{"mops":4.0,"get_p99_ns":600}}}]}"#);
        assert!(compare(&j(SCALE), &reordered, Tolerance::default()).is_empty());
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let v = compare(&j(OPS), &j(NET), Tolerance::default());
        assert!(!v.is_empty());
    }

    #[test]
    fn open_loop_identical_passes_and_losses_fail() {
        let tol = Tolerance::default();
        assert!(compare(&j(NET_OL), &j(NET_OL), tol).is_empty());

        // A baseline without the section gates nothing open-loop, so a
        // fresh run *gaining* the section is fine.
        let gained = j(
            r#"{"bench":"net","config":{},"mixes":[
                {"mix":"a","throughput_ops_s":100000.0,"latency":{
                    "get":{"count":10,"p99_ns":50000},"set":{"count":10,"p99_ns":80000}}},
                {"mix":"c","throughput_ops_s":200000.0,"latency":{
                    "get":{"count":10,"p99_ns":40000}}}],
                "open_loop":{"errors":0}}"#,
        );
        assert!(compare(&j(NET), &gained, tol).is_empty());

        // Fresh run silently dropped the overload phase.
        let v = compare(&j(NET_OL), &j(NET), tol);
        assert!(v.iter().any(|m| m.contains("lost the open_loop")), "{v:?}");
    }

    #[test]
    fn open_loop_tail_blowup_and_rate_collapse_fail() {
        let tol = Tolerance::default();
        // p999 grows 5x: past the 4x ceiling.
        let fresh = j(&NET_OL.replace("\"p999_ns\":900000", "\"p999_ns\":4500000"));
        let v = compare(&j(NET_OL), &fresh, tol);
        assert!(v.iter().any(|m| m.contains("p999_ns")), "{v:?}");

        // Reply rate collapsed to a fifth of baseline.
        let fresh = j(&NET_OL.replace("\"achieved_rate_ops_s\":4900.0", "\"achieved_rate_ops_s\":980.0"));
        let v = compare(&j(NET_OL), &fresh, tol);
        assert!(v.iter().any(|m| m.contains("achieved_rate")), "{v:?}");
    }

    #[test]
    fn open_loop_errors_fail_outright() {
        // Even two errors out of 50k requests is a gate failure: under
        // overload the server must shed load by latency, never by
        // breaking connections.
        let fresh = j(&NET_OL.replace("\"errors\":0", "\"errors\":2"));
        let v = compare(&j(NET_OL), &fresh, Tolerance::default());
        assert!(v.iter().any(|m| m.contains("2 errors")), "{v:?}");
    }

    #[test]
    fn custom_bands_apply() {
        // With a 0.95 floor, a 10% dip fails.
        let tight = Tolerance {
            throughput_floor: 0.95,
            latency_ceiling: 1.05,
        };
        let fresh = j(&OPS.replace("\"mops\":1.0", "\"mops\":0.9"));
        assert_eq!(compare(&j(OPS), &fresh, tight).len(), 1);
    }
}
