//! Benchmark harness reproducing the HDNH paper's evaluation (§4).
//!
//! One binary per table/figure (`cargo run --release -p hdnh-bench --bin
//! figNN`), all built from the pieces here:
//!
//! * [`schemes`] — uniform constructors for HDNH (and its ablation/policy
//!   variants), Level hashing, CCEH and Path hashing, sized for a workload
//!   and wired to the AEP latency model.
//! * [`runner`] — preload + timed multi-threaded op-stream execution over
//!   any [`hdnh_common::HashIndex`], with optional per-op latency capture.
//! * [`hist`] — a log-bucketed latency histogram (percentiles, CDF export).
//! * [`report`] — aligned-table printing shared by all binaries.
//! * [`json`] / [`check`] — a dependency-free JSON reader and the
//!   tolerance-band comparisons behind the `bench_check` regression gate.
//!
//! Environment knobs (all binaries):
//!
//! * `HDNH_SCALE` — multiplies preload/op counts (default 1.0; the paper's
//!   180 M-op runs correspond to very large values — shapes stabilise far
//!   earlier).
//! * `HDNH_THREADS` — caps the thread axis of concurrency sweeps.
//! * `HDNH_NO_LATENCY` — disable the AEP latency model (functional runs).


#![warn(missing_docs)]
pub mod check;
pub mod hist;
pub mod json;
pub mod report;
pub mod runner;
pub mod schemes;

/// Scale factor from `HDNH_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("HDNH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a baseline count by [`scale`].
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()).max(1.0) as usize
}

/// Thread cap from `HDNH_THREADS` (default 16, the paper's max).
pub fn max_threads() -> usize {
    std::env::var("HDNH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Whether to run with the AEP latency model (default yes).
pub fn latency_enabled() -> bool {
    std::env::var("HDNH_NO_LATENCY").is_err()
}
