//! Figure 12: single-thread search throughput vs zipfian exponent `s`
//! (0.5 → 1.22) for LEVEL, CCEH, HDNH(RAFL) and HDNH(LRU).
//!
//! The skew axis is where the hot table earns its keep: LEVEL and CCEH are
//! oblivious to skew, while HDNH's throughput climbs as the hot set shrinks
//! into DRAM. RAFL-vs-LRU isolates the replacement policy's hit-path
//! overhead (a relaxed `fetch_or` vs a lock + list move per hit).

use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::{build, Scheme};
use hdnh_bench::scaled;
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn main() {
    let preloaded = scaled(100_000) as u64;
    let ops = scaled(150_000);
    banner(
        "fig12",
        "search throughput vs access skewness (single thread)",
        &format!("{preloaded} records preloaded; {ops} scrambled-zipfian searches per point"),
    );

    let schemes = [Scheme::Level, Scheme::Cceh, Scheme::HdnhLru, Scheme::Hdnh];
    let ks = KeySpace::default();
    let mut table = Table::new(&["s", "LEVEL", "CCEH", "HDNH(LRU)", "HDNH(RAFL)"]);
    for s in [0.5, 0.7, 0.9, 0.99, 1.1, 1.22] {
        let mut row = vec![format!("{s:.2}")];
        for scheme in schemes {
            let idx = build(scheme, preloaded as usize);
            preload(idx.as_ref(), &ks, preloaded, 2);
            let r = run_workload(
                idx.as_ref(),
                &ks,
                &WorkloadSpec::search_only(Mix::ScrambledZipfian { s }),
                preloaded,
                ops,
                1,
                31,
                false,
            );
            row.push(mops(r.mops()));
        }
        table.row(row);
    }
    table.print();
    expectation(
        "LEVEL/CCEH stay nearly flat across s; both HDNH variants climb \
         steeply with skew; RAFL beats LRU once s ≥ 0.9 (paper: 1.23x at \
         s=0.99, 1.4x at s=1.22)",
    );
}
