//! `bench_check` — the bench regression gate.
//!
//! Compares fresh `BENCH_ops.json` / `BENCH_net.json` /
//! `BENCH_net_spill.json` / `BENCH_scale.json` artifacts against
//! committed baselines with tolerance bands (see
//! [`hdnh_bench::check`]) and exits nonzero on any violation, so CI can
//! fail a PR that collapses throughput or blows up tail latency.
//!
//! ```text
//! bench_check [--baseline-dir DIR] [--fresh-dir DIR]
//!             [--throughput-floor F] [--latency-ceiling F]
//!             [--only ops,net,net_spill,scale] [--write-baselines]
//! ```
//!
//! Defaults: baselines in `crates/baselines/bench/`, fresh artifacts in
//! the working directory, bands from [`Tolerance::default`]. An artifact
//! whose baseline or fresh file is missing fails the run — a gate that
//! silently skips is not a gate. `--write-baselines` copies the fresh
//! artifacts over the baselines instead of comparing (for intentional
//! performance-profile changes; commit the result).

use std::path::{Path, PathBuf};
use std::process::exit;

use hdnh_bench::check::{compare, Tolerance};
use hdnh_bench::json::Json;

const ARTIFACTS: [(&str, &str); 4] = [
    ("ops", "BENCH_ops.json"),
    ("net", "BENCH_net.json"),
    // Spill-heavy net leg: same schema as BENCH_net.json (the `bench`
    // tag is still "net"), produced with `netbench --value-size mix` so
    // most values route through the value log instead of inline slots.
    ("net_spill", "BENCH_net_spill.json"),
    ("scale", "BENCH_scale.json"),
];

struct Args {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    tol: Tolerance,
    only: Vec<String>,
    write_baselines: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        baseline_dir: PathBuf::from("crates/baselines/bench"),
        fresh_dir: PathBuf::from("."),
        tol: Tolerance::default(),
        only: Vec::new(),
        write_baselines: false,
    };
    let mut it = std::env::args().skip(1);
    let need = |v: Option<String>, what: &str| -> String {
        v.unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            exit(2);
        })
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline-dir" => a.baseline_dir = need(it.next(), "--baseline-dir").into(),
            "--fresh-dir" => a.fresh_dir = need(it.next(), "--fresh-dir").into(),
            "--throughput-floor" => {
                a.tol.throughput_floor = need(it.next(), "--throughput-floor")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--throughput-floor needs a number in (0,1]");
                        exit(2);
                    });
            }
            "--latency-ceiling" => {
                a.tol.latency_ceiling = need(it.next(), "--latency-ceiling")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("--latency-ceiling needs a number >= 1");
                        exit(2);
                    });
            }
            "--only" => {
                a.only = need(it.next(), "--only")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--write-baselines" => a.write_baselines = true,
            "--help" | "-h" => {
                println!(
                    "bench_check [--baseline-dir DIR] [--fresh-dir DIR] \
                     [--throughput-floor F] [--latency-ceiling F] \
                     [--only ops,net,net_spill,scale] [--write-baselines]"
                );
                exit(0);
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                exit(2);
            }
        }
    }
    if !(a.tol.throughput_floor > 0.0 && a.tol.throughput_floor <= 1.0) {
        eprintln!("--throughput-floor must be in (0,1]");
        exit(2);
    }
    if a.tol.latency_ceiling < 1.0 {
        eprintln!("--latency-ceiling must be >= 1");
        exit(2);
    }
    for kind in &a.only {
        if !ARTIFACTS.iter().any(|(k, _)| k == kind) {
            eprintln!("--only accepts a comma list of: ops, net, net_spill, scale");
            exit(2);
        }
    }
    a
}

fn load(path: &Path, which: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL cannot read {which} {}: {e}", path.display());
        exit(1);
    });
    Json::parse(text.trim()).unwrap_or_else(|e| {
        eprintln!("FAIL cannot parse {which} {}: {e}", path.display());
        exit(1);
    })
}

fn main() {
    let args = parse_args();
    let selected: Vec<_> = ARTIFACTS
        .iter()
        .filter(|(kind, _)| args.only.is_empty() || args.only.iter().any(|o| o == kind))
        .collect();

    if args.write_baselines {
        std::fs::create_dir_all(&args.baseline_dir).unwrap_or_else(|e| {
            eprintln!("cannot create {}: {e}", args.baseline_dir.display());
            exit(1);
        });
        for (kind, file) in &selected {
            let src = args.fresh_dir.join(file);
            load(&src, "fresh artifact"); // validate before installing
            let dst = args.baseline_dir.join(file);
            std::fs::copy(&src, &dst).unwrap_or_else(|e| {
                eprintln!("cannot install baseline {}: {e}", dst.display());
                exit(1);
            });
            println!("installed {kind} baseline {}", dst.display());
        }
        return;
    }

    println!(
        "bench_check: throughput floor {:.0}% of baseline, p99 ceiling {}x baseline",
        args.tol.throughput_floor * 100.0,
        args.tol.latency_ceiling
    );
    let mut failed = false;
    for (kind, file) in &selected {
        let base = load(&args.baseline_dir.join(file), "baseline");
        let fresh = load(&args.fresh_dir.join(file), "fresh artifact");
        let violations = compare(&base, &fresh, args.tol);
        if violations.is_empty() {
            println!("PASS {kind} ({file})");
        } else {
            failed = true;
            println!("FAIL {kind} ({file}):");
            for v in &violations {
                println!("  {v}");
            }
        }
    }
    if failed {
        eprintln!("bench_check: regression detected");
        exit(1);
    }
    println!("bench_check: all artifacts within tolerance");
}
