//! Read-path scalability sweep: YCSB A/B/C at 1..=N threads against one
//! preloaded HDNH table, consolidated into `BENCH_scale.json`.
//!
//! This is the regression gate for the lock-free read path (DESIGN.md §11):
//! with the global RwLock gone, read-mostly throughput must scale with
//! threads instead of serializing on a shared lock word. Per (threads,
//! workload) cell it emits aggregate throughput plus the registry's get
//! p50/p99 and the snapshot-retry counter, so a scalability regression and
//! its cause (retry storms vs plain slowdown) land in the same artifact.
//!
//! Knobs: `HDNH_SCALE`, `HDNH_THREADS` (sweep ceiling), `HDNH_BENCH_OUT`
//! to override the output path (default `BENCH_scale.json`).

use std::fmt::Write as _;

use hdnh::Hdnh;
use hdnh_bench::report::banner;
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::hdnh_params;
use hdnh_bench::{max_threads, scaled};
use hdnh_obs as obs;
use hdnh_ycsb::{KeySpace, WorkloadSpec};

/// 1, 2, 4, ... doubling up to and always including `max`.
fn sweep(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut t = 1;
    while t < max {
        out.push(t);
        t *= 2;
    }
    out.push(max);
    out
}

fn main() {
    let preloaded = scaled(60_000) as u64;
    let ops_per_thread = scaled(25_000);
    let top = max_threads().max(1);
    let threads_sweep = sweep(top);
    let out_path = std::env::var("HDNH_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    banner(
        "bench_scale",
        "YCSB A/B/C thread-scalability sweep (machine-readable)",
        &format!(
            "preload {preloaded}; {ops_per_thread} ops/thread; threads {threads_sweep:?}; \
             per-cell JSON -> {out_path}"
        ),
    );

    obs::set_enabled(true);
    let ks = KeySpace::default();
    let table = Hdnh::new(hdnh_params(preloaded as usize));
    preload(&table, &ks, preloaded, top);

    let workloads: [(char, WorkloadSpec); 3] = [
        ('a', WorkloadSpec::ycsb_a()),
        ('b', WorkloadSpec::ycsb_b()),
        ('c', WorkloadSpec::ycsb_c()),
    ];

    let mut sweep_json = String::new();
    for (i, &threads) in threads_sweep.iter().enumerate() {
        let mut wl_json = String::new();
        for (j, (name, spec)) in workloads.iter().enumerate() {
            let m0 = obs::snapshot();
            let r = run_workload(
                &table,
                &ks,
                spec,
                preloaded,
                ops_per_thread,
                threads,
                0x5CA1E ^ ((i as u64) << 8) ^ j as u64,
                false,
            );
            let dm = obs::snapshot().since(&m0);
            let get = dm.op(obs::OpKind::Get);
            let retries = dm.counter(obs::Counter::SnapshotRetry);
            println!(
                "YCSB-{} x{:>2} threads: {} ops in {:.3} s ({:.3} Mops/s); \
                 get p50 {} ns p99 {} ns; snapshot retries {}",
                name.to_ascii_uppercase(),
                threads,
                r.ops,
                r.secs,
                r.mops(),
                get.quantile(0.5),
                get.quantile(0.99),
                retries,
            );
            let _ = write!(
                wl_json,
                "{}\"{}\":{{\"ops\":{},\"secs\":{:.6},\"mops\":{:.4},\
                 \"get_p50_ns\":{},\"get_p99_ns\":{},\"snapshot_retries\":{}}}",
                if j == 0 { "" } else { "," },
                name,
                r.ops,
                r.secs,
                r.mops(),
                get.quantile(0.5),
                get.quantile(0.99),
                retries,
            );
        }
        let _ = write!(
            sweep_json,
            "{}{{\"threads\":{},\"workloads\":{{{}}}}}",
            if i == 0 { "" } else { "," },
            threads,
            wl_json,
        );
    }

    let doc = format!(
        "{{\"bench\":\"scale\",\"max_threads\":{top},\"preload\":{preloaded},\
         \"ops_per_thread\":{ops_per_thread},\"sweep\":[{sweep_json}]}}\n"
    );
    match std::fs::write(&out_path, &doc) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error writing {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
