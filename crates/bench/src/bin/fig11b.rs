//! Figure 11(b): positive/negative search throughput vs hot-table
//! slots-per-bucket (1, 2, 4, 8), single thread.
//!
//! More slots per hot bucket raise the DRAM hit rate of positive searches
//! but lengthen the miss scan that every negative search pays before it
//! falls through to the OCF.

use hdnh::{Hdnh, HdnhParams};
use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::hdnh_params;
use hdnh_bench::scaled;
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn main() {
    let preloaded = scaled(100_000) as u64;
    let ops = scaled(150_000);
    banner(
        "fig11b",
        "search throughput vs hot-table slots per bucket (single thread)",
        &format!("{preloaded} records preloaded; {ops} zipfian(0.99) positive / uniform negative searches"),
    );

    let ks = KeySpace::default();
    let mut table = Table::new(&["hot slots", "positive Mops", "negative Mops"]);
    for slots in [1usize, 2, 4, 8] {
        // The paper's sweep holds the hot table's *bucket count* fixed, so
        // capacity grows with slots/bucket ("more data searches hit in hot
        // table with bigger slot number") while the per-bucket miss scan
        // lengthens. Scale the capacity ratio accordingly (4 slots = the
        // default 25%).
        let t = Hdnh::new(HdnhParams {
            hot_slots_per_bucket: slots,
            hot_capacity_ratio: 0.25 * slots as f64 / 4.0,
            ..hdnh_params(preloaded as usize)
        });
        preload(&t, &ks, preloaded, 2);
        let pos = run_workload(
            &t,
            &ks,
            &WorkloadSpec::search_only(Mix::ScrambledZipfian { s: 0.99 }),
            preloaded,
            ops,
            1,
            21,
            false,
        );
        let neg = run_workload(
            &t,
            &ks,
            &WorkloadSpec::negative_search_only(),
            preloaded,
            ops,
            1,
            22,
            false,
        );
        table.row(vec![
            slots.to_string(),
            mops(pos.mops()),
            mops(neg.mops()),
        ]);
    }
    table.print();
    expectation(
        "positive search improves with more slots (higher hot-table hit \
         rate); negative search degrades (longer miss scan); 4 slots is the \
         balance point the paper adopts",
    );
}
