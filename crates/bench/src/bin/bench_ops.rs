//! Machine-readable YCSB run: workloads A/B/C/F against one preloaded HDNH
//! table with the `hdnh-obs` registry enabled, consolidated into
//! `BENCH_ops.json`.
//!
//! Unlike the figure binaries (which print tables for humans), this one
//! exists for harnesses: per workload it emits throughput, the registry's
//! per-op latency percentiles, event counters, derived rates (OCF false
//! positives, hot-table hits, sync-write overlap) and NVM media counts per
//! op — everything needed to track a regression without re-parsing prose.
//!
//! Knobs: `HDNH_SCALE`, `HDNH_THREADS`, `HDNH_NO_LATENCY` as everywhere,
//! plus `HDNH_BENCH_OUT` to override the output path (default
//! `BENCH_ops.json` in the working directory).

use std::fmt::Write as _;

use hdnh::Hdnh;
use hdnh_bench::report::banner;
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::hdnh_params;
use hdnh_bench::{max_threads, scaled};
use hdnh_obs as obs;
use hdnh_ycsb::{KeySpace, WorkloadSpec};

fn main() {
    let preloaded = scaled(60_000) as u64;
    let ops_per_thread = scaled(25_000);
    let threads = max_threads().max(1);
    let out_path = std::env::var("HDNH_BENCH_OUT").unwrap_or_else(|_| "BENCH_ops.json".into());
    banner(
        "bench_ops",
        "YCSB A/B/C/F with full-path metrics (machine-readable)",
        &format!(
            "preload {preloaded}; {ops_per_thread} ops/thread x {threads} threads; \
             registry JSON per workload -> {out_path}"
        ),
    );

    obs::set_enabled(true);
    let ks = KeySpace::default();
    let table = Hdnh::new(hdnh_params(preloaded as usize));
    preload(&table, &ks, preloaded, threads);

    let workloads: [(char, WorkloadSpec); 4] = [
        ('a', WorkloadSpec::ycsb_a()),
        ('b', WorkloadSpec::ycsb_b()),
        ('c', WorkloadSpec::ycsb_c()),
        ('f', WorkloadSpec::ycsb_f()),
    ];

    let mut wl_json = String::new();
    for (i, (name, spec)) in workloads.iter().enumerate() {
        let m0 = obs::snapshot();
        let s0 = table.nvm_stats();
        let r = run_workload(
            &table,
            &ks,
            spec,
            preloaded,
            ops_per_thread,
            threads,
            0xA11CE ^ i as u64,
            false,
        );
        let dm = obs::snapshot().since(&m0);
        let per = table.nvm_stats().since(&s0).per_op(r.ops as u64);
        let get = dm.op(obs::OpKind::Get);
        println!(
            "YCSB-{}: {} ops in {:.3} s ({:.3} Mops/s); get p50 {} ns p99 {} ns; \
             registry ops {}; blk reads/op {:.3}",
            name.to_ascii_uppercase(),
            r.ops,
            r.secs,
            r.mops(),
            get.quantile(0.5),
            get.quantile(0.99),
            dm.total_ops(),
            per.read_blocks,
        );
        let _ = write!(
            wl_json,
            "{}\"{}\":{{\"ops\":{},\"secs\":{:.6},\"mops\":{:.4},\"metrics\":{},\
             \"nvm_per_op\":{{\"reads\":{:.4},\"read_blocks\":{:.4},\"writes\":{:.4},\
             \"write_lines\":{:.4},\"flushes\":{:.4},\"fences\":{:.4}}}}}",
            if i == 0 { "" } else { "," },
            name,
            r.ops,
            r.secs,
            r.mops(),
            dm.to_json(),
            per.reads,
            per.read_blocks,
            per.writes,
            per.write_lines,
            per.flushes,
            per.fences,
        );
    }

    // Sync-policy cost: the same YCSB-A mix on a file-backed pool under
    // MS_ASYNC (default, acks before media) vs MS_SYNC (blocks every fence
    // until the media write completes — the only power-loss-safe ack).
    // Smaller run: a blocking msync per fence is orders slower on disk.
    let sp_preload = scaled(10_000) as u64;
    let sp_ops = scaled(4_000);
    let mut sp_json = String::new();
    for (i, policy) in [hdnh_nvm::SyncPolicy::Async, hdnh_nvm::SyncPolicy::Sync]
        .into_iter()
        .enumerate()
    {
        let dir = std::env::temp_dir().join(format!(
            "hdnh-bench-syncpolicy-{}-{}",
            policy.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut params = hdnh_params(sp_preload as usize);
        params.nvm.sync_policy = policy;
        let (table, _) = Hdnh::open_pool(params, &dir, threads).expect("sync-policy pool");
        preload(&table, &ks, sp_preload, threads);
        let r = run_workload(
            &table,
            &ks,
            &WorkloadSpec::ycsb_a(),
            sp_preload,
            sp_ops,
            threads,
            0xFE11CE,
            false,
        );
        table.close_pool().expect("sync-policy pool close");
        let _ = std::fs::remove_dir_all(&dir);
        println!(
            "YCSB-A pool {}: {} ops in {:.3} s ({:.3} Mops/s)",
            policy.name(),
            r.ops,
            r.secs,
            r.mops(),
        );
        let _ = write!(
            sp_json,
            "{}\"{}\":{{\"ops\":{},\"secs\":{:.6},\"mops\":{:.4}}}",
            if i == 0 { "" } else { "," },
            policy.name(),
            r.ops,
            r.secs,
            r.mops(),
        );
    }

    let doc = format!(
        "{{\"bench\":\"ops\",\"threads\":{threads},\"preload\":{preloaded},\
         \"ops_per_thread\":{ops_per_thread},\"workloads\":{{{wl_json}}},\
         \"sync_policy\":{{\"backend\":\"pool\",\"workload\":\"a\",\
         \"preload\":{sp_preload},\"ops_per_thread\":{sp_ops},{sp_json}}}}}\n"
    );
    match std::fs::write(&out_path, &doc) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error writing {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
