//! Figure 14: throughput vs thread count (1 → 16) for three workloads —
//! (a) 100 % insert, (b) 100 % search, (c) 50 % insert + 50 % search.
//!
//! This is the concurrency-control comparison: HDNH's per-slot optimistic
//! scheme against CCEH's NVM-resident segment locks, LEVEL's bucket locks
//! and PATH's global lock. Note: thread counts beyond the machine's cores
//! measure oversubscribed behaviour (the host the paper used had 32 cores);
//! the cross-scheme ordering is what the figure checks.

use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::{build, Scheme};
use hdnh_bench::{max_threads, scaled};
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn main() {
    let preloaded = scaled(50_000) as u64;
    let total_ops = scaled(120_000);
    banner(
        "fig14",
        "concurrent throughput, 1..16 threads",
        &format!(
            "preload {preloaded}; {total_ops} total ops split across threads; \
             workloads: 100% insert / 100% search / 50-50 mix"
        ),
    );

    let threads_axis: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max_threads())
        .collect();

    let workloads: [(&str, WorkloadSpec); 3] = [
        ("(a) 100% insert", WorkloadSpec::insert_only()),
        ("(b) 100% search", WorkloadSpec::search_only(Mix::Uniform)),
        ("(c) 50% insert + 50% search", WorkloadSpec::mixed_insert_search()),
    ];

    let ks = KeySpace::default();
    for (label, spec) in workloads {
        if !hdnh_bench::report::csv() {
            println!("\n  {label}");
        }
        let mut table = Table::new(&["threads", "PATH", "LEVEL", "CCEH", "HDNH"]);
        for &threads in &threads_axis {
            let ops_per_thread = total_ops / threads;
            let mut row = vec![threads.to_string()];
            for scheme in Scheme::paper_set() {
                let capacity = preloaded as usize + total_ops;
                let idx = build(scheme, capacity);
                preload(idx.as_ref(), &ks, preloaded, 2);
                let r = run_workload(
                    idx.as_ref(),
                    &ks,
                    &spec,
                    preloaded,
                    ops_per_thread,
                    threads,
                    51,
                    false,
                );
                row.push(mops(r.mops()));
            }
            table.row(row);
        }
        table.print();
    }
    expectation(
        "HDNH scales best and wins at every thread count (paper: up to \
         1.6-6.9x on inserts, 1.9x/4.4x vs CCEH/LEVEL on search, 1.4x/4.3x \
         on the mix); PATH/LEVEL flatten earliest (coarse locks), CCEH \
         suffers from NVM lock traffic",
    );
}
