//! Figure 15: tail-latency CDF under YCSB-A (50 % read / 50 % update,
//! zipfian 0.99) at 16 threads, for LEVEL, CCEH and HDNH.
//!
//! High-contention case: skewed updates hammer the hot keys, so lock
//! granularity decides the tail. Prints the quantile table and a CDF series
//! per scheme (plot latency on the x axis, cumulative fraction on y).

use hdnh_bench::report::{banner, csv, expectation, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::{build, Scheme};
use hdnh_bench::{max_threads, scaled};
use hdnh_ycsb::{KeySpace, WorkloadSpec};

fn main() {
    let preloaded = scaled(50_000) as u64;
    let threads = 16.min(max_threads());
    let ops_per_thread = scaled(120_000) / threads;
    banner(
        "fig15",
        "tail latency CDF, YCSB-A, 16 threads",
        &format!("preload {preloaded}; {threads} threads x {ops_per_thread} ops; per-op latency recorded"),
    );

    let ks = KeySpace::default();
    let schemes = [Scheme::Level, Scheme::Cceh, Scheme::Hdnh];
    let mut quants = Table::new(&["scheme", "p50 us", "p90 us", "p99 us", "p99.9 us", "max us"]);
    let mut cdfs = Vec::new();
    for scheme in schemes {
        let idx = build(scheme, preloaded as usize);
        preload(idx.as_ref(), &ks, preloaded, 2);
        let r = run_workload(
            idx.as_ref(),
            &ks,
            &WorkloadSpec::ycsb_a(),
            preloaded,
            ops_per_thread,
            threads,
            61,
            true,
        );
        let h = r.hist.expect("latency requested");
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
        quants.row(vec![
            scheme.name().to_string(),
            us(h.quantile(0.5)),
            us(h.quantile(0.9)),
            us(h.quantile(0.99)),
            us(h.quantile(0.999)),
            us(h.max()),
        ]);
        cdfs.push((scheme.name(), h));
    }
    quants.print();

    if csv() {
        println!("scheme,latency_ns,cum_fraction");
    } else {
        println!("\n  CDF samples (latency_us cum_fraction), decimated:");
    }
    for (name, h) in &cdfs {
        let cdf = h.cdf();
        let step = (cdf.len() / 24).max(1);
        if !csv() {
            print!("  {name:>6}:");
        }
        for (i, (ns, f)) in cdf.iter().enumerate() {
            if i % step != 0 && *f < 0.999 {
                continue;
            }
            if csv() {
                println!("{name},{ns},{f:.5}");
            } else {
                print!(" {:.0}us@{:.0}%", *ns as f64 / 1000.0, f * 100.0);
            }
        }
        if !csv() {
            println!();
        }
    }
    expectation(
        "HDNH has the shortest tail; paper maxima: HDNH 19.2ms vs CCEH \
         56.8ms (2.96x) vs LEVEL 93.3ms (4.86x) — coarse locks under \
         contention stretch the CDF's tail right",
    );
}
