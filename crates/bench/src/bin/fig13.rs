//! Figure 13: single-thread throughput of PATH, LEVEL, CCEH and HDNH on
//! four microbenchmarks — insert, positive search, negative search, delete.
//!
//! Methodology mirrors §4.1 at reduced scale: preload 1/10 of the keys,
//! then run the op stream (the paper preloads 20 M and runs 180 M; the
//! 1:9 ratio is preserved).

use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::{build, Scheme};
use hdnh_bench::scaled;
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn main() {
    let preloaded = scaled(20_000) as u64;
    let ops = scaled(180_000);
    banner(
        "fig13",
        "single-thread performance (insert / pos. search / neg. search / delete)",
        &format!("preload {preloaded}, then {ops} ops of each kind"),
    );

    let ks = KeySpace::default();
    let mut table = Table::new(&["scheme", "insert", "pos search", "neg search", "delete"]);
    for scheme in Scheme::paper_set() {
        // Insert: preload then insert `ops` new records.
        let idx = build(scheme, (preloaded as usize) + ops);
        preload(idx.as_ref(), &ks, preloaded, 2);
        let r_ins = run_workload(
            idx.as_ref(),
            &ks,
            &WorkloadSpec::insert_only(),
            preloaded,
            ops,
            1,
            41,
            false,
        );

        // Search/delete: preload the full dataset, then run each op kind.
        let full = preloaded + ops as u64;
        let idx = build(scheme, full as usize);
        preload(idx.as_ref(), &ks, full, 2);
        let r_pos = run_workload(
            idx.as_ref(),
            &ks,
            &WorkloadSpec::search_only(Mix::Uniform),
            full,
            ops,
            1,
            42,
            false,
        );
        let r_neg = run_workload(
            idx.as_ref(),
            &ks,
            &WorkloadSpec::negative_search_only(),
            full,
            ops,
            1,
            43,
            false,
        );
        let r_del = run_workload(
            idx.as_ref(),
            &ks,
            &WorkloadSpec::delete_only(),
            full,
            ops,
            1,
            44,
            false,
        );

        table.row(vec![
            scheme.name().to_string(),
            mops(r_ins.mops()),
            mops(r_pos.mops()),
            mops(r_neg.mops()),
            mops(r_del.mops()),
        ]);
    }
    table.print();
    expectation(
        "HDNH wins every column; paper ratios vs CCEH/LEVEL: insert \
         1.9x/3.7x, positive search 1.57x/4.33x, negative search 2.2x/5.6x, \
         delete 1.7x/2.9x; PATH trails throughout",
    );
}
