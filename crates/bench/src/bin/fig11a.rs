//! Figure 11(a): HDNH single-thread insert and search throughput vs
//! segment size (256 B … 256 KB).
//!
//! Insert runs start from a minimal table so the segment size governs how
//! often (and how expensively) resizing interrupts the insert stream;
//! search runs measure probing on a preloaded table.

use hdnh::{Hdnh, HdnhParams, SyncMode};
use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::bench_nvm;
use hdnh_bench::scaled;
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn params(segment_bytes: usize) -> HdnhParams {
    HdnhParams::builder()
        .segment_bytes(segment_bytes)
        .initial_bottom_segments(1)
        .sync_mode(SyncMode::Background)
        .nvm(bench_nvm())
        .build()
        .unwrap()
}

fn main() {
    let inserts = scaled(150_000);
    let search_ops = scaled(150_000);
    banner(
        "fig11a",
        "HDNH throughput vs segment size (single thread)",
        &format!("{inserts} inserts from empty; {search_ops} positive searches on the loaded table"),
    );

    let ks = KeySpace::default();
    let mut table = Table::new(&["segment", "insert Mops", "search Mops", "resizes"]);
    for seg in [256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10] {
        let t = Hdnh::new(params(seg));
        let r_ins = run_workload(&t, &ks, &WorkloadSpec::insert_only(), 0, inserts, 1, 11, false);
        let resizes = t.resize_count();

        // Search on a table preloaded at the same segment size.
        let mut p = params(seg);
        // Size to the preload so search measures probing, not resizing, but
        // keep the configured segment size.
        let preloaded = scaled(100_000);
        let buckets_per_segment = seg / 256;
        let slots_per_segment = buckets_per_segment * 8;
        p.initial_bottom_segments = ((preloaded as f64 / 0.8 / (3 * slots_per_segment) as f64)
            .ceil() as usize)
            .max(1)
            .next_power_of_two();
        let t = Hdnh::new(p);
        preload(&t, &ks, preloaded as u64, 2);
        let r_srch = run_workload(
            &t,
            &ks,
            &WorkloadSpec::search_only(Mix::Uniform),
            preloaded as u64,
            search_ops,
            1,
            12,
            false,
        );

        let label = if seg >= 1024 {
            format!("{}KB", seg >> 10)
        } else {
            format!("{seg}B")
        };
        table.row(vec![
            label,
            mops(r_ins.mops()),
            mops(r_srch.mops()),
            resizes.to_string(),
        ]);
    }
    table.print();
    expectation(
        "insert throughput rises to a peak at 16KB then falls at 256KB \
         (large-segment resizes block longer); search flattens beyond 16KB",
    );
}
