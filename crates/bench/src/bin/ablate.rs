//! Ablation study (extension beyond the paper's figures): how much each
//! HDNH design decision contributes.
//!
//! Variants: full HDNH, no OCF fingerprints, no hot table, inline (non-
//! overlapped) hot-table writes, LRU policy. Measured on insert, skewed
//! positive search and negative search, with per-op NVM block reads —
//! making the "reduce NVM accesses" arguments of §3 directly visible.

use hdnh::{Hdnh, HdnhParams, HotPolicy, SyncMode};
use hdnh_bench::report::{banner, expectation, mops, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::schemes::{hdnh_params, Scheme};
use hdnh_bench::scaled;
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn variant(scheme: Scheme, capacity: usize) -> Hdnh {
    let p = match scheme {
        Scheme::Hdnh => hdnh_params(capacity),
        Scheme::HdnhNoOcf => HdnhParams {
            enable_ocf: false,
            ..hdnh_params(capacity)
        },
        Scheme::HdnhNoHot => HdnhParams {
            enable_hot_table: false,
            ..hdnh_params(capacity)
        },
        Scheme::HdnhInline => HdnhParams {
            sync_mode: SyncMode::Inline,
            ..hdnh_params(capacity)
        },
        Scheme::HdnhBackground => HdnhParams {
            sync_mode: SyncMode::Background,
            ..hdnh_params(capacity)
        },
        Scheme::HdnhLru => HdnhParams {
            hot_policy: HotPolicy::Lru,
            ..hdnh_params(capacity)
        },
        Scheme::HdnhOneChoice => HdnhParams {
            two_choice_segments: false,
            ..hdnh_params(capacity)
        },
        _ => unreachable!("ablation covers HDNH variants only"),
    };
    Hdnh::new(p)
}

fn main() {
    let preloaded = scaled(80_000) as u64;
    let ops = scaled(120_000);
    banner(
        "ablate",
        "HDNH design ablations (single thread)",
        &format!(
            "preload {preloaded}; {ops} ops per cell; blk-reads columns = \
             NVM media block reads per search op"
        ),
    );

    let variants = [
        Scheme::Hdnh,
        Scheme::HdnhNoOcf,
        Scheme::HdnhNoHot,
        Scheme::HdnhInline,
        Scheme::HdnhBackground,
        Scheme::HdnhLru,
        Scheme::HdnhOneChoice,
    ];

    let ks = KeySpace::default();
    let mut table = Table::new(&[
        "variant",
        "insert",
        "pos search (zipf .99)",
        "neg search",
        "blk reads/pos",
        "blk reads/neg",
    ]);
    for scheme in variants {
        let t = variant(scheme, preloaded as usize + ops);
        preload(&t, &ks, preloaded, 2);
        let r_ins = run_workload(&t, &ks, &WorkloadSpec::insert_only(), preloaded, ops, 1, 71, false);

        let t = variant(scheme, preloaded as usize);
        preload(&t, &ks, preloaded, 2);
        let before = t.nvm_stats();
        let r_pos = run_workload(
            &t,
            &ks,
            &WorkloadSpec::search_only(Mix::ScrambledZipfian { s: 0.99 }),
            preloaded,
            ops,
            1,
            72,
            false,
        );
        let mid = t.nvm_stats();
        let r_neg = run_workload(
            &t,
            &ks,
            &WorkloadSpec::negative_search_only(),
            preloaded,
            ops,
            1,
            73,
            false,
        );
        let after = t.nvm_stats();
        let pos_blocks = mid.since(&before).per_op(ops as u64).read_blocks;
        let neg_blocks = after.since(&mid).per_op(ops as u64).read_blocks;

        table.row(vec![
            scheme.name().to_string(),
            mops(r_ins.mops()),
            mops(r_pos.mops()),
            mops(r_neg.mops()),
            format!("{pos_blocks:.3}"),
            format!("{neg_blocks:.3}"),
        ]);
    }
    table.print();
    expectation(
        "full HDNH leads; -ocf inflates negative-search block reads by \
         orders of magnitude; -hot flattens skewed-search gains (blk \
         reads/pos ≈ 1); background sync-writes beat inline when cores \
         allow the overlap (and invert on small hosts); LRU trails RAFL \
         on the skewed search",
    );
}
