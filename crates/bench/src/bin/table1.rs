//! Table 1: HDNH recovery time (OCF rebuild / hot-table rebuild / total)
//! after a crash, across data sizes.
//!
//! The paper preloads 2 M / 20 M / 200 M records, powers off, and times
//! single-node recovery. We preload at 1/100 of those sizes by default
//! (scale with `HDNH_SCALE`), drop the DRAM structures via `into_pool`
//! (the power-off: only NVM survives), and time the real multi-threaded
//! rebuild scan. Crash-*consistency* (torn state) is exercised separately
//! by the strict-mode test suite; the timing here is the same either way.

use hdnh::{Hdnh, HdnhParams};
use hdnh_bench::report::{banner, expectation, Table};
use hdnh_bench::runner::preload;
use hdnh_bench::schemes::hdnh_params;
use hdnh_bench::scaled;
use hdnh_ycsb::KeySpace;

fn main() {
    let sizes = [scaled(20_000), scaled(200_000), scaled(2_000_000)];
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    banner(
        "table1",
        "recovery time vs data size",
        &format!(
            "sizes {sizes:?} (paper: 2M/20M/200M); power-off modeled by \
             dropping DRAM state, then recovery with {threads} scan threads"
        ),
    );

    let ks = KeySpace::default();
    let mut table = Table::new(&["data size", "OCF ms", "hot table ms", "HDNH total ms"]);
    for &n in &sizes {
        // Recovery scans are not about media latency (sequential, batched);
        // build without the latency model so the numbers isolate scan work.
        let params = HdnhParams {
            nvm: hdnh_nvm::NvmOptions::fast(),
            ..hdnh_params(n)
        };
        let t = Hdnh::new(params.clone());
        preload(&t, &ks, n as u64, threads);
        let pool = t.into_pool();
        let (recovered, timing) = Hdnh::recover_timed(params, pool, threads);
        assert_eq!(recovered.len(), n, "recovery lost records");
        table.row(vec![
            n.to_string(),
            format!("{:.1}", timing.ocf.as_secs_f64() * 1e3),
            format!("{:.1}", timing.hot.as_secs_f64() * 1e3),
            format!("{:.1}", timing.total.as_secs_f64() * 1e3),
        ]);
    }
    table.print();
    expectation(
        "recovery time grows ~linearly with data size and stays far below \
         the workload's execution time (paper: 8.3ms at 2M, 60.5ms at 20M, \
         435.1ms at 200M); hot-table rebuild dominates at scale",
    );

    // Extension: the paper's recovery is multi-threaded ("divide buckets
    // into independent batches"); sweep the scan-thread count at the middle
    // size to show the parallel speedup.
    let n = sizes[1];
    if !hdnh_bench::report::csv() {
        println!("\n  recovery scan-thread sweep at {n} records:");
    }
    let mut sweep = Table::new(&["threads", "HDNH total ms"]);
    for t in [1usize, 2, 4] {
        let params = HdnhParams {
            nvm: hdnh_nvm::NvmOptions::fast(),
            ..hdnh_params(n)
        };
        let table_inst = Hdnh::new(params.clone());
        preload(&table_inst, &ks, n as u64, threads);
        let pool = table_inst.into_pool();
        let (recovered, timing) = Hdnh::recover_timed(params, pool, t);
        assert_eq!(recovered.len(), n);
        sweep.row(vec![t.to_string(), format!("{:.1}", timing.total.as_secs_f64() * 1e3)]);
    }
    sweep.print();
    expectation("more scan threads shorten recovery until the core count caps it");
}
