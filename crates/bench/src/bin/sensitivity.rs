//! Latency-sensitivity sweep (extension): how the scheme comparison shifts
//! as the NVM/DRAM gap changes.
//!
//! The paper's results are premised on AEP's ~3× read-latency gap. Future
//! NVM parts may narrow or widen it; this sweep scales the injected AEP
//! profile (0.5× … 4×) and re-measures the fig-13 positive/negative search
//! cells. If the reproduction is mechanically sound, HDNH's advantage must
//! *grow* with the gap — its whole design is about dodging NVM reads — and
//! shrink toward parity as NVM approaches DRAM.

use hdnh::{Hdnh, HdnhParams, SyncMode};
use hdnh_baselines::{Cceh, CcehParams};
use hdnh_bench::report::{banner, expectation, Table};
use hdnh_bench::runner::{preload, run_workload};
use hdnh_bench::scaled;
use hdnh_nvm::{LatencyModel, NvmOptions};
use hdnh_ycsb::{KeySpace, Mix, WorkloadSpec};

fn nvm(scale: f64) -> NvmOptions {
    NvmOptions {
        latency: LatencyModel::aep_scaled(scale),
        ..NvmOptions::fast()
    }
}

fn main() {
    let preloaded = scaled(80_000) as u64;
    let ops = scaled(120_000);
    banner(
        "sensitivity",
        "HDNH advantage vs NVM latency gap (extension)",
        &format!(
            "preload {preloaded}; {ops} uniform positive searches per cell; \
             latency profile scaled 0.5x..4x of AEP"
        ),
    );

    let ks = KeySpace::default();
    let mut table = Table::new(&[
        "latency scale",
        "CCEH Mops",
        "HDNH Mops",
        "HDNH/CCEH",
    ]);
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let cceh = Cceh::new(CcehParams {
            nvm: nvm(scale),
            ..CcehParams::for_capacity(preloaded as usize)
        });
        preload(&cceh, &ks, preloaded, 2);
        let r_c = run_workload(
            &cceh,
            &ks,
            &WorkloadSpec::search_only(Mix::Uniform),
            preloaded,
            ops,
            1,
            81,
            false,
        );

        let hdnh = Hdnh::new(HdnhParams {
            nvm: nvm(scale),
            sync_mode: SyncMode::Inline,
            ..HdnhParams::for_capacity(preloaded as usize)
        });
        preload(&hdnh, &ks, preloaded, 2);
        let r_h = run_workload(
            &hdnh,
            &ks,
            &WorkloadSpec::search_only(Mix::Uniform),
            preloaded,
            ops,
            1,
            82,
            false,
        );

        table.row(vec![
            format!("{scale:.1}x"),
            format!("{:.3}", r_c.mops()),
            format!("{:.3}", r_h.mops()),
            format!("{:.2}x", r_h.mops() / r_c.mops()),
        ]);
    }
    table.print();
    expectation(
        "the HDNH/CCEH ratio grows monotonically with the latency scale: \
         the bigger the NVM/DRAM gap, the more each avoided media read is \
         worth (and vice versa as NVM approaches DRAM)",
    );
}
