//! Table/series printing shared by the figure binaries.
//!
//! Output format: a header naming the paper artifact, an aligned table of
//! the measured series, and (where the paper states one) the expected-shape
//! note the measurement should be checked against. `HDNH_CSV=1` switches to
//! machine-readable CSV.

/// Whether CSV output was requested.
pub fn csv() -> bool {
    std::env::var("HDNH_CSV").is_ok_and(|v| v == "1")
}

/// Prints the banner for one experiment.
pub fn banner(id: &str, title: &str, setup: &str) {
    if csv() {
        return;
    }
    println!("\n=== {id}: {title} ===");
    println!("    {setup}");
}

/// A simple aligned table writer.
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Renders to stdout (aligned text or CSV).
    pub fn print(&self) {
        if csv() {
            println!("{}", self.columns.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for r in &self.rows {
            for (w, cell) in widths.iter_mut().zip(r) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:>w$}"));
            }
            s
        };
        println!("  {}", line(&self.columns));
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for r in &self.rows {
            println!("  {}", line(r));
        }
    }
}

/// Prints the expected-shape note from the paper.
pub fn expectation(text: &str) {
    if !csv() {
        println!("  paper shape: {text}");
    }
}

/// Formats a throughput in Mops/s.
pub fn mops(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.print(); // visual only; assert no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn mops_formats() {
        assert_eq!(mops(1.23456), "1.235");
    }
}
