//! Workload execution: preload + timed multi-threaded op replay.
//!
//! Mirrors the paper's methodology (§4.1): keys/ops are generated before
//! timing; threads replay disjoint streams against one shared index; the
//! metric is aggregate throughput (and per-op latency when requested).

use std::sync::Barrier;
use std::time::Instant;

use hdnh_common::HashIndex;
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

use crate::hist::Histogram;

/// Outcome of one timed run.
pub struct RunResult {
    /// Operations executed.
    pub ops: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Latency histogram (present when requested).
    pub hist: Option<Histogram>,
}

impl RunResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.secs / 1e6
    }
}

/// Inserts ids `0..n` (values at version 0), in parallel.
pub fn preload(index: &dyn HashIndex, ks: &KeySpace, n: u64, threads: usize) {
    let threads = threads.max(1);
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let per = n.div_ceil(threads as u64);
                let (lo, hi) = (t * per, ((t + 1) * per).min(n));
                for id in lo..hi {
                    index
                        .insert(&ks.key(id), &ks.value(id, 0))
                        .expect("preload insert failed");
                }
            });
        }
    });
}

/// Executes one op against the index. Returns `true` if the outcome was
/// plausible (used by correctness-mode runs; benchmarks ignore it).
#[inline]
pub fn execute(index: &dyn HashIndex, ks: &KeySpace, op: &Op) -> bool {
    match op {
        Op::Read(id) => index.get(&ks.key(*id)).is_some(),
        Op::ReadAbsent(id) => index.get(&ks.negative_key(*id)).is_none(),
        Op::Insert(id) => index.insert(&ks.key(*id), &ks.value(*id, 0)).is_ok(),
        Op::Update(id, seq) => index.upsert(&ks.key(*id), &ks.value(*id, *seq)).is_ok(),
        Op::ReadModifyWrite(id, seq) => {
            let _ = index.get(&ks.key(*id));
            index.upsert(&ks.key(*id), &ks.value(*id, *seq)).is_ok()
        }
        Op::Delete(id) => index.remove(&ks.key(*id)),
    }
}

/// Replays per-thread op streams under timing.
pub fn run_streams(
    index: &dyn HashIndex,
    ks: &KeySpace,
    streams: &[Vec<Op>],
    record_latency: bool,
) -> RunResult {
    let threads = streams.len();
    let barrier = &Barrier::new(threads + 1);
    let total_ops: usize = streams.iter().map(Vec::len).sum();
    let mut hists: Vec<Histogram> = Vec::new();
    let mut start = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<Histogram>();
    std::thread::scope(|s| {
        for stream in streams {
            let tx = tx.clone();
            s.spawn(move || {
                let mut hist = record_latency.then(Histogram::new);
                barrier.wait();
                for op in stream {
                    if let Some(h) = hist.as_mut() {
                        let t0 = Instant::now();
                        execute(index, ks, op);
                        h.record(t0.elapsed().as_nanos() as u64);
                    } else {
                        execute(index, ks, op);
                    }
                }
                if let Some(h) = hist {
                    let _ = tx.send(h);
                }
            });
        }
        drop(tx);
        // Timer starts *before* releasing the barrier: if it started after,
        // a descheduled main thread could time a fraction of the run. The
        // barrier wake-up cost (~µs) is noise at benchmark durations.
        start = Instant::now();
        barrier.wait();
        // The scope joins all workers on exit; drain histograms meanwhile.
        if record_latency {
            while let Ok(h) = rx.recv() {
                hists.push(h);
            }
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let hist = record_latency.then(|| {
        let mut merged = Histogram::new();
        for h in &hists {
            merged.merge(h);
        }
        merged
    });
    RunResult {
        ops: total_ops,
        secs,
        hist,
    }
}

/// Convenience: generate disjoint per-thread streams for `spec` and run.
///
/// Each thread gets `ops_per_thread` operations; inserts take ids from
/// disjoint ranges above `preloaded`.
#[allow(clippy::too_many_arguments)] // flat knob list mirrors the bench CLI
pub fn run_workload(
    index: &dyn HashIndex,
    ks: &KeySpace,
    spec: &WorkloadSpec,
    preloaded: u64,
    ops_per_thread: usize,
    threads: usize,
    seed: u64,
    record_latency: bool,
) -> RunResult {
    let streams: Vec<Vec<Op>> = (0..threads as u64)
        .map(|t| {
            generate_ops(
                spec,
                preloaded,
                preloaded + t * ops_per_thread as u64,
                ops_per_thread,
                seed ^ (t.wrapping_mul(0x9E37_79B9)),
            )
        })
        .collect();
    run_streams(index, ks, &streams, record_latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh::{Hdnh, HdnhParams};
    use hdnh_ycsb::Mix;

    #[test]
    fn preload_then_read_workload() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(4096)
        .initial_bottom_segments(4)
        .build()
        .unwrap());
        let ks = KeySpace::default();
        preload(&t, &ks, 2_000, 2);
        assert_eq!(t.len(), 2_000);
        let r = run_workload(
            &t,
            &ks,
            &WorkloadSpec::search_only(Mix::Uniform),
            2_000,
            1_000,
            2,
            7,
            false,
        );
        assert_eq!(r.ops, 2_000);
        assert!(r.secs > 0.0);
        assert!(r.mops() > 0.0);
    }

    #[test]
    fn insert_workload_grows_table() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(4096)
        .initial_bottom_segments(4)
        .build()
        .unwrap());
        let ks = KeySpace::default();
        let r = run_workload(&t, &ks, &WorkloadSpec::insert_only(), 0, 500, 4, 3, false);
        assert_eq!(r.ops, 2_000);
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn latency_capture_produces_histogram() {
        let t = Hdnh::new(HdnhParams::default());
        let ks = KeySpace::default();
        preload(&t, &ks, 500, 1);
        let r = run_workload(
            &t,
            &ks,
            &WorkloadSpec::ycsb_a(),
            500,
            500,
            2,
            1,
            true,
        );
        let h = r.hist.expect("histogram requested");
        assert_eq!(h.count(), 1_000);
        assert!(h.quantile(0.5) > 0);
    }

    #[test]
    fn execute_validates_op_outcomes() {
        let t = Hdnh::new(HdnhParams::default());
        let ks = KeySpace::default();
        assert!(execute(&t, &ks, &Op::Insert(1)));
        assert!(execute(&t, &ks, &Op::Read(1)));
        assert!(execute(&t, &ks, &Op::ReadAbsent(1)));
        assert!(execute(&t, &ks, &Op::Update(1, 1)));
        assert!(execute(&t, &ks, &Op::ReadModifyWrite(1, 2)));
        assert!(execute(&t, &ks, &Op::Delete(1)));
        assert!(!execute(&t, &ks, &Op::Read(1)), "deleted key still readable");
    }
}
