//! Uniform scheme constructors for the comparison benchmarks.
//!
//! Every scheme is sized for the workload's record count (so search
//! benchmarks measure probing, not resizing) and wired to the same
//! [`LatencyModel`](hdnh_nvm::LatencyModel): AEP-like by default,
//! disabled with `HDNH_NO_LATENCY`.

use hdnh::{Hdnh, HdnhParams, HotPolicy, SyncMode};
use hdnh_baselines::{Cceh, CcehParams, LevelHash, LevelParams, PathHash, PathParams};
use hdnh_common::HashIndex;
use hdnh_nvm::NvmOptions;

use crate::latency_enabled;

/// The scheme axis used by the comparison figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Path hashing (static, coarse lock).
    Path,
    /// Level hashing (bucket locks, stop-the-world resize).
    Level,
    /// CCEH (segment locks in NVM, splits).
    Cceh,
    /// HDNH as evaluated (RAFL hot table, OCF, background sync writes).
    Hdnh,
    /// HDNH with the LRU hot-table policy (figure 12).
    HdnhLru,
    /// HDNH without the hot table (ablation).
    HdnhNoHot,
    /// HDNH without OCF fingerprint filtering (ablation).
    HdnhNoOcf,
    /// HDNH with inline (non-overlapped) hot-table writes (ablation).
    HdnhInline,
    /// HDNH with background (overlapped) hot-table writes forced on
    /// (ablation; the default picks by core count).
    HdnhBackground,
    /// HDNH probing a single segment choice per level (ablation of the
    /// "2-cuckoo strategy").
    HdnhOneChoice,
}

impl Scheme {
    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Path => "PATH",
            Scheme::Level => "LEVEL",
            Scheme::Cceh => "CCEH",
            Scheme::Hdnh => "HDNH",
            Scheme::HdnhLru => "HDNH(LRU)",
            Scheme::HdnhNoHot => "HDNH(-hot)",
            Scheme::HdnhNoOcf => "HDNH(-ocf)",
            Scheme::HdnhInline => "HDNH(inline)",
            Scheme::HdnhBackground => "HDNH(bg)",
            Scheme::HdnhOneChoice => "HDNH(1-choice)",
        }
    }

    /// The paper's four-way comparison set.
    pub fn paper_set() -> [Scheme; 4] {
        [Scheme::Path, Scheme::Level, Scheme::Cceh, Scheme::Hdnh]
    }
}

/// NVM options for benchmarks (honours `HDNH_NO_LATENCY`).
pub fn bench_nvm() -> NvmOptions {
    if latency_enabled() {
        NvmOptions::bench()
    } else {
        NvmOptions::fast()
    }
}

/// HDNH parameters sized for `capacity` records, benchmark wiring.
///
/// The synchronous-write mechanism (§3.4) overlaps the hot-table write with
/// the NVM write on a *separate core*; on hosts with too few cores the
/// foreground and background threads fight for the same CPU and the overlap
/// inverts. Like a deployment would, default to background writers only
/// when the host has cores to spare (the paper's testbed had 32); the
/// ablation binary measures both modes explicitly.
pub fn hdnh_params(capacity: usize) -> HdnhParams {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    HdnhParams {
        nvm: bench_nvm(),
        sync_mode: if cores >= 4 { SyncMode::Background } else { SyncMode::Inline },
        background_writers: 2,
        ..HdnhParams::for_capacity(capacity)
    }
}

/// Builds a scheme sized for `capacity` records (plus headroom for
/// insert-heavy runs, which grow dynamic schemes anyway).
pub fn build(scheme: Scheme, capacity: usize) -> Box<dyn HashIndex> {
    match scheme {
        Scheme::Path => {
            // Static: sized to the workload (modest headroom), like the
            // paper's setup — PATH runs at a realistic load factor.
            let mut p = PathParams::for_capacity(capacity + capacity / 10);
            p.nvm = bench_nvm();
            Box::new(PathHash::new(p))
        }
        Scheme::Level => {
            let mut p = LevelParams::for_capacity(capacity);
            p.nvm = bench_nvm();
            Box::new(LevelHash::new(p))
        }
        Scheme::Cceh => {
            let mut p = CcehParams::for_capacity(capacity);
            p.nvm = bench_nvm();
            Box::new(Cceh::new(p))
        }
        Scheme::Hdnh => Box::new(Hdnh::new(hdnh_params(capacity))),
        Scheme::HdnhLru => Box::new(Hdnh::new(HdnhParams {
            hot_policy: HotPolicy::Lru,
            ..hdnh_params(capacity)
        })),
        Scheme::HdnhNoHot => Box::new(Hdnh::new(HdnhParams {
            enable_hot_table: false,
            ..hdnh_params(capacity)
        })),
        Scheme::HdnhNoOcf => Box::new(Hdnh::new(HdnhParams {
            enable_ocf: false,
            ..hdnh_params(capacity)
        })),
        Scheme::HdnhInline => Box::new(Hdnh::new(HdnhParams {
            sync_mode: SyncMode::Inline,
            ..hdnh_params(capacity)
        })),
        Scheme::HdnhBackground => Box::new(Hdnh::new(HdnhParams {
            sync_mode: SyncMode::Background,
            ..hdnh_params(capacity)
        })),
        Scheme::HdnhOneChoice => Box::new(Hdnh::new(HdnhParams {
            two_choice_segments: false,
            ..hdnh_params(capacity)
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_common::{Key, Value};

    #[test]
    fn every_scheme_builds_and_works() {
        for scheme in [
            Scheme::Path,
            Scheme::Level,
            Scheme::Cceh,
            Scheme::Hdnh,
            Scheme::HdnhLru,
            Scheme::HdnhNoHot,
            Scheme::HdnhNoOcf,
            Scheme::HdnhInline,
            Scheme::HdnhBackground,
            Scheme::HdnhOneChoice,
        ] {
            let idx = build(scheme, 10_000);
            for i in 0..100u64 {
                idx.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
            }
            for i in 0..100u64 {
                assert_eq!(
                    idx.get(&Key::from_u64(i)).unwrap().as_u64(),
                    i,
                    "{}",
                    scheme.name()
                );
            }
            assert_eq!(idx.len(), 100);
        }
    }

    #[test]
    fn names_match_paper_legends() {
        let names: Vec<&str> = Scheme::paper_set().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["PATH", "LEVEL", "CCEH", "HDNH"]);
    }
}
