//! Minimal JSON reader for the bench artifacts.
//!
//! The workspace has no serde (external crates are local shims only), and
//! the only JSON this crate must *read* is JSON this workspace *writes* —
//! `BENCH_ops.json`, `BENCH_net.json`, `BENCH_scale.json` and the
//! committed baselines derived from them. This is nonetheless a complete
//! little parser (objects, arrays, strings with escapes, numbers, bools,
//! null) so a hand-edited baseline can't silently half-parse.

use std::fmt;

/// A parsed JSON value. Numbers are `f64` — every numeric field in the
/// bench artifacts (counts, seconds, Mops, nanoseconds) fits without a
/// meaningful loss at the precision the comparisons use.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved (keys in bench artifacts are
    /// unique, so lookup is a linear scan).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(p.err("trailing garbage after document"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup: `"workloads.a.mops"`. Array indices are
    /// numeric segments: `"sweep.1.threads"`.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Json::Obj(_) => cur.get(seg)?,
                Json::Arr(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object members, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs never appear in our artifacts;
                            // map them to the replacement char rather than
                            // rejecting the document.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are trustworthy).
                    let s = &self.b[self.i..];
                    let ch_len = match s[0] {
                        c if c < 0x80 => 1,
                        c if c >= 0xF0 => 4,
                        c if c >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                    self.i += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_benches_emit() {
        let doc = r#"{"bench":"ops","threads":2,"workloads":{"a":{"mops":1.5,"secs":0.003},
            "c":{"mops":4.6226,"secs":1e-3}},"sweep":[{"threads":1},{"threads":2}],
            "ok":true,"nothing":null,"neg":-7}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.path("workloads.a.mops").unwrap().as_f64(), Some(1.5));
        assert_eq!(j.path("workloads.c.secs").unwrap().as_f64(), Some(1e-3));
        assert_eq!(j.path("sweep.1.threads").unwrap().as_f64(), Some(2.0));
        assert_eq!(j.get("bench").unwrap().as_str(), Some("ops"));
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(j.get("nothing"), Some(&Json::Null));
        assert_eq!(j.get("neg").unwrap().as_f64(), Some(-7.0));
        assert_eq!(j.path("workloads.z.mops"), None);
    }

    #[test]
    fn parses_strings_with_escapes() {
        let j = Json::parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn real_artifacts_round_trip_through_the_parser() {
        // The committed scale artifact, verbatim, must parse.
        let text = include_str!("../../../BENCH_scale.json");
        let j = Json::parse(text.trim()).unwrap();
        assert_eq!(j.get("bench").unwrap().as_str(), Some("scale"));
        assert!(j.get("sweep").unwrap().as_arr().unwrap().len() >= 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "{\"a\":00x}",
            "\"unterminated",
            "{\"a\":nul}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
