//! Real `kill -9` durability harness.
//!
//! Spawns the actual `hdnh-cli serve --pool <dir>` binary, fills it over
//! RESP, SIGKILLs it at a random point mid-write-storm, restarts it on the
//! same pool directory, and checks that every *acknowledged* write is still
//! present with the right value and that a scrub finds zero checksum
//! failures. Repeats for `CYCLES` kill points, then finishes with one
//! graceful shutdown and a library-level reopen that must see a clean pool.
//!
//! The durability claim under test is exactly the pool backend's contract:
//! a `+OK` means the record reached the `MAP_SHARED` mapping, which a dead
//! process cannot un-write (the kernel owns the dirty pages). Writes sent
//! but not yet acknowledged may or may not have landed — both are legal.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hdnh_server::{Reply, RespClient};

const CYCLES: u32 = 20;
const CAPACITY: &str = "50000";
const PIPELINE: usize = 32;

fn value_for(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)
}

/// Deterministic pseudo-random kill delay in milliseconds (no external
/// randomness: reproducible per cycle).
fn kill_delay_ms(cycle: u32) -> u64 {
    let mut x = 0x5DEE_CE66u64 ^ u64::from(cycle).wrapping_mul(0x9E37_79B9);
    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    2 + (x >> 33) % 50
}

struct Server {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawns `hdnh-cli serve 127.0.0.1:0 --pool <dir>` and waits for the
/// listening banner to learn the bound port.
fn spawn_serve(pool: &Path) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hdnh-cli"))
        .args([
            "serve",
            "127.0.0.1:0",
            "--capacity",
            CAPACITY,
            "--pool",
            pool.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn hdnh-cli serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut addr = None;
    let mut line = String::new();
    while stdout.read_line(&mut line).expect("read server stdout") > 0 {
        if let Some(rest) = line.trim().strip_prefix("hdnh-server listening on ") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.unwrap_or_else(|| {
        let _ = child.kill();
        panic!("server exited without printing the listening banner");
    });
    Server { child, addr, stdout }
}

fn connect(addr: &str) -> RespClient {
    let c = RespClient::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    c
}

/// Checks every previously acknowledged key and a clean scrub.
fn verify_acked(c: &mut RespClient, acked: &[u64], cycle: u32) {
    let mut i = 0;
    while i < acked.len() {
        let burst = PIPELINE.min(acked.len() - i);
        for k in &acked[i..i + burst] {
            c.cmd(&[b"GET", k.to_string().as_bytes()]);
        }
        c.flush().expect("verify flush");
        for k in &acked[i..i + burst] {
            let got = c.read_reply().expect("verify reply").as_u64();
            assert_eq!(
                got,
                Some(value_for(*k)),
                "cycle {cycle}: acked key {k} lost or corrupted after kill -9 (got {got:?})"
            );
        }
        i += burst;
    }
    match c.call(&[b"SCRUB"]).expect("scrub") {
        Reply::Bulk(b) => {
            let json = String::from_utf8_lossy(&b).to_string();
            assert!(
                json.contains("\"detected\":0"),
                "cycle {cycle}: scrub found corruption after kill -9: {json}"
            );
        }
        other => panic!("cycle {cycle}: unexpected SCRUB reply {other:?}"),
    }
}

/// Pipelined SET storm until the connection dies (the killer thread
/// SIGKILLs the server at a pseudo-random instant). Returns the keys whose
/// `+OK` was read before the crash — the durable set.
fn storm_until_killed(c: &mut RespClient, first_key: u64, pid: u32, delay: Duration) -> Vec<u64> {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGKILL: i32 = 9;
    let killer = std::thread::spawn(move || {
        std::thread::sleep(delay);
        unsafe { kill(pid as i32, SIGKILL) };
    });

    let mut acked = Vec::new();
    let mut next = first_key;
    'storm: loop {
        let burst_base = next;
        for _ in 0..PIPELINE {
            c.cmd(&[
                b"SET",
                next.to_string().as_bytes(),
                value_for(next).to_string().as_bytes(),
            ]);
            next += 1;
        }
        if c.flush().is_err() {
            break;
        }
        for i in 0..PIPELINE as u64 {
            match c.read_reply() {
                Ok(r) if r.is_ok() => acked.push(burst_base + i),
                // An -IO here would mean the backend recorded a flush
                // fault; on a healthy filesystem that is a test failure.
                Ok(other) => panic!("storm SET rejected: {other:?}"),
                Err(_) => break 'storm, // killed mid-burst
            }
        }
    }
    killer.join().expect("killer thread");
    acked
}

/// The acceptance-criterion case spelled out end to end: a 64 KiB value
/// survives SET → SIGKILL → recovery → GET byte-identical, and the media
/// scrubs clean afterwards.
#[test]
fn large_value_survives_sigkill() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let pool = tmp_pool("large");
    let value: Vec<u8> = (0..64 * 1024).map(|i| (i * 13 % 251) as u8).collect();

    let mut server = spawn_serve(&pool);
    let mut c = connect(&server.addr);
    assert!(
        matches!(c.call(&[b"SET", b"7", &value]).expect("set"), Reply::Simple(ref s) if s == "OK")
    );
    unsafe { kill(server.child.id() as i32, 9) };
    server.child.wait().expect("reap killed server");

    let mut server = spawn_serve(&pool);
    let mut c = connect(&server.addr);
    match c.call(&[b"GET", b"7"]).expect("get") {
        Reply::Bulk(b) => assert_eq!(b, value, "64 KiB value not byte-identical after kill -9"),
        other => panic!("unexpected GET reply {other:?}"),
    }
    match c.call(&[b"SCRUB"]).expect("scrub") {
        Reply::Bulk(b) => {
            let json = String::from_utf8_lossy(&b).to_string();
            assert!(json.contains("\"detected\":0"), "scrub found corruption: {json}");
        }
        other => panic!("unexpected SCRUB reply {other:?}"),
    }
    assert!(
        matches!(c.call(&[b"SHUTDOWN"]).expect("shutdown"), Reply::Simple(ref s) if s == "OK")
    );
    drop(c);
    server.child.wait().expect("graceful exit");
    let _ = std::fs::remove_dir_all(&pool);
}

fn tmp_pool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdnh-kill-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn acked_writes_survive_twenty_sigkills() {
    let pool = tmp_pool("storm");
    let mut acked: Vec<u64> = Vec::new();
    let mut next_key = 0u64;

    for cycle in 0..CYCLES {
        let mut server = spawn_serve(&pool);
        let mut c = connect(&server.addr);

        // Everything acknowledged before any earlier kill must still be
        // there, byte-exact, and the media must scrub clean.
        verify_acked(&mut c, &acked, cycle);

        let pid = server.child.id();
        let delay = Duration::from_millis(kill_delay_ms(cycle));
        let new = storm_until_killed(&mut c, next_key, pid, delay);
        next_key = new.last().map(|k| k + 1).unwrap_or(next_key);
        acked.extend(new);

        server.child.wait().expect("reap killed server");
    }
    assert!(!acked.is_empty(), "no write was ever acknowledged — harness broken");

    // Final restart: verify, then shut down gracefully and confirm the
    // pool is marked clean.
    let mut server = spawn_serve(&pool);
    let mut c = connect(&server.addr);
    verify_acked(&mut c, &acked, CYCLES);
    assert!(matches!(c.call(&[b"SHUTDOWN"]).expect("shutdown"), Reply::Simple(s) if s == "OK"));
    drop(c);
    let status = server.child.wait().expect("wait for graceful exit");
    assert!(status.success(), "graceful serve exit failed: {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server.stdout, &mut rest).expect("drain stdout");
    assert!(rest.contains("pool marked clean"), "missing clean-close line: {rest}");

    // Library-level reopen must see the clean flag and every record.
    let params = hdnh::HdnhParams::builder()
        .capacity(CAPACITY.parse().unwrap())
        .build()
        .unwrap();
    let (table, report) = hdnh::Hdnh::open_pool(params, &pool, 2).expect("reopen pool");
    assert!(report.was_clean, "graceful shutdown did not mark the pool clean");
    for k in &acked {
        let v = table.get_bytes(&hdnh_common::Key::from_u64(*k)).unwrap();
        assert_eq!(
            v,
            Some(value_for(*k).to_string().into_bytes()),
            "key {k} lost after clean close"
        );
    }
    table.close_pool().expect("close pool");
    let _ = std::fs::remove_dir_all(&pool);
}
