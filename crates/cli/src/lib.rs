//! A small command shell around an HDNH table.
//!
//! The parser and execution engine live in the library so they are unit
//! testable; the `hdnh-cli` binary is a thin stdin loop. Intended uses:
//! poking at the data structure interactively, scripting smoke tests
//! (`echo "fill 1000\ninfo" | hdnh-cli`), and demonstrating the
//! crash/recover lifecycle without writing Rust.
//!
//! ```text
//! > insert 1 42
//! ok
//! > get 1
//! 42
//! > fill 10000
//! inserted 10000 records (ids 0..10000)
//! > workload a 50000
//! YCSB-A: 50000 ops in 18.3 ms (2.73 Mops/s)
//! > crash 7
//! crashed (1234 words dropped), recovered 10001 records
//! ```


#![warn(missing_docs)]
pub mod command;
pub mod engine;

pub use command::{parse, Command};
pub use engine::{Engine, EngineConfig};
