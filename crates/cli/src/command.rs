//! Command grammar and parser.

use std::fmt;

/// One shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `insert <key> <value>` — insert a new record.
    Insert(u64, u64),
    /// `get <key>` — point lookup.
    Get(u64),
    /// `exists <key>` — membership probe (no value printed).
    Exists(u64),
    /// `mget <key> <key> ...` — batched point lookups in argument order.
    MGet(Vec<u64>),
    /// `update <key> <value>` — replace an existing record's value.
    Update(u64, u64),
    /// `delete <key>` — remove a record.
    Delete(u64),
    /// `fill <n>` — bulk-insert ids `0..n` from the key space.
    Fill(u64),
    /// `workload <a|b|c|f> <ops>` — run a YCSB mix against the table.
    Workload(char, usize),
    /// `stats [delta|reset]` — NVM media counters (see [`StatsMode`]).
    Stats(StatsMode),
    /// `metrics [...]` — hdnh-obs registry exposition (see [`MetricsMode`]).
    Metrics(MetricsMode),
    /// `trace [...]` — flight-recorder timeline (see [`TraceMode`]).
    Trace(TraceMode),
    /// `info` — table geometry, length, load factor, footprints.
    Info,
    /// `verify` — full integrity audit.
    Verify,
    /// `scrub` — checksum-verify every live record, repairing from the hot
    /// table or quarantining damaged slots.
    Scrub,
    /// `vlog` — value-log occupancy: segments, used/garbage/live bytes.
    Vlog,
    /// `compact` — evacuate and retire garbage-carrying value-log segments.
    Compact,
    /// `crash <seed>` — simulate power failure + recovery (strict mode).
    Crash(u64),
    /// `faultrun [...]` — crash-point injection matrix (see [`FaultRunMode`]).
    FaultRun(FaultRunMode),
    /// `backup <dir>` — crash-consistent snapshot of a pool-backed table.
    Backup(String),
    /// `restore <snapshot-dir> <dest-dir>` — verify a snapshot's CRC
    /// manifest, copy it into a fresh pool directory, and open it.
    Restore(String, String),
    /// `record <file> <a|b|c|f> <ops>` — generate a YCSB stream and save it
    /// as a binary trace.
    Record(String, char, usize),
    /// `replay <file>` — replay a saved trace against the table.
    Replay(String),
    /// `help`.
    Help,
    /// `quit` / `exit`.
    Quit,
}

/// What `stats` should print.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsMode {
    /// Counters since process start.
    Absolute,
    /// Counters since the last `stats reset`.
    Delta,
    /// Move the delta baseline to now (prints nothing else).
    Reset,
}

/// Output format for `metrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricsFormat {
    /// Prometheus text followed by the one-line JSON document.
    Both,
    /// One-line JSON only.
    Json,
    /// Prometheus text only.
    Prom,
}

/// What `metrics` should do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricsMode {
    /// Print the registry (optionally as a delta since the last
    /// `metrics reset`).
    Show {
        /// Which exposition format(s) to print.
        format: MetricsFormat,
        /// Subtract the baseline captured by the last `metrics reset`.
        delta: bool,
    },
    /// Move the delta baseline to now.
    Reset,
}

/// What `trace` should do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceMode {
    /// Dump the merged flight-recorder timeline as JSON.
    Dump,
    /// Clear every ring buffer.
    Reset,
    /// Arm (or with 0, disarm) the slow-op/slow-command thresholds, in
    /// microseconds; slower operations leave exemplars in the recorder.
    Slow(u64),
}

/// What `faultrun` should execute.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultRunMode {
    /// The full matrix: every mix, site, hit sample and crash seed, plus
    /// crashes injected into recovery itself.
    Full,
    /// Bounded smoke sweep (one seed, no recovery-phase injection).
    Quick,
    /// Recording only: list every crash site with its hit counts per mix.
    Sites,
    /// Replay one case from its reproduction tuple
    /// `mix:site:hit:seed[:recovery_site:recovery_hit]`.
    Repro(String),
}

/// Parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn int(tok: Option<&str>, what: &str) -> Result<u64, ParseError> {
    tok.ok_or_else(|| ParseError(format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError(format!("{what} must be an unsigned integer")))
}

/// Parses a workload letter token into its canonical lowercase char.
fn mix_letter(tok: Option<&str>) -> Result<char, ParseError> {
    let mix = tok
        .ok_or_else(|| ParseError("missing workload letter (a/b/c/f)".into()))?
        .to_ascii_lowercase();
    match mix.as_str() {
        "a" => Ok('a'),
        "b" => Ok('b'),
        "c" => Ok('c'),
        "f" => Ok('f'),
        other => Err(ParseError(format!("unknown workload '{other}'"))),
    }
}

/// Parses one line. Empty/comment lines return `Ok(None)`.
pub fn parse(line: &str) -> Result<Option<Command>, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut toks = line.split_whitespace();
    let cmd = toks
        .next()
        .ok_or_else(|| ParseError("empty command".into()))?
        .to_ascii_lowercase();
    let parsed = match cmd.as_str() {
        "insert" | "put" => Command::Insert(int(toks.next(), "key")?, int(toks.next(), "value")?),
        "get" | "read" => Command::Get(int(toks.next(), "key")?),
        "exists" => Command::Exists(int(toks.next(), "key")?),
        "mget" => {
            let mut keys = Vec::new();
            for tok in toks.by_ref() {
                keys.push(int(Some(tok), "key")?);
            }
            if keys.is_empty() {
                return Err(ParseError("mget needs at least one key".into()));
            }
            Command::MGet(keys)
        }
        "update" | "set" => Command::Update(int(toks.next(), "key")?, int(toks.next(), "value")?),
        "delete" | "del" | "remove" => Command::Delete(int(toks.next(), "key")?),
        "fill" | "load" => Command::Fill(int(toks.next(), "count")?),
        "workload" | "ycsb" => {
            let mix = mix_letter(toks.next())?;
            Command::Workload(mix, int(toks.next(), "op count")? as usize)
        }
        "stats" => {
            let mode = match toks.next() {
                None => StatsMode::Absolute,
                Some("delta") => StatsMode::Delta,
                Some("reset") => StatsMode::Reset,
                Some(other) => {
                    return Err(ParseError(format!(
                        "unknown stats mode '{other}' (delta|reset)"
                    )))
                }
            };
            Command::Stats(mode)
        }
        "metrics" => {
            let mut format = MetricsFormat::Both;
            let mut delta = false;
            let mut reset = false;
            for tok in toks.by_ref() {
                match tok {
                    "json" => format = MetricsFormat::Json,
                    "prom" | "prometheus" => format = MetricsFormat::Prom,
                    "delta" => delta = true,
                    "reset" => reset = true,
                    other => {
                        return Err(ParseError(format!(
                            "unknown metrics argument '{other}' (json|prom|delta|reset)"
                        )))
                    }
                }
            }
            if reset && (delta || format != MetricsFormat::Both) {
                return Err(ParseError("'metrics reset' takes no other arguments".into()));
            }
            Command::Metrics(if reset {
                MetricsMode::Reset
            } else {
                MetricsMode::Show { format, delta }
            })
        }
        "trace" => {
            let mode = match toks.next() {
                None => TraceMode::Dump,
                Some("reset") => TraceMode::Reset,
                Some("slow") => TraceMode::Slow(int(toks.next(), "threshold (µs)")?),
                Some(other) => {
                    return Err(ParseError(format!(
                        "unknown trace mode '{other}' (reset|slow <us>)"
                    )))
                }
            };
            Command::Trace(mode)
        }
        "info" => Command::Info,
        "verify" | "check" => Command::Verify,
        "scrub" => Command::Scrub,
        "vlog" => Command::Vlog,
        "compact" | "gc" => Command::Compact,
        "crash" => Command::Crash(int(toks.next(), "seed")?),
        "faultrun" => {
            let mode = match toks.next() {
                None | Some("full") => FaultRunMode::Full,
                Some("quick") => FaultRunMode::Quick,
                Some("sites") => FaultRunMode::Sites,
                Some("repro") => FaultRunMode::Repro(
                    toks.next()
                        .ok_or_else(|| {
                            ParseError(
                                "missing reproduction tuple mix:site:hit:seed[:rsite:rhit]".into(),
                            )
                        })?
                        .to_string(),
                ),
                Some(other) => {
                    return Err(ParseError(format!(
                        "unknown faultrun mode '{other}' (full|quick|sites|repro)"
                    )))
                }
            };
            Command::FaultRun(mode)
        }
        "backup" => Command::Backup(
            toks.next()
                .ok_or_else(|| ParseError("missing snapshot directory".into()))?
                .to_string(),
        ),
        "restore" => Command::Restore(
            toks.next()
                .ok_or_else(|| ParseError("missing snapshot directory".into()))?
                .to_string(),
            toks.next()
                .ok_or_else(|| ParseError("missing destination directory".into()))?
                .to_string(),
        ),
        "record" => {
            let file = toks
                .next()
                .ok_or_else(|| ParseError("missing trace file path".into()))?
                .to_string();
            let mix = mix_letter(toks.next())?;
            Command::Record(file, mix, int(toks.next(), "op count")? as usize)
        }
        "replay" => Command::Replay(
            toks.next()
                .ok_or_else(|| ParseError("missing trace file path".into()))?
                .to_string(),
        ),
        "help" | "?" => Command::Help,
        "quit" | "exit" | "q" => Command::Quit,
        other => return Err(ParseError(format!("unknown command '{other}' (try 'help')"))),
    };
    if let Some(extra) = toks.next() {
        return Err(ParseError(format!("unexpected trailing argument '{extra}'")));
    }
    Ok(Some(parsed))
}

/// The help text shown by `help`.
pub const HELP: &str = "\
commands:
  insert <key> <value>    insert a new record (u64 key/value)
  get <key>               point lookup
  exists <key>            membership probe (prints 1 or 0)
  mget <key> <key> ...    batched point lookups in argument order
  update <key> <value>    replace an existing record's value
  delete <key>            remove a record
  fill <n>                bulk-insert ids 0..n
  workload <a|b|c|f> <n>  run n ops of a YCSB mix
  stats [delta|reset]     NVM media counters (absolute, since-reset, or
                          move the baseline)
  metrics [json|prom] [delta]  hdnh-obs registry: per-op latency histograms,
                          event counters, derived rates, phase spans
  metrics reset           move the metrics delta baseline
  trace                   dump the flight-recorder timeline as JSON
  trace slow <us>         record ops/commands slower than <us> µs (0 = off)
  trace reset             clear the flight-recorder rings
  info                    table geometry and occupancy
  verify                  per-invariant integrity audit
  scrub                   checksum-verify all live records; repair or
                          quarantine damaged slots
  vlog                    value-log occupancy (segments, used/garbage bytes)
  compact                 evacuate and retire garbage-carrying value-log
                          segments (readers never block)
  crash <seed>            simulate power failure + recovery (strict mode)
  faultrun [mode]         crash-point injection matrix; modes: full (default),
                          quick, sites, repro <mix:site:hit:seed[:rsite:rhit]>
  backup <dir>            crash-consistent snapshot (pool-backed tables only)
  restore <snap> <dest>   verify a snapshot's manifest, copy it into a fresh
                          pool directory and open it there
  record <file> <mix> <n> save a YCSB op stream as a binary trace
  replay <file>           replay a saved trace against the table
  help                    this text
  quit                    exit";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_crud() {
        assert_eq!(parse("insert 1 2").unwrap(), Some(Command::Insert(1, 2)));
        assert_eq!(parse("get 7").unwrap(), Some(Command::Get(7)));
        assert_eq!(parse("UPDATE 3 4").unwrap(), Some(Command::Update(3, 4)));
        assert_eq!(parse("del 9").unwrap(), Some(Command::Delete(9)));
    }

    #[test]
    fn parses_exists_and_mget() {
        assert_eq!(parse("exists 5").unwrap(), Some(Command::Exists(5)));
        assert_eq!(parse("EXISTS 0").unwrap(), Some(Command::Exists(0)));
        assert!(parse("exists").is_err());
        assert!(parse("exists 1 2").is_err());
        assert!(parse("exists x").is_err());
        assert_eq!(parse("mget 1").unwrap(), Some(Command::MGet(vec![1])));
        assert_eq!(
            parse("mget 3 1 4 1 5").unwrap(),
            Some(Command::MGet(vec![3, 1, 4, 1, 5]))
        );
        assert!(parse("mget").is_err());
        assert!(parse("mget 1 two 3").is_err());
    }

    #[test]
    fn rejects_nothing_silently() {
        // The first-token path is a typed error, never a panic, even for
        // exotic whitespace-only inputs the trim above normally absorbs.
        assert_eq!(parse("\t \u{a0}#c").unwrap_or(None), None);
    }

    #[test]
    fn parses_bulk_and_workload() {
        assert_eq!(parse("fill 1000").unwrap(), Some(Command::Fill(1000)));
        assert_eq!(parse("workload a 500").unwrap(), Some(Command::Workload('a', 500)));
        assert_eq!(parse("ycsb C 10").unwrap(), Some(Command::Workload('c', 10)));
    }

    #[test]
    fn parses_admin() {
        assert_eq!(parse("stats").unwrap(), Some(Command::Stats(StatsMode::Absolute)));
        assert_eq!(parse("info").unwrap(), Some(Command::Info));
        assert_eq!(parse("verify").unwrap(), Some(Command::Verify));
        assert_eq!(parse("scrub").unwrap(), Some(Command::Scrub));
        assert!(parse("scrub extra").is_err());
        assert_eq!(parse("vlog").unwrap(), Some(Command::Vlog));
        assert_eq!(parse("compact").unwrap(), Some(Command::Compact));
        assert_eq!(parse("GC").unwrap(), Some(Command::Compact));
        assert!(parse("compact now").is_err());
        assert_eq!(parse("crash 42").unwrap(), Some(Command::Crash(42)));
        assert_eq!(parse("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse("?").unwrap(), Some(Command::Help));
    }

    #[test]
    fn parses_faultrun() {
        assert_eq!(
            parse("faultrun").unwrap(),
            Some(Command::FaultRun(FaultRunMode::Full))
        );
        assert_eq!(
            parse("faultrun quick").unwrap(),
            Some(Command::FaultRun(FaultRunMode::Quick))
        );
        assert_eq!(
            parse("faultrun sites").unwrap(),
            Some(Command::FaultRun(FaultRunMode::Sites))
        );
        assert_eq!(
            parse("faultrun repro churn:insert.published:3:1").unwrap(),
            Some(Command::FaultRun(FaultRunMode::Repro(
                "churn:insert.published:3:1".into()
            )))
        );
        assert!(parse("faultrun bogus").is_err());
        assert!(parse("faultrun repro").is_err());
    }

    #[test]
    fn parses_stats_modes() {
        assert_eq!(
            parse("stats delta").unwrap(),
            Some(Command::Stats(StatsMode::Delta))
        );
        assert_eq!(
            parse("stats reset").unwrap(),
            Some(Command::Stats(StatsMode::Reset))
        );
        assert!(parse("stats bogus").is_err());
        assert!(parse("stats delta extra").is_err());
    }

    #[test]
    fn parses_metrics_forms() {
        assert_eq!(
            parse("metrics").unwrap(),
            Some(Command::Metrics(MetricsMode::Show {
                format: MetricsFormat::Both,
                delta: false,
            }))
        );
        assert_eq!(
            parse("metrics json").unwrap(),
            Some(Command::Metrics(MetricsMode::Show {
                format: MetricsFormat::Json,
                delta: false,
            }))
        );
        assert_eq!(
            parse("metrics prom delta").unwrap(),
            Some(Command::Metrics(MetricsMode::Show {
                format: MetricsFormat::Prom,
                delta: true,
            }))
        );
        assert_eq!(
            parse("metrics delta json").unwrap(),
            Some(Command::Metrics(MetricsMode::Show {
                format: MetricsFormat::Json,
                delta: true,
            }))
        );
        assert_eq!(
            parse("metrics reset").unwrap(),
            Some(Command::Metrics(MetricsMode::Reset))
        );
        assert!(parse("metrics bogus").is_err());
        assert!(parse("metrics reset delta").is_err());
        assert!(parse("metrics json reset").is_err());
    }

    #[test]
    fn parses_flight_recorder_forms() {
        assert_eq!(parse("trace").unwrap(), Some(Command::Trace(TraceMode::Dump)));
        assert_eq!(
            parse("trace reset").unwrap(),
            Some(Command::Trace(TraceMode::Reset))
        );
        assert_eq!(
            parse("trace slow 250").unwrap(),
            Some(Command::Trace(TraceMode::Slow(250)))
        );
        assert_eq!(
            parse("trace slow 0").unwrap(),
            Some(Command::Trace(TraceMode::Slow(0)))
        );
        assert!(parse("trace slow").is_err());
        assert!(parse("trace bogus").is_err());
        assert!(parse("trace reset extra").is_err());
    }

    #[test]
    fn skips_blank_and_comments() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
        assert_eq!(parse("# a comment").unwrap(), None);
    }

    #[test]
    fn parses_trace_commands() {
        assert_eq!(
            parse("record /tmp/t.trace a 500").unwrap(),
            Some(Command::Record("/tmp/t.trace".into(), 'a', 500))
        );
        assert_eq!(
            parse("replay /tmp/t.trace").unwrap(),
            Some(Command::Replay("/tmp/t.trace".into()))
        );
        assert!(parse("record /tmp/t.trace z 5").is_err());
        assert!(parse("record /tmp/t.trace a").is_err());
        assert!(parse("replay").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("frobnicate").is_err());
        assert!(parse("insert").is_err());
        assert!(parse("insert 1").is_err());
        assert!(parse("insert x y").is_err());
        assert!(parse("get 1 2").is_err());
        assert!(parse("workload z 10").is_err());
    }
}
