//! Command execution against a live HDNH table.

use std::fmt::Write as _;
use std::time::Instant;

use hdnh::faultexplore::{self, ExploreConfig, OpMix};
use hdnh::{Hdnh, HdnhError, HdnhParams};
use hdnh_common::{HashIndex, Key, Value};
use hdnh_nvm::{FaultPlan, NvmOptions, StatsSnapshot};
use hdnh_obs as obs;
use hdnh_ycsb::trace::{load_trace, save_trace};
use hdnh_ycsb::{generate_ops, KeySpace, Op, WorkloadSpec};

use crate::command::{
    Command, FaultRunMode, MetricsFormat, MetricsMode, StatsMode, TraceMode, HELP,
};

/// Engine configuration (mapped from CLI flags by the binary).
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Strict NVM (enables `crash`); slower writes.
    pub strict: bool,
    /// AEP latency model on.
    pub latency: bool,
    /// Initial capacity hint in records.
    pub capacity: usize,
    /// Pool directory for the file-backed persistent backend (`--pool`).
    /// `None` keeps the default heap simulator.
    pub pool: Option<String>,
    /// Pool fence policy: [`SyncPolicy::Sync`](hdnh_nvm::SyncPolicy) blocks
    /// write acks on `msync(MS_SYNC)` and is the only power-loss-safe
    /// setting; `Async` (default) is faster but an acked write may be lost
    /// if power fails before the kernel writes the page back.
    pub sync_policy: hdnh_nvm::SyncPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strict: false,
            latency: false,
            capacity: 10_000,
            pool: None,
            sync_policy: hdnh_nvm::SyncPolicy::Async,
        }
    }
}

/// A live table plus the state the shell needs.
pub struct Engine {
    table: Option<Hdnh>,
    params: HdnhParams,
    ks: KeySpace,
    /// Next id for `fill` continuation and workload inserts.
    next_fill_id: u64,
    /// Baseline for `stats delta` (moved by `stats reset`).
    stats_base: StatsSnapshot,
    /// Baseline for `metrics delta` (moved by `metrics reset`).
    metrics_base: obs::MetricsSnapshot,
    /// Whether the table is backed by a pool directory (`quit` must then
    /// close the pool to mark it clean).
    pool_backed: bool,
    /// One-line description of how the pool was opened, for the shell to
    /// print at startup.
    open_banner: Option<String>,
}

/// Outcome of executing one command.
#[derive(Debug, PartialEq)]
pub enum Outcome {
    /// Printable response.
    Text(String),
    /// Printable response for a command that found a failure (integrity
    /// violation, corruption, failed fault case, i/o problem). The shell
    /// prints it like [`Outcome::Text`] but exits nonzero.
    Failure(String),
    /// The shell should exit.
    Quit,
}

impl Engine {
    /// Builds an engine with a fresh table. Panics on pool-open failure;
    /// fallible construction is [`Engine::try_new`].
    pub fn new(config: EngineConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("engine construction failed: {e}"))
    }

    /// Builds an engine, surfacing configuration and pool-open problems as
    /// typed errors (the binary prints them and exits nonzero).
    pub fn try_new(config: EngineConfig) -> Result<Self, HdnhError> {
        if config.strict && config.pool.is_some() {
            return Err(HdnhError::Config(
                "--strict simulates shadow media and cannot be combined with --pool".into(),
            ));
        }
        let nvm = if config.strict {
            NvmOptions::strict()
        } else if config.latency {
            NvmOptions::bench()
        } else {
            NvmOptions::fast()
        };
        let params = HdnhParams::builder()
            .capacity(config.capacity)
            .nvm(nvm)
            .sync_policy(config.sync_policy)
            .build()
            .map_err(|e| HdnhError::Config(e.to_string()))?;
        // The shell is an observability surface: the registry is always on
        // here (library users opt in via `hdnh_obs::set_enabled`).
        obs::set_enabled(true);
        let (table, open_banner) = match &config.pool {
            None => (Hdnh::new(params.clone()), None),
            Some(dir) => {
                let threads = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2);
                let (table, report) =
                    Hdnh::open_pool(params.clone(), std::path::Path::new(dir), threads)?;
                let banner = if report.created {
                    format!("created pool {dir} (layout epoch {})", report.layout_epoch)
                } else {
                    format!(
                        "opened pool {dir}: {} records, layout epoch {}, {}{}",
                        table.len(),
                        report.layout_epoch,
                        if report.was_clean {
                            "clean shutdown"
                        } else {
                            "recovered after unclean shutdown"
                        },
                        if report.removed_orphans > 0 {
                            format!(", {} orphan file(s) removed", report.removed_orphans)
                        } else {
                            String::new()
                        },
                    )
                };
                (table, Some(banner))
            }
        };
        Ok(Engine {
            table: Some(table),
            params,
            ks: KeySpace::default(),
            next_fill_id: 0,
            stats_base: StatsSnapshot::default(),
            metrics_base: obs::MetricsSnapshot::empty(),
            pool_backed: config.pool.is_some(),
            open_banner,
        })
    }

    /// One-line description of how the pool was opened (pool-backed engines
    /// only); the shell prints it at startup.
    pub fn open_banner(&self) -> Option<&str> {
        self.open_banner.as_deref()
    }

    /// The live table, as a typed error instead of a panic when a prior
    /// crash/recovery cycle failed to hand one back.
    fn table(&self) -> Result<&Hdnh, HdnhError> {
        self.table.as_ref().ok_or_else(|| {
            HdnhError::Recovery("no live table (a previous crash/recovery did not complete)".into())
        })
    }

    /// Executes one command, returning the response text. Engine-level
    /// errors ([`HdnhError`]) become [`Outcome::Failure`] so the shell can
    /// exit nonzero; per-operation conditions (duplicate key, not found)
    /// stay plain text.
    pub fn execute(&mut self, cmd: Command) -> Outcome {
        match self.execute_inner(cmd) {
            Ok(outcome) => outcome,
            Err(e) => Outcome::Failure(format!("error: {e}")),
        }
    }

    fn execute_inner(&mut self, cmd: Command) -> Result<Outcome, HdnhError> {
        match cmd {
            Command::Insert(k, v) => Ok(Outcome::Text(
                match self.table()?.insert(&Key::from_u64(k), &Value::from_u64(v)) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("error: {e}"),
                },
            )),
            Command::Get(k) => Ok(Outcome::Text(match self.table()?.get(&Key::from_u64(k))? {
                Some(v) => v.as_u64().to_string(),
                None => "(not found)".to_string(),
            })),
            Command::Exists(k) => Ok(Outcome::Text(
                match self.table()?.get(&Key::from_u64(k))? {
                    Some(_) => "1".to_string(),
                    None => "0".to_string(),
                },
            )),
            Command::MGet(keys) => {
                let table = self.table()?;
                let mut out = String::new();
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        out.push('\n');
                    }
                    match table.get(&Key::from_u64(*k))? {
                        Some(v) => {
                            let _ = write!(out, "{k} {}", v.as_u64());
                        }
                        None => {
                            let _ = write!(out, "{k} (not found)");
                        }
                    }
                }
                Ok(Outcome::Text(out))
            }
            Command::Update(k, v) => Ok(Outcome::Text(
                match self.table()?.update(&Key::from_u64(k), &Value::from_u64(v)) {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("error: {e}"),
                },
            )),
            Command::Delete(k) => Ok(Outcome::Text(
                if self.table()?.remove(&Key::from_u64(k))? {
                    "ok".to_string()
                } else {
                    "(not found)".to_string()
                },
            )),
            Command::Fill(n) => {
                let start_id = self.next_fill_id;
                let t0 = Instant::now();
                let mut inserted = 0u64;
                let table = self.table()?;
                for i in 0..n {
                    let id = start_id + i;
                    match table.insert(&self.ks.key(id), &self.ks.value(id, 0)) {
                        Ok(()) => inserted += 1,
                        Err(HdnhError::DuplicateKey) => {}
                        Err(e) => return Ok(Outcome::Text(format!("error at id {id}: {e}"))),
                    }
                }
                self.next_fill_id = start_id + n;
                Ok(Outcome::Text(format!(
                    "inserted {inserted} records (ids {start_id}..{}) in {:.1} ms",
                    start_id + n,
                    t0.elapsed().as_secs_f64() * 1e3
                )))
            }
            Command::Workload(mix, ops) => self.run_workload(mix, ops),
            Command::Stats(mode) => {
                let now = self.table()?.nvm_stats();
                let s = match mode {
                    StatsMode::Absolute => now,
                    StatsMode::Delta => now.since(&self.stats_base),
                    StatsMode::Reset => {
                        self.stats_base = now;
                        return Ok(Outcome::Text("stats baseline reset".to_string()));
                    }
                };
                let mut out = String::new();
                if mode == StatsMode::Delta {
                    let _ = writeln!(out, "(since last 'stats reset')");
                }
                let _ = writeln!(out, "reads        {:>12}  ({} blocks)", s.reads, s.read_blocks);
                let _ = writeln!(out, "writes       {:>12}  ({} lines)", s.writes, s.write_lines);
                let _ = writeln!(out, "flushes      {:>12}", s.flushes);
                let _ = write!(out, "fences       {:>12}", s.fences);
                Ok(Outcome::Text(out))
            }
            Command::Metrics(mode) => {
                let now = obs::snapshot();
                let (s, format) = match mode {
                    MetricsMode::Reset => {
                        self.metrics_base = now;
                        return Ok(Outcome::Text("metrics baseline reset".to_string()));
                    }
                    MetricsMode::Show { format, delta } => {
                        // If the registry was globally reset (`obs::reset`)
                        // after our baseline was captured, the baseline is
                        // *ahead* of the live counters and a naive subtract
                        // would go negative (or, with saturating math,
                        // silently report zeros for real work). Detect the
                        // regression, drop the stale baseline, and leave an
                        // auditable counter tick behind.
                        let s = if delta {
                            if now.regressed_from(&self.metrics_base) {
                                obs::count(obs::Counter::DeltaBaselineReset);
                                self.metrics_base = obs::MetricsSnapshot::empty();
                            }
                            now.since(&self.metrics_base)
                        } else {
                            now
                        };
                        (s, format)
                    }
                };
                let out = match format {
                    MetricsFormat::Both => {
                        format!("{}{}", s.to_prometheus(), s.to_json())
                    }
                    MetricsFormat::Json => s.to_json(),
                    MetricsFormat::Prom => {
                        let mut p = s.to_prometheus();
                        p.pop(); // drop trailing newline for println
                        p
                    }
                };
                Ok(Outcome::Text(out))
            }
            Command::Trace(mode) => Ok(match mode {
                TraceMode::Dump => Outcome::Text(obs::trace::dump_json()),
                TraceMode::Reset => {
                    obs::trace::reset();
                    Outcome::Text("trace rings cleared".to_string())
                }
                TraceMode::Slow(us) => {
                    let ns = us.saturating_mul(1_000);
                    obs::trace::set_slow_op_threshold_ns(ns);
                    obs::trace::set_slow_cmd_threshold_ns(ns);
                    Outcome::Text(if ns == 0 {
                        "slow-op recording disabled".to_string()
                    } else {
                        format!("recording ops and commands slower than {us} µs")
                    })
                }
            }),
            Command::Info => {
                let t = self.table()?;
                let hot = t
                    .hot_table()
                    .map(|h| format!("{} / {} slots, {:?}", h.len(), h.capacity(), h.policy()))
                    .unwrap_or_else(|| "disabled".to_string());
                Ok(Outcome::Text(format!(
                    "records      {}\nload factor  {:.3}\nresizes      {}\nocf bytes    {}\nhot table    {hot}",
                    t.len(),
                    t.load_factor(),
                    t.resize_count(),
                    t.ocf_footprint_bytes(),
                )))
            }
            Command::Verify => {
                let span = obs::phase_start();
                let (reports, live) = self.table()?.verify_integrity_report();
                obs::phase_record(obs::Phase::Verify, span, live as u64);
                let ms = obs::snapshot().phase(obs::Phase::Verify).last_ns as f64 / 1e6;
                let failed = reports.iter().filter(|r| !r.ok).count();
                let mut out = String::new();
                if failed == 0 {
                    let _ = writeln!(out, "integrity ok: {live} live records ({ms:.1} ms)");
                } else {
                    let _ = writeln!(out, "INTEGRITY VIOLATION: {failed} invariant(s) failed");
                }
                for r in &reports {
                    let _ = writeln!(out, "  {:<22} {}", r.name, if r.ok { "ok" } else { "FAIL" });
                    for v in &r.violations {
                        let _ = writeln!(out, "      {v}");
                    }
                }
                out.pop();
                if failed == 0 {
                    Ok(Outcome::Text(out))
                } else {
                    Ok(Outcome::Failure(out))
                }
            }
            Command::Scrub => {
                let report = self.table()?.scrub();
                let mut out = report.to_json();
                for err in &report.errors {
                    let _ = write!(out, "\n  {err}");
                }
                if report.detected > report.errors.len() {
                    let _ = write!(
                        out,
                        "\n  ... ({} more not retained)",
                        report.detected - report.errors.len()
                    );
                }
                if report.clean() {
                    Ok(Outcome::Text(out))
                } else {
                    Ok(Outcome::Failure(out))
                }
            }
            Command::Vlog => {
                let s = self.table()?.vlog_stats();
                let mut out = format!(
                    "segments     {}\ncapacity     {} bytes\nused         {} bytes\ngarbage      {} bytes\nlive         {} bytes",
                    s.segments, s.capacity_bytes, s.used_bytes, s.garbage_bytes, s.live_bytes
                );
                if let Some(gc) = s.last_gc {
                    let _ = write!(
                        out,
                        "\nlast gc      {} victim(s), {} retired, {} relocated, {} bytes reclaimed",
                        gc.victims, gc.segments_retired, gc.records_relocated, gc.bytes_reclaimed
                    );
                }
                Ok(Outcome::Text(out))
            }
            Command::Compact => {
                let r = self.table()?.compact()?;
                Ok(Outcome::Text(format!(
                    "compacted: {} victim(s), {} segment(s) retired, {} record(s) relocated, {} bytes reclaimed",
                    r.victims, r.segments_retired, r.records_relocated, r.bytes_reclaimed
                )))
            }
            Command::Crash(seed) => {
                if !self.params.nvm.strict {
                    return Ok(Outcome::Text(
                        "crash requires strict mode (run with --strict)".to_string(),
                    ));
                }
                let table = self.table.take().ok_or_else(|| {
                    HdnhError::Recovery(
                        "no live table (a previous crash/recovery did not complete)".into(),
                    )
                })?;
                let pool = table.into_pool();
                let dropped = pool.crash(seed);
                let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
                let recovered = Hdnh::recover(self.params.clone(), pool, threads);
                let len = recovered.len();
                self.table = Some(recovered);
                // Recovery time comes from the registry's recovery_total
                // span (recorded inside `recover` itself), not a wrapper
                // clock, so the shell and `metrics` report the same number.
                let ms = obs::snapshot().phase(obs::Phase::RecoveryTotal).last_ns as f64 / 1e6;
                Ok(Outcome::Text(format!(
                    "crashed ({dropped} words dropped), recovered {len} records in {ms:.1} ms"
                )))
            }
            Command::FaultRun(mode) => Ok(Self::fault_run(mode)),
            Command::Backup(dir) => {
                let report = self.table()?.snapshot(std::path::Path::new(&dir))?;
                Ok(Outcome::Text(format!(
                    "snapshot written to {dir}: {} files, {} bytes",
                    report.files, report.bytes
                )))
            }
            Command::Restore(snap, dest) => {
                if self.params.nvm.strict {
                    return Err(HdnhError::Config(
                        "restore opens a file-backed pool and cannot run under --strict".into(),
                    ));
                }
                let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
                let (table, report) = Hdnh::restore_snapshot(
                    self.params.clone(),
                    std::path::Path::new(&snap),
                    std::path::Path::new(&dest),
                    threads,
                )?;
                let records = table.len();
                // The restored pool is validated, closed clean, and left in
                // place; reopen it with `--pool <dest>`.
                table.close_pool()?;
                Ok(Outcome::Text(format!(
                    "restored {snap} into {dest}: {records} records, layout epoch {}",
                    report.layout_epoch
                )))
            }
            Command::Record(file, mix, ops) => {
                let spec = Self::spec_for(mix);
                let preloaded = self.next_fill_id.max(1);
                let stream = generate_ops(&spec, preloaded, self.next_fill_id, ops, 0x7EC0);
                save_trace(std::path::Path::new(&file), &stream)
                    .map_err(|e| HdnhError::Io(e.to_string()))?;
                Ok(Outcome::Text(format!("recorded {ops} ops to {file}")))
            }
            Command::Replay(file) => {
                let stream = load_trace(std::path::Path::new(&file))
                    .map_err(|e| HdnhError::Io(e.to_string()))?;
                let table = self.table()?;
                let t0 = Instant::now();
                self.apply_stream(table, &stream);
                let secs = t0.elapsed().as_secs_f64();
                Ok(Outcome::Text(format!(
                    "replayed {} ops in {:.1} ms ({:.3} Mops/s)",
                    stream.len(),
                    secs * 1e3,
                    stream.len() as f64 / secs / 1e6
                )))
            }
            Command::Help => Ok(Outcome::Text(HELP.to_string())),
            Command::Quit => {
                if self.pool_backed {
                    // A clean quit must mark the pool clean-shutdown; a
                    // failed close leaves it dirty (next open recovers) and
                    // the shell exits nonzero.
                    if let Some(table) = self.table.take() {
                        table.close_pool()?;
                    }
                }
                Ok(Outcome::Quit)
            }
        }
    }

    /// Runs the crash-point injection matrix. Independent of the shell's
    /// table — the explorer builds small strict tables of its own. Any
    /// failing case yields [`Outcome::Failure`] (nonzero shell exit).
    fn fault_run(mode: FaultRunMode) -> Outcome {
        match mode {
            FaultRunMode::Sites => {
                let mut out = String::new();
                for mix in OpMix::builtin() {
                    match faultexplore::record_sites(&mix) {
                        Ok(counts) => {
                            let _ = writeln!(out, "mix {} ({} ops):", mix.name, mix.ops.len());
                            for (site, n) in counts {
                                let _ = writeln!(out, "  {site:<32} {n:>8} hits");
                            }
                        }
                        Err(e) => {
                            let _ = writeln!(out, "mix {}: recording failed: {e}", mix.name);
                        }
                    }
                }
                out.pop();
                Outcome::Text(out)
            }
            FaultRunMode::Repro(tuple) => match Self::parse_repro(&tuple) {
                Err(e) => Outcome::Failure(format!("error: {e}")),
                Ok((mix, plan, seed, rplan)) => {
                    let r = faultexplore::run_single(&mix, &plan, seed, rplan.as_ref(), 2);
                    match (r.pass, r.detail.is_empty()) {
                        (true, true) => Outcome::Text(format!("PASS {}", r.repro())),
                        (true, false) => {
                            Outcome::Text(format!("PASS {} ({})", r.repro(), r.detail))
                        }
                        (false, _) => {
                            Outcome::Failure(format!("FAIL {}\n  {}", r.repro(), r.detail))
                        }
                    }
                }
            },
            FaultRunMode::Full | FaultRunMode::Quick => {
                let cfg = if mode == FaultRunMode::Quick {
                    ExploreConfig::quick()
                } else {
                    ExploreConfig::full()
                };
                let span = obs::phase_start();
                let report = faultexplore::explore(&cfg, |_| ());
                obs::phase_record(obs::Phase::FaultExplore, span, report.cases.len() as u64);
                let secs =
                    obs::snapshot().phase(obs::Phase::FaultExplore).last_ns as f64 / 1e9;
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "explored {} crash sites, {} cases in {:.1} s",
                    report.sites_seen.len(),
                    report.cases.len(),
                    secs
                );
                // Per-site rollup.
                let mut per_site: std::collections::BTreeMap<&str, (usize, usize)> =
                    std::collections::BTreeMap::new();
                for c in &report.cases {
                    let e = per_site.entry(c.site.as_str()).or_insert((0, 0));
                    e.0 += 1;
                    if c.pass {
                        e.1 += 1;
                    }
                }
                for (site, (cases, passes)) in &per_site {
                    let _ = writeln!(
                        out,
                        "  {site:<32} {passes:>4}/{cases:<4} {}",
                        if passes == cases { "ok" } else { "FAIL" }
                    );
                }
                let failures = report.failures();
                if failures.is_empty() {
                    let _ = write!(out, "all cases passed");
                    Outcome::Text(out)
                } else {
                    let _ = writeln!(out, "{} FAILURES (repro with 'faultrun repro <tuple>'):", failures.len());
                    for f in &failures {
                        let _ = writeln!(out, "  {}\n    {}", f.repro(), f.detail);
                    }
                    out.pop();
                    Outcome::Failure(out)
                }
            }
        }
    }

    /// Parses `mix:site:hit:seed[:recovery_site:recovery_hit]`.
    #[allow(clippy::type_complexity)]
    fn parse_repro(
        tuple: &str,
    ) -> Result<(OpMix, FaultPlan, u64, Option<FaultPlan>), String> {
        let parts: Vec<&str> = tuple.split(':').collect();
        if parts.len() != 4 && parts.len() != 6 {
            return Err("tuple must be mix:site:hit:seed[:rsite:rhit]".into());
        }
        let mix = OpMix::builtin()
            .into_iter()
            .find(|m| m.name == parts[0])
            .ok_or_else(|| format!("unknown mix '{}'", parts[0]))?;
        let hit: u64 = parts[2].parse().map_err(|_| "hit must be an integer".to_string())?;
        let seed: u64 = parts[3].parse().map_err(|_| "seed must be an integer".to_string())?;
        let plan = FaultPlan {
            site: parts[1].to_string(),
            hit,
        };
        let rplan = if parts.len() == 6 {
            Some(FaultPlan {
                site: parts[4].to_string(),
                hit: parts[5]
                    .parse()
                    .map_err(|_| "recovery hit must be an integer".to_string())?,
            })
        } else {
            None
        };
        Ok((mix, plan, seed, rplan))
    }

    fn spec_for(mix: char) -> WorkloadSpec {
        match mix {
            'a' => WorkloadSpec::ycsb_a(),
            'b' => WorkloadSpec::ycsb_b(),
            'c' => WorkloadSpec::ycsb_c(),
            'f' => WorkloadSpec::ycsb_f(),
            _ => unreachable!("parser filters mixes"),
        }
    }

    /// Applies a pre-generated stream to the table.
    fn apply_stream(&self, table: &Hdnh, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Read(id) => {
                    let _ = table.get(&self.ks.key(*id));
                }
                Op::ReadAbsent(id) => {
                    let _ = table.get(&self.ks.negative_key(*id));
                }
                Op::Insert(id) => {
                    let _ = table.insert(&self.ks.key(*id), &self.ks.value(*id, 0));
                }
                Op::Update(id, seq) | Op::ReadModifyWrite(id, seq) => {
                    let _ = table.upsert(&self.ks.key(*id), &self.ks.value(*id, *seq));
                }
                Op::Delete(id) => {
                    let _ = table.remove(&self.ks.key(*id));
                }
            }
        }
    }

    fn run_workload(&mut self, mix: char, n_ops: usize) -> Result<Outcome, HdnhError> {
        let spec = Self::spec_for(mix);
        let preloaded = self.next_fill_id.max(1);
        let table = self.table()?;
        if table.is_empty() {
            return Ok(Outcome::Text("table is empty — run 'fill <n>' first".to_string()));
        }
        let ops = generate_ops(&spec, preloaded, self.next_fill_id, n_ops, 0xC11);
        let t0 = Instant::now();
        self.apply_stream(table, &ops);
        let secs = t0.elapsed().as_secs_f64();
        Ok(Outcome::Text(format!(
            "YCSB-{}: {} ops in {:.1} ms ({:.3} Mops/s)",
            mix.to_ascii_uppercase(),
            n_ops,
            secs * 1e3,
            n_ops as f64 / secs / 1e6
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::parse;

    fn run(engine: &mut Engine, line: &str) -> String {
        match engine.execute(parse(line).unwrap().unwrap()) {
            Outcome::Text(t) | Outcome::Failure(t) => t,
            Outcome::Quit => "<quit>".to_string(),
        }
    }

    #[test]
    fn crud_session() {
        let mut e = Engine::new(EngineConfig::default());
        assert_eq!(run(&mut e, "insert 1 42"), "ok");
        assert_eq!(run(&mut e, "get 1"), "42");
        assert_eq!(run(&mut e, "insert 1 43"), "error: key already present");
        assert_eq!(run(&mut e, "update 1 43"), "ok");
        assert_eq!(run(&mut e, "get 1"), "43");
        assert_eq!(run(&mut e, "delete 1"), "ok");
        assert_eq!(run(&mut e, "get 1"), "(not found)");
        assert_eq!(run(&mut e, "delete 1"), "(not found)");
        assert_eq!(run(&mut e, "update 1 9"), "error: key not found");
    }

    #[test]
    fn exists_and_mget() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "insert 10 100");
        run(&mut e, "insert 20 200");
        assert_eq!(run(&mut e, "exists 10"), "1");
        assert_eq!(run(&mut e, "exists 11"), "0");
        assert_eq!(run(&mut e, "mget 10 11 20"), "10 100\n11 (not found)\n20 200");
        assert_eq!(run(&mut e, "mget 20"), "20 200");
    }

    #[test]
    fn fill_then_workload_then_verify() {
        let mut e = Engine::new(EngineConfig::default());
        let out = run(&mut e, "fill 2000");
        assert!(out.starts_with("inserted 2000 records"), "{out}");
        let out = run(&mut e, "workload a 3000");
        assert!(out.starts_with("YCSB-A: 3000 ops"), "{out}");
        let out = run(&mut e, "verify");
        assert!(out.starts_with("integrity ok"), "{out}");
        let out = run(&mut e, "info");
        assert!(out.contains("records"), "{out}");
    }

    #[test]
    fn stats_move_with_work() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 100");
        let out = run(&mut e, "stats");
        assert!(out.contains("writes"), "{out}");
    }

    #[test]
    fn stats_delta_and_reset() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 200");
        let absolute = run(&mut e, "stats");
        assert!(!absolute.contains("(0 lines)"), "{absolute}");
        assert_eq!(run(&mut e, "stats reset"), "stats baseline reset");
        // Nothing touched the table since the reset: the delta is zero even
        // though the absolute counters still show the fill.
        let out = run(&mut e, "stats delta");
        assert!(out.starts_with("(since last 'stats reset')"), "{out}");
        assert!(out.contains("(0 lines)"), "{out}");
        run(&mut e, "fill 100");
        let out = run(&mut e, "stats delta");
        assert!(!out.contains("(0 lines)"), "{out}");
    }

    #[test]
    fn metrics_exposition_forms() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 200");
        let out = run(&mut e, "metrics json");
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(out.contains("\"insert\"") && out.contains("\"derived\""), "{out}");
        let out = run(&mut e, "metrics prom");
        assert!(out.contains("hdnh_ops_total"), "{out}");
        assert!(!out.starts_with('{'), "{out}");
        let both = run(&mut e, "metrics");
        assert!(both.contains("hdnh_ops_total"), "{both}");
        assert!(both.lines().last().unwrap().starts_with('{'), "{both}");
        assert_eq!(run(&mut e, "metrics reset"), "metrics baseline reset");
        // Delta form stays parseable (exact zeros can't be asserted here:
        // the registry is process-global and tests run concurrently).
        let out = run(&mut e, "metrics delta json");
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
    }

    #[test]
    fn metrics_delta_survives_registry_reset_between_calls() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 300");
        assert_eq!(run(&mut e, "metrics reset"), "metrics baseline reset");
        // A registry-wide reset (another test, an operator, a bench run)
        // leaves our baseline ahead of the live counters.
        obs::reset();
        run(&mut e, "fill 100");
        let out = run(&mut e, "metrics delta json");
        // The delta must stay well-formed, never report pre-reset zeros
        // for post-reset work, and record that the baseline was dropped.
        assert!(out.starts_with('{') && out.ends_with('}'), "{out}");
        assert!(
            out.contains("\"insert\":{\"count\":"),
            "delta still carries op data: {out}"
        );
        let after = obs::snapshot();
        assert!(
            after.counter(obs::Counter::DeltaBaselineReset) >= 1,
            "stale-baseline detection must be auditable"
        );
        // A second delta right away does not re-trigger the detector.
        let before = after.counter(obs::Counter::DeltaBaselineReset);
        run(&mut e, "metrics delta json");
        assert_eq!(obs::snapshot().counter(obs::Counter::DeltaBaselineReset), before);
    }

    #[test]
    fn trace_commands_drive_the_flight_recorder() {
        let mut e = Engine::new(EngineConfig::default());
        obs::trace::reset();
        assert_eq!(
            run(&mut e, "trace slow 0"),
            "slow-op recording disabled"
        );
        let out = run(&mut e, "trace slow 1000");
        assert!(out.contains("1000 µs"), "{out}");
        assert_eq!(run(&mut e, "trace reset"), "trace rings cleared");
        let out = run(&mut e, "trace");
        assert!(out.starts_with("{\"anchor_unix_ns\":"), "{out}");
        assert!(out.contains("\"slow_op_threshold_ns\":1000000"), "{out}");
        run(&mut e, "trace slow 0");
    }

    #[test]
    fn crash_requires_strict() {
        let mut e = Engine::new(EngineConfig::default());
        let out = run(&mut e, "crash 1");
        assert!(out.contains("requires strict"), "{out}");
    }

    #[test]
    fn crash_and_recover_in_strict_mode() {
        let mut e = Engine::new(EngineConfig {
            strict: true,
            ..Default::default()
        });
        run(&mut e, "fill 500");
        let out = run(&mut e, "crash 7");
        assert!(out.contains("recovered 500 records"), "{out}");
        // Table is usable after recovery.
        assert_eq!(run(&mut e, "insert 999999 1"), "ok");
        let out = run(&mut e, "verify");
        assert!(out.starts_with("integrity ok: 501"), "{out}");
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 1000");
        let path = std::env::temp_dir().join("hdnh_cli_test.trace");
        let path_s = path.to_str().unwrap().to_string();
        let out = run(&mut e, &format!("record {path_s} c 2000"));
        assert!(out.starts_with("recorded 2000 ops"), "{out}");
        let out = run(&mut e, &format!("replay {path_s}"));
        assert!(out.starts_with("replayed 2000 ops"), "{out}");
        let out = run(&mut e, "verify");
        assert!(out.starts_with("integrity ok"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_missing_file_is_a_failure_outcome() {
        let mut e = Engine::new(EngineConfig::default());
        let out = e.execute(parse("replay /nonexistent/path.trace").unwrap().unwrap());
        match out {
            Outcome::Failure(t) => assert!(t.starts_with("error: i/o error:"), "{t}"),
            other => panic!("expected Failure, got {other:?}"),
        }
    }

    #[test]
    fn record_to_unwritable_path_is_a_failure_outcome() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 10");
        let out = e.execute(parse("record /nonexistent/dir/t.trace c 10").unwrap().unwrap());
        assert!(matches!(out, Outcome::Failure(_)), "{out:?}");
    }

    #[test]
    fn scrub_on_clean_table_reports_clean_json() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 300");
        let out = e.execute(parse("scrub").unwrap().unwrap());
        match out {
            Outcome::Text(t) => {
                assert!(t.starts_with("{\"scanned\":300"), "{t}");
                assert!(t.contains("\"detected\":0"), "{t}");
            }
            other => panic!("clean scrub must not be a Failure: {other:?}"),
        }
    }

    #[test]
    fn vlog_and_compact_commands_run() {
        let mut e = Engine::new(EngineConfig::default());
        run(&mut e, "fill 50");
        // The shell's u64 vocabulary stays inline, so the log is empty and
        // compaction is a clean no-op — the commands still round-trip.
        let out = run(&mut e, "vlog");
        assert!(out.starts_with("segments"), "{out}");
        assert!(out.contains("garbage"), "{out}");
        let out = run(&mut e, "compact");
        assert!(out.starts_with("compacted: 0 victim(s)"), "{out}");
    }

    #[test]
    fn quit_propagates() {
        let mut e = Engine::new(EngineConfig::default());
        assert_eq!(e.execute(Command::Quit), Outcome::Quit);
    }

    #[test]
    fn strict_plus_pool_is_rejected() {
        let cfg = EngineConfig {
            strict: true,
            pool: Some("/tmp/never-created".into()),
            ..Default::default()
        };
        let err = Engine::try_new(cfg).err().expect("strict+pool must be rejected");
        match err {
            HdnhError::Config(msg) => assert!(msg.contains("--pool"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[cfg(unix)]
    #[test]
    fn pool_backed_engine_persists_across_quit() {
        let dir = std::env::temp_dir().join(format!("hdnh-cli-engine-pool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig {
            pool: Some(dir.to_str().unwrap().to_string()),
            capacity: 4_000,
            ..Default::default()
        };
        let mut e = Engine::try_new(cfg.clone()).unwrap();
        let banner = e.open_banner().unwrap().to_string();
        assert!(banner.starts_with("created pool"), "{banner}");
        assert_eq!(run(&mut e, "insert 7 77"), "ok");
        assert_eq!(e.execute(Command::Quit), Outcome::Quit);

        let mut e = Engine::try_new(cfg).unwrap();
        let banner = e.open_banner().unwrap().to_string();
        assert!(banner.contains("clean shutdown"), "{banner}");
        assert_eq!(run(&mut e, "get 7"), "77");
        assert_eq!(e.execute(Command::Quit), Outcome::Quit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_on_empty_table_is_guarded() {
        let mut e = Engine::new(EngineConfig::default());
        let out = run(&mut e, "workload c 100");
        assert!(out.contains("fill"), "{out}");
    }
}
