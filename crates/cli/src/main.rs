//! `hdnh-cli` — interactive/scriptable shell for an HDNH table.
//!
//! ```text
//! hdnh-cli [--strict] [--latency] [--capacity N] [--pool DIR] [--sync-policy async|sync]
//! hdnh-cli serve <addr> [--threads N] [--max-conns N] [--capacity N] [--fill N] [--pool DIR]
//!                       [--sync-policy async|sync] [--ops-addr ADDR] [--slow-us N]
//! ```
//!
//! Without a subcommand, reads shell commands from stdin (one per line;
//! `help` lists them). Suitable both interactively and piped:
//! `printf 'fill 1000\ninfo\n' | hdnh-cli`.
//!
//! `serve` runs the RESP network front-end from `hdnh-server` over a fresh
//! table until `SHUTDOWN` or SIGTERM/SIGINT, then drains and exits 0.
//!
//! `--pool DIR` swaps the heap simulator for the mmap-backed pool-file
//! backend: the table lives in `DIR` and survives process restarts,
//! including `kill -9`. A `quit` (shell) or drained signal (serve) marks
//! the pool clean; anything else leaves it dirty and the next open runs
//! recovery.
//!
//! Exit status: 0 when every command succeeded; 1 when any command reported
//! a failure (`verify` violation, `scrub` detection, failing `faultrun`
//! case, i/o error) or — with `HDNH_CLI_BATCH` set — any line failed to
//! parse; 2 for bad flags.

use std::io::{BufRead, Write};

use hdnh_cli::{parse, Engine, EngineConfig};

fn main() {
    let mut config = EngineConfig::default();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        serve_main(args);
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => config.strict = true,
            "--latency" => config.latency = true,
            "--capacity" => {
                config.capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--capacity needs an integer");
                        std::process::exit(2);
                    });
            }
            "--pool" => {
                config.pool = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--pool needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--sync-policy" => config.sync_policy = parse_sync_policy(args.next()),
            "--help" | "-h" => {
                println!("hdnh-cli [--strict] [--latency] [--capacity N] [--pool DIR] [--sync-policy async|sync]");
                println!("hdnh-cli serve <addr> [--threads N] [--max-conns N] [--capacity N] [--fill N] [--pool DIR] [--sync-policy async|sync] [--ops-addr ADDR] [--slow-us N]");
                println!("{}", hdnh_cli::command::HELP);
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let mut engine = Engine::try_new(config).unwrap_or_else(|e| {
        eprintln!("cannot start: {e}");
        std::process::exit(1);
    });
    if let Some(banner) = engine.open_banner() {
        println!("{banner}");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = atty_stdin();
    if interactive {
        println!("hdnh-cli — type 'help' for commands");
    }
    let mut failed = false;
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                failed = true;
                break;
            }
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match engine.execute(cmd) {
                hdnh_cli::engine::Outcome::Text(text) => println!("{text}"),
                hdnh_cli::engine::Outcome::Failure(text) => {
                    println!("{text}");
                    failed = true;
                }
                hdnh_cli::engine::Outcome::Quit => break,
            },
            Err(e) => {
                println!("parse error: {e}");
                // A typo at the prompt shouldn't poison the session's exit
                // status, but a bad line in a script must fail CI.
                if !interactive {
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Parses `--sync-policy async|sync`. `sync` blocks every write ack on
/// `msync(MS_SYNC)` — the only power-loss-safe setting; `async` (default)
/// acks after a non-blocking `MS_ASYNC` and can lose acked writes if power
/// fails before writeback.
fn parse_sync_policy(val: Option<String>) -> hdnh_nvm::SyncPolicy {
    match val.as_deref() {
        Some("async") => hdnh_nvm::SyncPolicy::Async,
        Some("sync") => hdnh_nvm::SyncPolicy::Sync,
        _ => {
            eprintln!("--sync-policy takes 'async' or 'sync'");
            std::process::exit(2);
        }
    }
}

/// Minimal tty check without a dependency: assume non-interactive when the
/// `HDNH_CLI_BATCH` env var is set, interactive otherwise. (Good enough for
/// a demo shell; piped runs just see a few extra prompts on stdout if the
/// variable is unset.)
fn atty_stdin() -> bool {
    std::env::var("HDNH_CLI_BATCH").is_err()
}

/// `serve <addr> [--threads N] [--max-conns N] [--capacity N] [--fill N]
/// [--pool DIR] [--ops-addr ADDR] [--slow-us N]` — RESP front-end; blocks
/// until drain, then exits 0. With `--pool` the table is file-backed: the
/// pool is opened (running recovery if the last run died) and marked clean
/// after the drain. With `--ops-addr` an HTTP ops listener comes up
/// *before* the pool opens, so `/healthz` answers and `/readyz` reports
/// 503 throughout recovery. `--slow-us` arms the slow-op log: any table op
/// or network command taking at least that many microseconds leaves an
/// exemplar in the flight recorder (`/trace`) and bumps the slowlog
/// counters. `HDNH_NO_OBS=1` disables the whole observability layer (the
/// CI overhead job compares against this).
fn serve_main(mut args: impl Iterator<Item = String>) -> ! {
    const USAGE: &str = "usage: hdnh-cli serve <addr> [--threads N] [--max-conns N] [--capacity N] [--fill N] [--pool DIR] [--sync-policy async|sync] [--ops-addr ADDR] [--slow-us N]";
    let Some(addr) = args.next().filter(|a| !a.starts_with("--")) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let mut server_cfg = hdnh_server::ServerConfig::builder();
    let mut capacity = 100_000usize;
    let mut fill = 0u64;
    let mut pool: Option<String> = None;
    let mut ops_addr: Option<String> = None;
    let mut slow_us = 0u64;
    let mut sync_policy = hdnh_nvm::SyncPolicy::Async;
    while let Some(flag) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>, what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs an integer");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--threads" => {
                server_cfg = server_cfg.threads(val(&mut args, "--threads") as usize);
            }
            "--max-conns" => {
                server_cfg = server_cfg.max_conns(val(&mut args, "--max-conns") as usize);
            }
            "--capacity" => capacity = val(&mut args, "--capacity").max(1) as usize,
            "--fill" => fill = val(&mut args, "--fill"),
            "--pool" => {
                pool = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--pool needs a directory path");
                    std::process::exit(2);
                }));
            }
            "--ops-addr" => {
                ops_addr = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--ops-addr needs an address (host:port)");
                    std::process::exit(2);
                }));
            }
            "--slow-us" => slow_us = val(&mut args, "--slow-us"),
            "--sync-policy" => sync_policy = parse_sync_policy(args.next()),
            other => {
                eprintln!("unknown serve flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Validate the server knobs before doing any expensive table work so
    // `--threads 0` fails in microseconds, not after a pool recovery.
    let cfg = server_cfg.build().unwrap_or_else(|e| {
        eprintln!("bad server configuration: {e}");
        std::process::exit(2);
    });
    let params = hdnh::HdnhParams::builder()
        .capacity(capacity)
        .nvm(hdnh_nvm::NvmOptions::fast())
        .sync_policy(sync_policy)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("bad table configuration: {e}");
            std::process::exit(2);
        });
    // HDNH_NO_OBS=1 keeps the whole observability layer off (counters,
    // histograms, flight recorder) so its overhead can be measured.
    let obs_on = std::env::var("HDNH_NO_OBS").is_err();
    hdnh_obs::set_enabled(obs_on);
    if obs_on && slow_us > 0 {
        hdnh_obs::trace::set_slow_op_threshold_ns(slow_us.saturating_mul(1_000));
        hdnh_obs::trace::set_slow_cmd_threshold_ns(slow_us.saturating_mul(1_000));
    }
    // Ops plane first: during a long pool recovery, probes already get
    // `/healthz` 200 and `/readyz` 503 ("starting") instead of a refused
    // connection.
    let state = hdnh_server::OpsState::new();
    let ops_handle = ops_addr.map(|a| match hdnh_server::start_ops(a.as_str(), std::sync::Arc::clone(&state)) {
        Ok(h) => {
            println!("hdnh-ops listening on {}", h.local_addr());
            h
        }
        Err(e) => {
            eprintln!("cannot bind ops address {a}: {e}");
            std::process::exit(1);
        }
    });
    let table = match &pool {
        None => hdnh::Hdnh::new(params),
        Some(dir) => {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
            match hdnh::Hdnh::open_pool(params, std::path::Path::new(dir), threads) {
                Ok((table, report)) => {
                    if report.created {
                        println!("created pool {dir}");
                    } else {
                        println!(
                            "opened pool {dir}: {} records, {}",
                            table.len(),
                            if report.was_clean {
                                "clean shutdown"
                            } else {
                                "recovered after unclean shutdown"
                            }
                        );
                    }
                    table
                }
                Err(e) => {
                    eprintln!("cannot open pool {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let table = std::sync::Arc::new(table);
    for id in 0..fill {
        use hdnh_common::Key;
        match table.insert_bytes(&Key::from_u64(id), id.to_string().as_bytes()) {
            Ok(()) => {}
            // A reopened pool may already hold the prefill range.
            Err(hdnh::HdnhError::DuplicateKey) if pool.is_some() => {}
            Err(e) => {
                eprintln!("prefill failed at id {id}: {e}");
                std::process::exit(1);
            }
        }
    }
    state.set_table(&table);
    match hdnh_server::start_with_state(
        std::sync::Arc::clone(&table),
        addr.as_str(),
        cfg,
        std::sync::Arc::clone(&state),
    ) {
        Ok(handle) => {
            state.set_ready();
            // The bench/CI side greps for this line to learn the bound port.
            println!("hdnh-server listening on {}", handle.local_addr());
            let _ = std::io::stdout().flush();
            hdnh_server::serve_until_signal(handle);
            // Keep the ops plane up briefly after the drain so external
            // probes reliably observe `/readyz` flipping to "draining"
            // before the process disappears.
            if let Some(ops) = ops_handle {
                std::thread::sleep(std::time::Duration::from_millis(750));
                ops.stop();
            }
            if pool.is_some() {
                // All workers have joined; ours is the last table handle.
                // Marking the pool clean lets the next open skip recovery.
                match std::sync::Arc::try_unwrap(table) {
                    Ok(t) => {
                        if let Err(e) = t.close_pool() {
                            eprintln!("pool close failed: {e}");
                            std::process::exit(1);
                        }
                        println!("pool marked clean");
                    }
                    Err(_) => {
                        eprintln!("pool close failed: table still shared after drain");
                        std::process::exit(1);
                    }
                }
            }
            println!("hdnh-server drained, exiting");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    }
}
