//! `hdnh-cli` — interactive/scriptable shell for an HDNH table.
//!
//! ```text
//! hdnh-cli [--strict] [--latency] [--capacity N]
//! ```
//!
//! Reads commands from stdin (one per line; `help` lists them). Suitable
//! both interactively and piped: `printf 'fill 1000\ninfo\n' | hdnh-cli`.
//!
//! Exit status: 0 when every command succeeded; 1 when any command reported
//! a failure (`verify` violation, `scrub` detection, failing `faultrun`
//! case, i/o error) or — with `HDNH_CLI_BATCH` set — any line failed to
//! parse; 2 for bad flags.

use std::io::{BufRead, Write};

use hdnh_cli::{parse, Engine, EngineConfig};

fn main() {
    let mut config = EngineConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => config.strict = true,
            "--latency" => config.latency = true,
            "--capacity" => {
                config.capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--capacity needs an integer");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!("hdnh-cli [--strict] [--latency] [--capacity N]");
                println!("{}", hdnh_cli::command::HELP);
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let mut engine = Engine::new(config);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = atty_stdin();
    if interactive {
        println!("hdnh-cli — type 'help' for commands");
    }
    let mut failed = false;
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                failed = true;
                break;
            }
        }
        match parse(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match engine.execute(cmd) {
                hdnh_cli::engine::Outcome::Text(text) => println!("{text}"),
                hdnh_cli::engine::Outcome::Failure(text) => {
                    println!("{text}");
                    failed = true;
                }
                hdnh_cli::engine::Outcome::Quit => break,
            },
            Err(e) => {
                println!("parse error: {e}");
                // A typo at the prompt shouldn't poison the session's exit
                // status, but a bad line in a script must fail CI.
                if !interactive {
                    failed = true;
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Minimal tty check without a dependency: assume non-interactive when the
/// `HDNH_CLI_BATCH` env var is set, interactive otherwise. (Good enough for
/// a demo shell; piped runs just see a few extra prompts on stdout if the
/// variable is unset.)
fn atty_stdin() -> bool {
    std::env::var("HDNH_CLI_BATCH").is_err()
}
