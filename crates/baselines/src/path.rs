//! Path hashing baseline (Zuo, Hua — MSST'17), adapted to the evaluation's
//! 31-byte records.
//!
//! Path hashing removes cuckoo-style extra writes by organising the stash
//! as an **inverted complete binary tree**: below the root level of `N`
//! single-record cells sit *reserved levels* of `N/2`, `N/4`, … cells. A key
//! hashes to two root positions `p1, p2`; if both are taken, the insert
//! walks the two tree paths (`p/2` at each deeper level) through the
//! reserved levels and uses the first empty cell. Searches walk the same
//! two paths, so lookup cost is `O(log B)` cell reads — the paper's stated
//! complexity and the reason PATH reads the most NVM of the four schemes.
//! The table is **static**: when both paths are full the insert fails
//! (`TableFull`); the HDNH evaluation sizes it to the workload for this
//! reason, and so do the benches.
//!
//! Per the HDNH paper's setup, 8 reserved levels. Concurrency is a single
//! global reader-writer lock — the coarse-grained locking §2.2 criticizes —
//! which is precisely why PATH scales worst in figure 14.

use std::sync::atomic::{AtomicUsize, Ordering};

use hdnh_common::hash::{key_hash, key_hash2};
use hdnh_common::{HashIndex, IndexError, IndexResult, Key, Record, Value, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion, StatsSnapshot};
use parking_lot::RwLock;

/// Cell stride: record + 1-byte valid tag.
const CELL_BYTES: usize = 32;

/// Configuration for [`PathHash`].
#[derive(Clone, Debug)]
pub struct PathParams {
    /// Root-level cell count (multiple of 2^reserved_levels so every level
    /// divides evenly).
    pub root_cells: usize,
    /// Reserved (stash) levels below the root — the paper uses 8.
    pub reserved_levels: usize,
    /// NVM simulation options.
    pub nvm: NvmOptions,
}

impl PathParams {
    /// Sized so `records` fill the table close to its achievable maximum
    /// load — the regime the paper runs PATH in ("for achieving maximum
    /// load factor"). With two root choices and 8 reserved levels this
    /// variant reliably fills to ≈50 % of total cells at scale; target 42 %
    /// so workload preloads never hit `TableFull`.
    pub fn for_capacity(records: usize) -> Self {
        let reserved_levels = 8usize;
        let cells_needed = (records as f64 / 0.42).ceil() as usize;
        // Total cells ≈ 2 × root (geometric series), so root ≈ cells/2,
        // rounded up to the level-divisibility granule (not a power of two:
        // that would overshoot the target load by up to 2x).
        let granule = 1usize << reserved_levels;
        let root = (cells_needed / 2 + 1).div_ceil(granule) * granule;
        PathParams {
            root_cells: root.max(granule),
            reserved_levels,
            nvm: NvmOptions::fast(),
        }
    }
}

impl Default for PathParams {
    fn default() -> Self {
        PathParams {
            root_cells: 1 << 9,
            reserved_levels: 8,
            nvm: NvmOptions::fast(),
        }
    }
}

/// Path hashing: static inverted-binary-tree table, global r/w lock.
///
/// ```
/// use hdnh_baselines::{PathHash, PathParams};
/// use hdnh_common::{HashIndex, IndexError, Key, Value};
///
/// let t = PathHash::new(PathParams::default());
/// t.insert(&Key::from_u64(1), &Value::from_u64(1)).unwrap();
/// // Static table: filling it up yields TableFull, never a resize.
/// let mut i = 2u64;
/// let err = loop {
///     match t.insert(&Key::from_u64(i), &Value::from_u64(i)) {
///         Ok(()) => i += 1,
///         Err(e) => break e,
///     }
/// };
/// assert_eq!(err, IndexError::TableFull);
/// ```
pub struct PathHash {
    region: NvmRegion,
    /// Byte offset of each level's first cell.
    level_offsets: Vec<usize>,
    /// Cells per level.
    level_cells: Vec<usize>,
    lock: RwLock<()>,
    count: AtomicUsize,
    total_cells: usize,
}

impl PathHash {
    /// Creates an empty table.
    pub fn new(params: PathParams) -> Self {
        assert!(
            params.root_cells >= (1 << params.reserved_levels)
                && params.root_cells.is_multiple_of(1 << params.reserved_levels),
            "root cells must be a positive multiple of 2^reserved_levels"
        );
        let mut level_offsets = Vec::with_capacity(params.reserved_levels + 1);
        let mut level_cells = Vec::with_capacity(params.reserved_levels + 1);
        let mut off = 0usize;
        let mut cells = params.root_cells;
        for _ in 0..=params.reserved_levels {
            level_offsets.push(off);
            level_cells.push(cells);
            off += cells * CELL_BYTES;
            cells /= 2;
        }
        let total_cells = level_cells.iter().sum();
        PathHash {
            region: NvmRegion::new(off, params.nvm.clone()),
            level_offsets,
            level_cells,
            lock: RwLock::new(()),
            count: AtomicUsize::new(0),
            total_cells,
        }
    }

    /// Media counters.
    pub fn nvm_stats(&self) -> StatsSnapshot {
        self.region.stats().snapshot()
    }

    /// Number of levels (root + reserved).
    pub fn levels(&self) -> usize {
        self.level_cells.len()
    }

    #[inline]
    fn cell_off(&self, level: usize, pos: usize) -> usize {
        debug_assert!(pos < self.level_cells[level]);
        self.level_offsets[level] + pos * CELL_BYTES
    }

    fn read_cell(&self, level: usize, pos: usize) -> (bool, Record) {
        let mut raw = [0u8; CELL_BYTES];
        self.region.read_into(self.cell_off(level, pos), &mut raw);
        let bytes: [u8; RECORD_LEN] = raw[..RECORD_LEN].try_into().unwrap();
        (raw[RECORD_LEN] == 1, Record::from_bytes(&bytes))
    }

    fn write_cell(&self, level: usize, pos: usize, rec: &Record) {
        let off = self.cell_off(level, pos);
        self.region.write_pod(off, &rec.to_bytes());
        self.region.persist(off, RECORD_LEN);
        self.region.write_pod(off + RECORD_LEN, &1u8);
        self.region.persist(off + RECORD_LEN, 1);
    }

    fn clear_cell(&self, level: usize, pos: usize) {
        let off = self.cell_off(level, pos) + RECORD_LEN;
        self.region.write_pod(off, &0u8);
        self.region.persist(off, 1);
    }

    /// The two root positions of a key.
    fn roots(&self, key: &Key) -> [usize; 2] {
        let n = self.level_cells[0] as u64;
        [(key_hash(key) % n) as usize, (key_hash2(key) % n) as usize]
    }

    /// Walks both paths; calls `visit(level, pos, valid, record)`; stops
    /// early if it returns `true`.
    fn walk_paths(&self, key: &Key, mut visit: impl FnMut(usize, usize, bool, &Record) -> bool) {
        for mut pos in self.roots(key) {
            for level in 0..self.level_cells.len() {
                let (valid, rec) = self.read_cell(level, pos);
                if visit(level, pos, valid, &rec) {
                    return;
                }
                pos /= 2;
            }
        }
    }
}

impl HashIndex for PathHash {
    fn insert(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let _g = self.lock.write();
        // Duplicate check and first-empty discovery in one double walk.
        let mut dup = false;
        let mut empty: Option<(usize, usize)> = None;
        self.walk_paths(key, |level, pos, valid, rec| {
            if valid && rec.key == *key {
                dup = true;
                return true;
            }
            if !valid && empty.is_none() {
                empty = Some((level, pos));
            }
            false
        });
        if dup {
            return Err(IndexError::DuplicateKey);
        }
        match empty {
            Some((level, pos)) => {
                self.write_cell(level, pos, &Record::new(*key, *value));
                self.count.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            None => Err(IndexError::TableFull),
        }
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let _g = self.lock.read();
        let mut found = None;
        self.walk_paths(key, |_, _, valid, rec| {
            if valid && rec.key == *key {
                found = Some(rec.value);
                true
            } else {
                false
            }
        });
        found
    }

    fn update(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let _g = self.lock.write();
        let mut loc = None;
        self.walk_paths(key, |level, pos, valid, rec| {
            if valid && rec.key == *key {
                loc = Some((level, pos));
                true
            } else {
                false
            }
        });
        match loc {
            Some((level, pos)) => {
                // In-place (the original logs for consistency; only HDNH's
                // recovery is under evaluation).
                self.write_cell(level, pos, &Record::new(*key, *value));
                Ok(())
            }
            None => Err(IndexError::KeyNotFound),
        }
    }

    fn remove(&self, key: &Key) -> bool {
        let _g = self.lock.write();
        let mut loc = None;
        self.walk_paths(key, |level, pos, valid, rec| {
            if valid && rec.key == *key {
                loc = Some((level, pos));
                true
            } else {
                false
            }
        });
        match loc {
            Some((level, pos)) => {
                self.clear_cell(level, pos);
                self.count.fetch_sub(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn load_factor(&self) -> f64 {
        self.len() as f64 / self.total_cells as f64
    }

    fn scheme_name(&self) -> &'static str {
        "PATH"
    }
}

impl std::fmt::Debug for PathHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathHash")
            .field("len", &self.len())
            .field("levels", &self.levels())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(id: u64) -> Key {
        Key::from_u64(id)
    }
    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    fn table() -> PathHash {
        PathHash::new(PathParams {
            root_cells: 512,
            reserved_levels: 8,
            nvm: NvmOptions::fast(),
        })
    }

    #[test]
    fn geometry_is_inverted_tree() {
        let t = table();
        assert_eq!(t.levels(), 9);
        assert_eq!(t.level_cells[0], 512);
        assert_eq!(t.level_cells[8], 2);
        assert_eq!(t.total_cells, 512 + 256 + 128 + 64 + 32 + 16 + 8 + 4 + 2);
    }

    #[test]
    fn basic_crud() {
        let t = table();
        t.insert(&k(1), &v(10)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 10);
        assert_eq!(t.insert(&k(1), &v(11)), Err(IndexError::DuplicateKey));
        t.update(&k(1), &v(12)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 12);
        assert!(t.remove(&k(1)));
        assert_eq!(t.get(&k(1)), None);
        assert_eq!(t.update(&k(1), &v(0)), Err(IndexError::KeyNotFound));
    }

    #[test]
    fn reaches_high_load_factor() {
        // The stash tree should absorb collisions well past 50 % load.
        let t = table();
        let mut inserted = 0u64;
        loop {
            match t.insert(&k(inserted), &v(inserted)) {
                Ok(()) => inserted += 1,
                Err(IndexError::TableFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        let lf = t.load_factor();
        assert!(lf > 0.5, "path hashing filled only to {lf:.2}");
        for i in 0..inserted {
            assert_eq!(t.get(&k(i)).unwrap().as_u64(), i);
        }
    }

    #[test]
    fn table_full_is_reported_not_panicked() {
        let t = PathHash::new(PathParams {
            root_cells: 256,
            reserved_levels: 8,
            nvm: NvmOptions::fast(),
        });
        let mut i = 0u64;
        let err = loop {
            match t.insert(&k(i), &v(i)) {
                Ok(()) => i += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, IndexError::TableFull);
        // Table still fully functional.
        assert_eq!(t.get(&k(0)).unwrap().as_u64(), 0);
    }

    #[test]
    fn search_cost_grows_with_tree_depth() {
        // O(log B) reads per probe: a negative search must touch many
        // cells (both full paths).
        let t = table();
        let before = t.nvm_stats();
        let _ = t.get(&k(12345));
        let delta = t.nvm_stats().since(&before);
        assert_eq!(
            delta.reads, 18,
            "negative search should read 2 paths × 9 levels"
        );
    }

    #[test]
    fn concurrent_reads_with_writer() {
        use std::sync::Arc;
        let t = Arc::new(table());
        for i in 0..200 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..3 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    for i in 0..200 {
                        if let Some(val) = t.get(&k(i)) {
                            assert!(val.as_u64() == i || val.as_u64() == i + 1000, "round {round}");
                        }
                    }
                }
            }));
        }
        {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    t.update(&k(i), &v(i + 1000)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..200 {
            assert_eq!(t.get(&k(i)).unwrap().as_u64(), i + 1000);
        }
    }

    #[test]
    fn delete_frees_cells_for_reuse() {
        let t = PathHash::new(PathParams {
            root_cells: 256,
            reserved_levels: 4,
            nvm: NvmOptions::fast(),
        });
        let mut i = 0u64;
        while t.insert(&k(i), &v(i)).is_ok() {
            i += 1;
        }
        for j in 0..i {
            assert!(t.remove(&k(j)));
        }
        assert_eq!(t.len(), 0);
        // Capacity is available again (a disjoint key set collides
        // differently, so allow wide variance around the first fill).
        let mut j = 1_000_000u64;
        let mut reinserted = 0;
        while t.insert(&k(j), &v(j)).is_ok() {
            j += 1;
            reinserted += 1;
        }
        assert!(
            reinserted as f64 >= i as f64 * 0.5 && reinserted > 50,
            "reinserted {reinserted} of {i}"
        );
    }
}
