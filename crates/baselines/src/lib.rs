//! Baseline persistent hash tables the paper compares HDNH against (§4.1).
//!
//! All three are reimplemented from their original papers on the *same*
//! simulated-NVM substrate as HDNH, with the concurrency-control designs the
//! HDNH paper attributes to them — because the comparison is architectural:
//! how many NVM media events does each design put on the critical path, and
//! how coarse are its locks?
//!
//! * [`LevelHash`] — Level hashing (Zuo, Hua, Wu — OSDI'18): two bucket
//!   levels (sizes N and N/2), two hash locations per level, one-step
//!   cuckoo displacement, stop-the-world 2× resizing that rehashes the
//!   bottom level. Bucket-granularity reader-writer locks plus a global
//!   resize lock.
//! * [`Cceh`] — CCEH (Nam et al. — FAST'19): a directory over 16 KB
//!   segments, cacheline (64 B) buckets, linear probing across 4 buckets,
//!   segment splits with directory doubling, and directory-rebuild recovery
//!   from persisted per-segment depth/prefix headers. Segment-granularity
//!   reader-writer locks whose lock words live **in NVM**, so acquiring or
//!   releasing even a read lock is an NVM write — the overhead the HDNH
//!   paper calls out ("generates large amount of NVM writes").
//! * [`PathHash`] — Path hashing (Zuo, Hua — MSST'17): an inverted complete
//!   binary tree of reserved levels (8, per the paper's setup); every probe
//!   walks two root-to-leaf paths, so reads are O(log B); static size; one
//!   global reader-writer lock (the coarse-grained locking the HDNH paper
//!   criticizes).
//!
//! Record geometry (16-byte keys, 15-byte values) matches the evaluation's.


#![warn(missing_docs)]
pub mod cceh;
pub mod level;
pub mod path;

pub use cceh::{Cceh, CcehParams};
pub use level::{LevelHash, LevelParams};
pub use path::{PathHash, PathParams};
