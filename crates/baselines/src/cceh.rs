//! CCEH baseline (Nam, Cha, Choi, Noh, Nam — FAST'19), adapted to the
//! evaluation's 31-byte records.
//!
//! Cacheline-Conscious Extendible Hashing: a directory of pointers to
//! fixed-size **segments** (16 KB, as the HDNH paper configures it); inside
//! a segment, 64-byte cacheline **buckets** of two 32-byte slots (31-byte
//! record + 1-byte valid tag); **linear probing** across 4 consecutive
//! buckets bounds every lookup to one or two 256-byte media blocks. When a
//! segment fills, it **splits** by the next hash bit (local depth), doubling
//! the directory when the local depth exceeds the global depth.
//!
//! Segment index bits come from the hash MSBs, bucket index from the LSBs,
//! exactly like the original (that is what makes splits directory-friendly).
//!
//! Concurrency is the part the HDNH paper measures (§2, §4.5): CCEH takes a
//! **segment-granularity reader-writer lock, and the lock word lives in the
//! segment's NVM header**. Acquiring and releasing even a *read* lock is
//! therefore an NVM write — "unnecessary NVM access for read locks …
//! generates large amount of NVM writes". The lock here is a reader-counter
//! / writer-bit spinlock implemented directly on the region's atomic word,
//! so every acquire/release shows up in the region's write counters (and
//! pays write latency), mechanically reproducing that critique.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hdnh_common::hash::key_hash;
use hdnh_common::{HashIndex, IndexError, IndexResult, Key, Record, Value, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion, StatsSnapshot};
use parking_lot::RwLock;

/// Slot stride: record + valid tag.
const SLOT_BYTES: usize = 32;
/// Slots per 64-byte bucket.
const SLOTS_PER_BUCKET: usize = 2;
/// Bucket size (one cacheline).
const BUCKET_BYTES: usize = 64;
/// Linear probing distance in buckets (the paper sets 4).
pub const PROBE_BUCKETS: usize = 4;
/// Segment header: lock word, local-depth word and prefix word (the
/// segment's directory prefix, persisted so the directory is rebuildable —
/// CCEH's recovery story), padded to one bucket.
const SEG_HEADER: usize = 64;
const HDR_LOCK: usize = 0;
const HDR_LOCAL_DEPTH: usize = 8;
const HDR_PREFIX: usize = 16;

const WRITER_BIT: u64 = 1 << 63;

/// Configuration for [`Cceh`].
#[derive(Clone, Debug)]
pub struct CcehParams {
    /// Segment payload size in bytes (16 KB per the HDNH paper's setup).
    pub segment_bytes: usize,
    /// Initial global depth (directory has `2^depth` entries).
    pub initial_depth: u32,
    /// NVM simulation options.
    pub nvm: NvmOptions,
}

impl CcehParams {
    /// Sized so `records` fit at ≈70 % load with the initial directory.
    pub fn for_capacity(records: usize) -> Self {
        let per_segment = (16 * 1024 / BUCKET_BYTES) * SLOTS_PER_BUCKET; // 512
        let segments = ((records as f64 / 0.7) / per_segment as f64).ceil() as usize;
        CcehParams {
            segment_bytes: 16 * 1024,
            initial_depth: segments.next_power_of_two().trailing_zeros().max(1),
            nvm: NvmOptions::fast(),
        }
    }
}

impl Default for CcehParams {
    fn default() -> Self {
        CcehParams {
            segment_bytes: 16 * 1024,
            initial_depth: 1,
            nvm: NvmOptions::fast(),
        }
    }
}

/// One segment: an NVM region holding `[header][buckets…]`.
struct Segment {
    region: Arc<NvmRegion>,
    n_buckets: usize,
    /// Local depth mirrored in DRAM (also persisted in the header).
    local_depth: std::sync::atomic::AtomicU32,
}

impl Segment {
    fn new(segment_bytes: usize, local_depth: u32, prefix: u64, opts: &NvmOptions) -> Arc<Self> {
        let n_buckets = segment_bytes / BUCKET_BYTES;
        assert!(n_buckets.is_power_of_two());
        let region = NvmRegion::new(SEG_HEADER + segment_bytes, opts.clone());
        region.atomic_store_u64(HDR_LOCAL_DEPTH, local_depth as u64, Ordering::Release);
        region.persist(HDR_LOCAL_DEPTH, 8);
        region.atomic_store_u64(HDR_PREFIX, prefix, Ordering::Release);
        region.persist(HDR_PREFIX, 8);
        Arc::new(Segment {
            region: Arc::new(region),
            n_buckets,
            local_depth: std::sync::atomic::AtomicU32::new(local_depth),
        })
    }

    /// Re-adopts a persisted segment region (recovery). Reads the depth and
    /// prefix from the header; the lock word is reset (locks are volatile).
    fn from_region(region: Arc<NvmRegion>, segment_bytes: usize) -> (Arc<Self>, u32, u64) {
        assert_eq!(region.len(), SEG_HEADER + segment_bytes, "segment size mismatch");
        region.atomic_store_u64(HDR_LOCK, 0, Ordering::Release);
        let depth = region.atomic_load_u64_cached(HDR_LOCAL_DEPTH, Ordering::Acquire) as u32;
        let prefix = region.atomic_load_u64_cached(HDR_PREFIX, Ordering::Acquire);
        let n_buckets = segment_bytes / BUCKET_BYTES;
        (
            Arc::new(Segment {
                region,
                n_buckets,
                local_depth: std::sync::atomic::AtomicU32::new(depth),
            }),
            depth,
            prefix,
        )
    }

    // ---- the in-NVM reader-writer lock ----

    /// Read-lock: CAS the reader count up. Every attempt is an NVM write.
    fn lock_read(&self) {
        loop {
            let v = self.region.atomic_load_u64_cached(0, Ordering::Acquire);
            if v & WRITER_BIT != 0 {
                std::hint::spin_loop();
                continue;
            }
            if self
                .region
                .atomic_cas_u64(0, v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    fn unlock_read(&self) {
        loop {
            let v = self.region.atomic_load_u64_cached(0, Ordering::Relaxed);
            if self
                .region
                .atomic_cas_u64(0, v, v - 1, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    fn lock_write(&self) {
        // Claim the writer bit, then wait for readers to drain.
        loop {
            let v = self.region.atomic_load_u64_cached(0, Ordering::Acquire);
            if v & WRITER_BIT != 0 {
                std::hint::spin_loop();
                continue;
            }
            if self
                .region
                .atomic_cas_u64(0, v, v | WRITER_BIT, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        while self.region.atomic_load_u64_cached(0, Ordering::Acquire) != WRITER_BIT {
            std::hint::spin_loop();
        }
    }

    fn unlock_write(&self) {
        self.region.atomic_store_u64(0, 0, Ordering::Release);
    }

    // ---- layout ----

    #[inline]
    fn slot_off(&self, bucket: usize, slot: usize) -> usize {
        SEG_HEADER + bucket * BUCKET_BYTES + slot * SLOT_BYTES
    }

    /// Reads the full probe window (4 buckets, wrapping within the segment)
    /// with at most two charged accesses.
    fn read_probe_window(
        &self,
        first_bucket: usize,
    ) -> [(bool, Record); PROBE_BUCKETS * SLOTS_PER_BUCKET] {
        let mut raw = [0u8; PROBE_BUCKETS * BUCKET_BYTES];
        let contiguous = (first_bucket + PROBE_BUCKETS).min(self.n_buckets) - first_bucket;
        self.region.read_into(
            SEG_HEADER + first_bucket * BUCKET_BYTES,
            &mut raw[..contiguous * BUCKET_BYTES],
        );
        if contiguous < PROBE_BUCKETS {
            let rest = PROBE_BUCKETS - contiguous;
            self.region
                .read_into(SEG_HEADER, &mut raw[contiguous * BUCKET_BYTES..][..rest * BUCKET_BYTES]);
        }
        let mut out = [(false, Record::new(Key::ZERO, Value::ZERO));
            PROBE_BUCKETS * SLOTS_PER_BUCKET];
        for (i, entry) in out.iter_mut().enumerate() {
            let base = i * SLOT_BYTES;
            let rec_bytes: [u8; RECORD_LEN] = raw[base..base + RECORD_LEN].try_into().unwrap();
            *entry = (raw[base + RECORD_LEN] == 1, Record::from_bytes(&rec_bytes));
        }
        out
    }

    /// Absolute (bucket, slot) of probe-window entry `i` starting at
    /// `first_bucket`.
    fn window_pos(&self, first_bucket: usize, i: usize) -> (usize, usize) {
        let b = (first_bucket + i / SLOTS_PER_BUCKET) % self.n_buckets;
        (b, i % SLOTS_PER_BUCKET)
    }

    fn write_record(&self, bucket: usize, slot: usize, rec: &Record) {
        let off = self.slot_off(bucket, slot);
        self.region.write_pod(off, &rec.to_bytes());
        self.region.persist(off, RECORD_LEN);
        // Valid tag last: 1-byte store is failure-atomic.
        self.region.write_pod(off + RECORD_LEN, &1u8);
        self.region.persist(off + RECORD_LEN, 1);
    }

    fn clear_slot(&self, bucket: usize, slot: usize) {
        let off = self.slot_off(bucket, slot) + RECORD_LEN;
        self.region.write_pod(off, &0u8);
        self.region.persist(off, 1);
    }

    #[cfg_attr(not(test), allow(dead_code))] // test-only audit helper
    fn count_valid(&self) -> usize {
        let mut n = 0;
        for b in 0..self.n_buckets {
            for s in 0..SLOTS_PER_BUCKET {
                let tag: u8 = self.region.read_pod(self.slot_off(b, s) + RECORD_LEN);
                n += (tag == 1) as usize;
            }
        }
        n
    }
}

struct Directory {
    global_depth: u32,
    entries: Vec<Arc<Segment>>,
}

/// CCEH: directory + segments, segment r/w locks resident in NVM.
///
/// ```
/// use hdnh_baselines::{Cceh, CcehParams};
/// use hdnh_common::{HashIndex, Key, Value};
///
/// let t = Cceh::new(CcehParams::default());
/// for i in 0..2_000u64 {
///     t.insert(&Key::from_u64(i), &Value::from_u64(i)).unwrap();
/// }
/// assert!(t.split_count() > 0, "growth happens through segment splits");
/// assert_eq!(t.get(&Key::from_u64(777)).unwrap().as_u64(), 777);
/// ```
pub struct Cceh {
    params: CcehParams,
    dir: RwLock<Directory>,
    count: AtomicUsize,
    splits: AtomicUsize,
}

impl Cceh {
    /// Creates an empty table.
    pub fn new(params: CcehParams) -> Self {
        assert!(params.segment_bytes.is_multiple_of(BUCKET_BYTES));
        let n = 1usize << params.initial_depth;
        let entries = (0..n)
            .map(|i| Segment::new(params.segment_bytes, params.initial_depth, i as u64, &params.nvm))
            .collect();
        Cceh {
            dir: RwLock::new(Directory {
                global_depth: params.initial_depth,
                entries,
            }),
            params,
            count: AtomicUsize::new(0),
            splits: AtomicUsize::new(0),
        }
    }

    /// Completed segment splits.
    pub fn split_count(&self) -> usize {
        self.splits.load(Ordering::Relaxed)
    }

    /// Aggregated media counters over all segments.
    pub fn nvm_stats(&self) -> StatsSnapshot {
        let dir = self.dir.read();
        let mut acc = StatsSnapshot::default();
        let mut seen = std::collections::HashSet::new();
        for seg in &dir.entries {
            if seen.insert(Arc::as_ptr(seg) as usize) {
                let s = seg.region.stats().snapshot();
                acc.reads += s.reads;
                acc.read_bytes += s.read_bytes;
                acc.read_blocks += s.read_blocks;
                acc.writes += s.writes;
                acc.write_bytes += s.write_bytes;
                acc.write_lines += s.write_lines;
                acc.flushes += s.flushes;
                acc.fences += s.fences;
            }
        }
        acc
    }

    #[inline]
    fn seg_index(h: u64, global_depth: u32) -> usize {
        if global_depth == 0 {
            0
        } else {
            (h >> (64 - global_depth)) as usize
        }
    }

    #[inline]
    fn bucket_index(h: u64, n_buckets: usize) -> usize {
        (h as usize) & (n_buckets - 1)
    }

    fn segment_for(&self, h: u64) -> Arc<Segment> {
        let dir = self.dir.read();
        Arc::clone(&dir.entries[Self::seg_index(h, dir.global_depth)])
    }

    /// Splits the segment currently owning `h`, doubling the directory if
    /// needed. Returns after the directory maps `h` to a segment with free
    /// probability again (caller retries the insert).
    ///
    /// Lock order is segment-then-directory everywhere (search re-checks
    /// take the directory read lock while holding a segment read lock), so
    /// the split must win its segment's write lock *before* touching the
    /// directory.
    fn split(&self, h: u64) {
        let old = loop {
            let seg = self.segment_for(h);
            seg.lock_write();
            let dir = self.dir.read();
            let still = Arc::ptr_eq(&dir.entries[Self::seg_index(h, dir.global_depth)], &seg);
            drop(dir);
            if still {
                break seg;
            }
            seg.unlock_write(); // lost a race with another split
        };
        let mut dir = self.dir.write();
        let local = old.local_depth.load(Ordering::Acquire);

        // Collect the segment's live records once.
        let mut records: Vec<(u64, Record)> = Vec::new();
        for b in 0..old.n_buckets {
            for s in 0..SLOTS_PER_BUCKET {
                let off = old.slot_off(b, s);
                let tag: u8 = old.region.read_pod(off + RECORD_LEN);
                if tag == 1 {
                    let bytes: [u8; RECORD_LEN] = old.region.read_pod(off);
                    let rec = Record::from_bytes(&bytes);
                    records.push((key_hash(&rec.key), rec));
                }
            }
        }

        // A 2-way split can itself overflow a child's probe window when the
        // window's residents share the split bit; real CCEH answers with a
        // cascading split of the child. We pick the smallest k such that a
        // 2^k-way split (by the next k hash bits) fits every child, checked
        // with a DRAM simulation before any NVM write.
        let n_buckets = old.n_buckets;
        let mut k = 1u32;
        loop {
            assert!(local + k <= 48, "cceh split could not separate records");
            let parts = 1usize << k;
            let mut occupancy = vec![vec![0u8; n_buckets]; parts];
            let mut ok = true;
            'sim: for (kh, _) in &records {
                let child = ((kh >> (64 - local - k)) & (parts as u64 - 1)) as usize;
                let fb = Self::bucket_index(*kh, n_buckets);
                for d in 0..PROBE_BUCKETS {
                    let b = (fb + d) % n_buckets;
                    if occupancy[child][b] < SLOTS_PER_BUCKET as u8 {
                        occupancy[child][b] += 1;
                        continue 'sim;
                    }
                }
                ok = false;
                break;
            }
            if ok {
                break;
            }
            k += 1;
        }
        let new_depth = local + k;
        let parts = 1usize << k;

        while dir.global_depth < new_depth {
            let doubled: Vec<Arc<Segment>> = dir
                .entries
                .iter()
                .flat_map(|e| [Arc::clone(e), Arc::clone(e)])
                .collect();
            dir.entries = doubled;
            dir.global_depth += 1;
        }

        let old_prefix = old.region.atomic_load_u64_cached(HDR_PREFIX, Ordering::Acquire);
        let children: Vec<Arc<Segment>> = (0..parts)
            .map(|j| {
                Segment::new(
                    self.params.segment_bytes,
                    new_depth,
                    (old_prefix << k) | j as u64,
                    &self.params.nvm,
                )
            })
            .collect();
        for (kh, rec) in &records {
            let child = &children[((kh >> (64 - new_depth)) & (parts as u64 - 1)) as usize];
            let fb = Self::bucket_index(*kh, child.n_buckets);
            let window = child.read_probe_window(fb);
            let slot = window
                .iter()
                .position(|(valid, _)| !valid)
                .expect("simulation guaranteed a free slot");
            let (tb, ts) = child.window_pos(fb, slot);
            child.write_record(tb, ts, rec);
        }

        // Redirect all directory entries that pointed at `old`: the group of
        // 2^(G-local) entries splits evenly across the children.
        let group_bits = dir.global_depth - local;
        let group = (Self::seg_index(h, dir.global_depth) >> group_bits) << group_bits;
        let span = 1usize << (dir.global_depth - new_depth);
        for (j, child) in children.iter().enumerate() {
            for slot in dir.entries[group + j * span..group + (j + 1) * span].iter_mut() {
                *slot = Arc::clone(child);
            }
        }
        drop(dir);
        old.unlock_write();
        self.splits.fetch_add(1, Ordering::Relaxed);
    }
}

/// The persistent half of a CCEH instance: its segment regions, in any
/// order (each header carries the local depth and directory prefix needed
/// to rebuild the directory — CCEH's recovery design).
pub struct CcehPool {
    /// Segment regions (deduplicated).
    pub segments: Vec<Arc<NvmRegion>>,
    /// Segment payload size the pool was built with.
    pub segment_bytes: usize,
}

impl Cceh {
    /// Shutdown: drop the volatile directory, keep the segment regions.
    pub fn into_pool(self) -> CcehPool {
        let dir = self.dir.into_inner();
        let mut seen = std::collections::HashSet::new();
        let mut segments = Vec::new();
        for seg in &dir.entries {
            if seen.insert(Arc::as_ptr(seg) as usize) {
                segments.push(Arc::clone(&seg.region));
            }
        }
        CcehPool {
            segments,
            segment_bytes: self.params.segment_bytes,
        }
    }

    /// Rebuilds the directory from persisted segment headers and recounts
    /// live records — extendible hashing's recovery path.
    ///
    /// Panics if the segments do not tile the directory exactly (corrupt or
    /// incomplete pool).
    pub fn recover(params: CcehParams, pool: CcehPool) -> Cceh {
        assert_eq!(params.segment_bytes, pool.segment_bytes, "segment size mismatch");
        let mut parsed = Vec::with_capacity(pool.segments.len());
        let mut global_depth = 1u32;
        for region in pool.segments {
            let (seg, depth, prefix) = Segment::from_region(region, params.segment_bytes);
            global_depth = global_depth.max(depth);
            parsed.push((seg, depth, prefix));
        }
        let size = 1usize << global_depth;
        let mut entries: Vec<Option<Arc<Segment>>> = vec![None; size];
        let mut count = 0usize;
        for (seg, depth, prefix) in parsed {
            let span = 1usize << (global_depth - depth);
            let base = (prefix as usize) << (global_depth - depth);
            for slot in entries[base..base + span].iter_mut() {
                assert!(slot.is_none(), "segments overlap in the directory");
                *slot = Some(Arc::clone(&seg));
            }
            count += seg.count_valid();
        }
        let entries: Vec<Arc<Segment>> = entries
            .into_iter()
            .map(|s| s.expect("directory hole: missing segment"))
            .collect();
        Cceh {
            dir: RwLock::new(Directory {
                global_depth,
                entries,
            }),
            params,
            count: AtomicUsize::new(count),
            splits: AtomicUsize::new(0),
        }
    }
}

impl HashIndex for Cceh {
    fn insert(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let h = key_hash(key);
        let rec = Record::new(*key, *value);
        loop {
            let seg = self.segment_for(h);
            seg.lock_write();
            // Re-check the directory still maps h here (split race).
            if !Arc::ptr_eq(&seg, &self.segment_for(h)) {
                seg.unlock_write();
                continue;
            }
            let fb = Self::bucket_index(h, seg.n_buckets);
            let window = seg.read_probe_window(fb);
            // Duplicate check within the probe window.
            for (valid, wrec) in window.iter() {
                if *valid && wrec.key == *key {
                    seg.unlock_write();
                    return Err(IndexError::DuplicateKey);
                }
            }
            for (i, (valid, _)) in window.iter().enumerate() {
                if !valid {
                    let (b, s) = seg.window_pos(fb, i);
                    seg.write_record(b, s, &rec);
                    seg.unlock_write();
                    self.count.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
            seg.unlock_write();
            self.split(h);
        }
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let h = key_hash(key);
        loop {
            let seg = self.segment_for(h);
            seg.lock_read(); // NVM write — CCEH's read-lock cost
            if !Arc::ptr_eq(&seg, &self.segment_for(h)) {
                seg.unlock_read();
                continue;
            }
            let fb = Self::bucket_index(h, seg.n_buckets);
            let window = seg.read_probe_window(fb);
            let found = window
                .iter()
                .find(|(valid, rec)| *valid && rec.key == *key)
                .map(|(_, rec)| rec.value);
            seg.unlock_read();
            return found;
        }
    }

    fn update(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let h = key_hash(key);
        let rec = Record::new(*key, *value);
        loop {
            let seg = self.segment_for(h);
            seg.lock_write();
            if !Arc::ptr_eq(&seg, &self.segment_for(h)) {
                seg.unlock_write();
                continue;
            }
            let fb = Self::bucket_index(h, seg.n_buckets);
            let window = seg.read_probe_window(fb);
            for (i, (valid, wrec)) in window.iter().enumerate() {
                if *valid && wrec.key == *key {
                    let (b, s) = seg.window_pos(fb, i);
                    // In-place value update (original CCEH is not
                    // failure-atomic for values either; lazy recovery).
                    seg.write_record(b, s, &rec);
                    seg.unlock_write();
                    return Ok(());
                }
            }
            seg.unlock_write();
            return Err(IndexError::KeyNotFound);
        }
    }

    fn remove(&self, key: &Key) -> bool {
        let h = key_hash(key);
        loop {
            let seg = self.segment_for(h);
            seg.lock_write();
            if !Arc::ptr_eq(&seg, &self.segment_for(h)) {
                seg.unlock_write();
                continue;
            }
            let fb = Self::bucket_index(h, seg.n_buckets);
            let window = seg.read_probe_window(fb);
            for (i, (valid, wrec)) in window.iter().enumerate() {
                if *valid && wrec.key == *key {
                    let (b, s) = seg.window_pos(fb, i);
                    seg.clear_slot(b, s);
                    seg.unlock_write();
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
            seg.unlock_write();
            return false;
        }
    }

    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    fn load_factor(&self) -> f64 {
        let dir = self.dir.read();
        let mut seen = std::collections::HashSet::new();
        let mut slots = 0usize;
        for seg in &dir.entries {
            if seen.insert(Arc::as_ptr(seg) as usize) {
                slots += seg.n_buckets * SLOTS_PER_BUCKET;
            }
        }
        self.len() as f64 / slots as f64
    }

    fn scheme_name(&self) -> &'static str {
        "CCEH"
    }
}

impl std::fmt::Debug for Cceh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cceh")
            .field("len", &self.len())
            .field("splits", &self.split_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(id: u64) -> Key {
        Key::from_u64(id)
    }
    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    fn small() -> Cceh {
        Cceh::new(CcehParams {
            segment_bytes: 1024, // 16 buckets, 32 slots per segment
            initial_depth: 1,
            nvm: NvmOptions::fast(),
        })
    }

    #[test]
    fn basic_crud() {
        let t = small();
        t.insert(&k(1), &v(10)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 10);
        assert_eq!(t.insert(&k(1), &v(11)), Err(IndexError::DuplicateKey));
        t.update(&k(1), &v(12)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 12);
        assert!(t.remove(&k(1)));
        assert!(!t.remove(&k(1)));
        assert_eq!(t.get(&k(1)), None);
    }

    #[test]
    fn grows_through_splits_and_doubling() {
        let t = small();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(&k(i), &v(i ^ 7)).unwrap();
        }
        assert!(t.split_count() > 2, "expected several splits");
        for i in 0..n {
            assert_eq!(t.get(&k(i)).unwrap().as_u64(), i ^ 7, "key {i}");
        }
        assert_eq!(t.len(), n as usize);
        let dir = t.dir.read();
        assert!(dir.global_depth > 1);
        assert_eq!(dir.entries.len(), 1 << dir.global_depth);
    }

    #[test]
    fn split_preserves_all_records() {
        let t = small();
        // Insert until exactly one split has happened, then verify.
        let mut i = 0u64;
        while t.split_count() == 0 {
            t.insert(&k(i), &v(i)).unwrap();
            i += 1;
        }
        for j in 0..i {
            assert_eq!(t.get(&k(j)).unwrap().as_u64(), j, "key {j} lost in split");
        }
        // Count on media agrees.
        let dir = t.dir.read();
        let mut seen = std::collections::HashSet::new();
        let mut on_media = 0;
        for seg in &dir.entries {
            if seen.insert(Arc::as_ptr(seg) as usize) {
                on_media += seg.count_valid();
            }
        }
        assert_eq!(on_media, i as usize);
    }

    #[test]
    fn read_locks_write_to_nvm() {
        // The HDNH paper's critique, verified mechanically: CCEH searches
        // generate NVM writes for lock acquire/release.
        let t = small();
        for i in 0..20 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let before = t.nvm_stats();
        for i in 0..20 {
            let _ = t.get(&k(i));
        }
        let delta = t.nvm_stats().since(&before);
        assert!(
            delta.writes >= 40,
            "expected ≥2 NVM writes per search (lock/unlock), got {}",
            delta.writes
        );
    }

    #[test]
    fn probe_window_is_at_most_two_blocks() {
        let t = small();
        t.insert(&k(42), &v(1)).unwrap();
        let before = t.nvm_stats();
        let _ = t.get(&k(42));
        let delta = t.nvm_stats().since(&before);
        assert!(
            delta.read_blocks <= 2,
            "probe read {} blocks",
            delta.read_blocks
        );
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        use std::sync::Arc as StdArc;
        let t = StdArc::new(Cceh::new(CcehParams {
            segment_bytes: 4096,
            initial_depth: 2,
            nvm: NvmOptions::fast(),
        }));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = StdArc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let id = tid * 1_000_000 + i;
                    t.insert(&k(id), &v(id)).unwrap();
                    assert_eq!(t.get(&k(id)).unwrap().as_u64(), id);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
        for tid in 0..4u64 {
            for i in (0..2_000u64).step_by(101) {
                let id = tid * 1_000_000 + i;
                assert_eq!(t.get(&k(id)).unwrap().as_u64(), id);
            }
        }
    }

    #[test]
    fn recover_rebuilds_directory_after_shutdown() {
        let t = small();
        for i in 0..3_000u64 {
            t.insert(&k(i), &v(i * 2)).unwrap();
        }
        assert!(t.split_count() > 0, "want splits before recovery");
        let params = CcehParams {
            segment_bytes: 1024,
            initial_depth: 1,
            nvm: NvmOptions::fast(),
        };
        let pool = t.into_pool();
        let r = Cceh::recover(params, pool);
        assert_eq!(r.len(), 3_000);
        for i in 0..3_000u64 {
            assert_eq!(r.get(&k(i)).unwrap().as_u64(), i * 2, "key {i}");
        }
        // Recovered table keeps working (inserts, further splits).
        for i in 3_000..6_000u64 {
            r.insert(&k(i), &v(i)).unwrap();
        }
        assert_eq!(r.len(), 6_000);
    }

    #[test]
    fn recover_after_crash_preserves_acknowledged_inserts() {
        // Inserts are failure-atomic (record persisted, then the 1-byte
        // valid tag); recovery after a crash must see every acknowledged
        // insert. (In-place updates are NOT failure-atomic in CCEH — the
        // original defers that to lazy recovery — so only inserts are
        // asserted here.)
        let params = CcehParams {
            segment_bytes: 1024,
            initial_depth: 1,
            nvm: NvmOptions::strict(),
        };
        let t = Cceh::new(params.clone());
        for i in 0..500u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let pool = t.into_pool();
        let mut rng = hdnh_common::rng::XorShift64Star::new(3);
        for region in &pool.segments {
            region.crash(&mut rng);
        }
        let r = Cceh::recover(params, pool);
        assert_eq!(r.len(), 500);
        for i in 0..500u64 {
            assert_eq!(r.get(&k(i)).unwrap().as_u64(), i, "key {i}");
        }
    }

    #[test]
    #[should_panic(expected = "segment size mismatch")]
    fn recover_with_wrong_geometry_panics() {
        let t = small();
        let pool = t.into_pool();
        let wrong = CcehParams {
            segment_bytes: 2048,
            initial_depth: 1,
            nvm: NvmOptions::fast(),
        };
        let _ = Cceh::recover(wrong, pool);
    }

    #[test]
    fn for_capacity_sizes_sensibly() {
        let p = CcehParams::for_capacity(100_000);
        let t = Cceh::new(p);
        for i in 0..10_000u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        assert_eq!(t.len(), 10_000);
    }
}
