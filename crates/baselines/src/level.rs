//! Level hashing baseline (Zuo, Hua, Wu — OSDI'18), adapted to the
//! evaluation's 31-byte records.
//!
//! Structure: a top level of `N` buckets and a bottom level of `N/2`
//! buckets. Each key has two hash locations per level (four candidate
//! buckets total, 4 slots each). Inserts that find no free slot attempt one
//! **one-step cuckoo displacement** (move an occupant of a candidate bucket
//! to its alternative location in the same level); if that fails, a
//! stop-the-world resize rehashes the bottom level into a fresh top level
//! twice the size of the old top (the old top becomes the new bottom).
//!
//! Buckets are 136 bytes (8-byte persisted bitmap header + 4 × 31 B slots) —
//! deliberately *not* aligned to AEP's 256-byte blocks, so roughly a third
//! of bucket probes straddle two media blocks. That is the read-amplification
//! disadvantage the HDNH paper assigns to 128-byte-bucket schemes (§2.1,
//! issue 1), and it emerges here mechanically from the layout.
//!
//! Concurrency: a reader-writer lock **per bucket** (taken in index order
//! to avoid deadlock) plus a global resize lock — the "bucket-level locking
//! … prevents concurrent accesses" design §2.2 describes.

use std::sync::atomic::Ordering;
use std::sync::atomic::{AtomicUsize, Ordering as AOrd};

use hdnh_common::hash::{key_hash, key_hash2};
use hdnh_common::{HashIndex, IndexError, IndexResult, Key, Record, Value, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion, StatsSnapshot};
use parking_lot::{RwLock, RwLockWriteGuard};

/// Slots per bucket (the Level hashing paper's choice).
pub const SLOTS: usize = 4;
/// Bucket stride: 8-byte header + 4 records, kept 8-byte aligned.
pub const BUCKET_STRIDE: usize = 8 + SLOTS * RECORD_LEN + 1; // 133 -> pad
const BUCKET_BYTES: usize = 136;
const _: () = assert!(BUCKET_BYTES >= 8 + SLOTS * RECORD_LEN && BUCKET_BYTES.is_multiple_of(8));

/// Configuration for [`LevelHash`].
#[derive(Clone, Debug)]
pub struct LevelParams {
    /// Initial top-level bucket count (power of two). Bottom level has half.
    pub initial_top_buckets: usize,
    /// NVM simulation options.
    pub nvm: NvmOptions,
}

impl LevelParams {
    /// Sized so `records` items fit at ≈75 % load without resizing.
    pub fn for_capacity(records: usize) -> Self {
        let slots_needed = (records as f64 / 0.75).ceil() as usize;
        // total slots = 1.5 × top × SLOTS.
        let top = (slots_needed as f64 / (1.5 * SLOTS as f64)).ceil() as usize;
        LevelParams {
            initial_top_buckets: top.next_power_of_two().max(4),
            nvm: NvmOptions::fast(),
        }
    }
}

impl Default for LevelParams {
    fn default() -> Self {
        LevelParams {
            initial_top_buckets: 8,
            nvm: NvmOptions::fast(),
        }
    }
}

struct LevelStorage {
    region: NvmRegion,
    n_buckets: usize,
    locks: Box<[RwLock<()>]>,
}

impl LevelStorage {
    fn new(n_buckets: usize, opts: &NvmOptions) -> Self {
        let mut locks = Vec::with_capacity(n_buckets);
        locks.resize_with(n_buckets, || RwLock::new(()));
        LevelStorage {
            region: NvmRegion::new(n_buckets * BUCKET_BYTES, opts.clone()),
            n_buckets,
            locks: locks.into_boxed_slice(),
        }
    }

    #[inline]
    fn header_off(&self, b: usize) -> usize {
        b * BUCKET_BYTES
    }

    #[inline]
    fn slot_off(&self, b: usize, s: usize) -> usize {
        b * BUCKET_BYTES + 8 + s * RECORD_LEN
    }

    fn header(&self, b: usize) -> u64 {
        self.region.atomic_load_u64(self.header_off(b), Ordering::Acquire)
    }

    /// Reads the whole bucket in one charged access (1–2 media blocks,
    /// depending on alignment).
    fn read_bucket(&self, b: usize) -> (u64, [Record; SLOTS]) {
        let mut raw = [0u8; BUCKET_BYTES];
        self.region.read_into(self.header_off(b), &mut raw);
        let header = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let mut recs = [Record::new(Key::ZERO, Value::ZERO); SLOTS];
        for (i, rec) in recs.iter_mut().enumerate() {
            let start = 8 + i * RECORD_LEN;
            let bytes: [u8; RECORD_LEN] = raw[start..start + RECORD_LEN].try_into().unwrap();
            *rec = Record::from_bytes(&bytes);
        }
        (header, recs)
    }

    fn write_slot(&self, b: usize, s: usize, rec: &Record) {
        let off = self.slot_off(b, s);
        self.region.write_pod(off, &rec.to_bytes());
        self.region.persist(off, RECORD_LEN);
    }

    fn set_valid(&self, b: usize, s: usize) {
        let off = self.header_off(b);
        self.region.atomic_fetch_or_u64(off, 1 << s, Ordering::AcqRel);
        self.region.persist(off, 8);
    }

    fn clear_valid(&self, b: usize, s: usize) {
        let off = self.header_off(b);
        self.region.atomic_fetch_and_u64(off, !(1 << s), Ordering::AcqRel);
        self.region.persist(off, 8);
    }

    #[cfg_attr(not(test), allow(dead_code))] // test-only audit helper
    fn count_valid(&self) -> usize {
        (0..self.n_buckets)
            .map(|b| self.header(b).count_ones() as usize)
            .sum()
    }
}

struct Tables {
    top: LevelStorage,
    bottom: LevelStorage,
}

impl Tables {
    /// Candidate buckets per level: two hash locations.
    fn candidates(storage: &LevelStorage, key: &Key) -> [usize; 2] {
        let n = storage.n_buckets as u64;
        [(key_hash(key) % n) as usize, (key_hash2(key) % n) as usize]
    }

    fn levels(&self) -> [&LevelStorage; 2] {
        [&self.top, &self.bottom]
    }
}

/// Level hashing with bucket-level reader-writer locks and a global resize
/// lock.
///
/// ```
/// use hdnh_baselines::{LevelHash, LevelParams};
/// use hdnh_common::{HashIndex, Key, Value};
///
/// let t = LevelHash::new(LevelParams::for_capacity(1_000));
/// t.insert(&Key::from_u64(1), &Value::from_u64(10)).unwrap();
/// assert_eq!(t.get(&Key::from_u64(1)).unwrap().as_u64(), 10);
/// ```
pub struct LevelHash {
    params: LevelParams,
    tables: RwLock<Tables>,
    count: AtomicUsize,
    resizes: AtomicUsize,
}

impl LevelHash {
    /// Creates an empty table.
    pub fn new(params: LevelParams) -> Self {
        assert!(params.initial_top_buckets.is_power_of_two());
        assert!(params.initial_top_buckets >= 4);
        let top = LevelStorage::new(params.initial_top_buckets, &params.nvm);
        let bottom = LevelStorage::new(params.initial_top_buckets / 2, &params.nvm);
        LevelHash {
            params,
            tables: RwLock::new(Tables { top, bottom }),
            count: AtomicUsize::new(0),
            resizes: AtomicUsize::new(0),
        }
    }

    /// Completed resize count.
    pub fn resize_count(&self) -> usize {
        self.resizes.load(AOrd::Relaxed)
    }

    /// Aggregated media counters.
    pub fn nvm_stats(&self) -> StatsSnapshot {
        let t = self.tables.read();
        let a = t.top.region.stats().snapshot();
        let b = t.bottom.region.stats().snapshot();
        StatsSnapshot {
            reads: a.reads + b.reads,
            read_bytes: a.read_bytes + b.read_bytes,
            read_blocks: a.read_blocks + b.read_blocks,
            writes: a.writes + b.writes,
            write_bytes: a.write_bytes + b.write_bytes,
            write_lines: a.write_lines + b.write_lines,
            flushes: a.flushes + b.flushes,
            fences: a.fences + b.fences,
        }
    }

    fn find_in(
        storage: &LevelStorage,
        key: &Key,
    ) -> Option<(usize, usize, Value)> {
        for b in Tables::candidates(storage, key) {
            let _g = storage.locks[b].read();
            let (header, recs) = storage.read_bucket(b);
            for (s, rec) in recs.iter().enumerate() {
                if header & (1 << s) != 0 && rec.key == *key {
                    return Some((b, s, rec.value));
                }
            }
        }
        None
    }

    /// Tries to insert into a free slot of bucket `b` (write lock held by
    /// caller).
    fn insert_into_locked(storage: &LevelStorage, b: usize, rec: &Record) -> bool {
        let header = storage.header(b);
        for s in 0..SLOTS {
            if header & (1 << s) == 0 {
                storage.write_slot(b, s, rec);
                storage.set_valid(b, s);
                return true;
            }
        }
        false
    }

    /// One-step cuckoo displacement inside one level: evict an occupant of
    /// `b` to its alternative bucket, freeing a slot for `rec`.
    fn try_displace(storage: &LevelStorage, b: usize, rec: &Record) -> bool {
        let (header, recs) = {
            let _g = storage.locks[b].read();
            storage.read_bucket(b)
        };
        for (s, &occupant) in recs.iter().enumerate() {
            if header & (1 << s) == 0 {
                continue;
            }
            let alts = Tables::candidates(storage, &occupant.key);
            let alt = if alts[0] == b { alts[1] } else { alts[0] };
            if alt == b {
                continue;
            }
            // Lock both buckets in index order (deadlock avoidance).
            let (lo, hi) = (b.min(alt), b.max(alt));
            let _g1 = storage.locks[lo].write();
            let _g2: Option<RwLockWriteGuard<()>> =
                (hi != lo).then(|| storage.locks[hi].write());
            // Re-validate under the locks.
            let header_now = storage.header(b);
            if header_now & (1 << s) == 0 {
                continue;
            }
            let occupant_now = storage.read_bucket(b).1[s];
            if occupant_now.key != occupant.key {
                continue;
            }
            if Self::insert_into_locked(storage, alt, &occupant_now) {
                // Occupant now lives in both buckets; clear the source,
                // then reuse the freed slot.
                storage.clear_valid(b, s);
                storage.write_slot(b, s, rec);
                storage.set_valid(b, s);
                return true;
            }
        }
        false
    }

    /// Stop-the-world resize: rehash the bottom level into a new top level
    /// twice the size of the current top; the old top becomes the bottom.
    fn resize(&self, observed_top: usize) {
        let mut t = self.tables.write();
        if t.top.n_buckets != observed_top {
            return; // another thread already resized
        }
        let new_top = LevelStorage::new(t.top.n_buckets * 2, &self.params.nvm);
        for b in 0..t.bottom.n_buckets {
            let (header, recs) = t.bottom.read_bucket(b);
            for (s, &rec) in recs.iter().enumerate() {
                if header & (1 << s) == 0 {
                    continue;
                }
                let mut placed = false;
                for nb in Tables::candidates(&new_top, &rec.key) {
                    if Self::insert_into_locked(&new_top, nb, &rec) {
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // Extremely unlikely at ≤ 37% load; displace once.
                    let nb = Tables::candidates(&new_top, &rec.key)[0];
                    assert!(
                        Self::try_displace(&new_top, nb, &rec),
                        "level-hash resize target overflowed"
                    );
                }
            }
        }
        let old_top = std::mem::replace(&mut t.top, new_top);
        t.bottom = old_top;
        self.resizes.fetch_add(1, AOrd::Relaxed);
    }
}

impl HashIndex for LevelHash {
    fn insert(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let rec = Record::new(*key, *value);
        loop {
            let observed_top;
            {
                let t = self.tables.read();
                observed_top = t.top.n_buckets;
                // Reject duplicates (scan all four candidates).
                for storage in t.levels() {
                    if Self::find_in(storage, key).is_some() {
                        return Err(IndexError::DuplicateKey);
                    }
                }
                // Top first, then bottom (stash), free slot anywhere.
                for storage in t.levels() {
                    for b in Tables::candidates(storage, key) {
                        let _g = storage.locks[b].write();
                        if Self::insert_into_locked(storage, b, &rec) {
                            self.count.fetch_add(1, AOrd::Relaxed);
                            return Ok(());
                        }
                    }
                }
                // One-step cuckoo displacement, per level.
                for storage in t.levels() {
                    for b in Tables::candidates(storage, key) {
                        if Self::try_displace(storage, b, &rec) {
                            self.count.fetch_add(1, AOrd::Relaxed);
                            return Ok(());
                        }
                    }
                }
            }
            self.resize(observed_top);
        }
    }

    fn get(&self, key: &Key) -> Option<Value> {
        let t = self.tables.read();
        for storage in t.levels() {
            if let Some((_, _, v)) = Self::find_in(storage, key) {
                return Some(v);
            }
        }
        None
    }

    fn update(&self, key: &Key, value: &Value) -> IndexResult<()> {
        let t = self.tables.read();
        let rec = Record::new(*key, *value);
        for storage in t.levels() {
            for b in Tables::candidates(storage, key) {
                let _g = storage.locks[b].write();
                let (header, recs) = storage.read_bucket(b);
                for (s, occupant) in recs.iter().enumerate() {
                    if header & (1 << s) != 0 && occupant.key == *key {
                        // Out-of-place within the bucket when possible
                        // (crash-consistent); in-place otherwise (original
                        // Level hashing logs; we accept the simpler scheme
                        // since only HDNH's recovery is evaluated).
                        for ns in 0..SLOTS {
                            if header & (1 << ns) == 0 {
                                storage.write_slot(b, ns, &rec);
                                let off = storage.header_off(b);
                                storage.region.atomic_fetch_xor_u64(
                                    off,
                                    (1 << s) | (1 << ns),
                                    Ordering::AcqRel,
                                );
                                storage.region.persist(off, 8);
                                return Ok(());
                            }
                        }
                        storage.write_slot(b, s, &rec);
                        return Ok(());
                    }
                }
            }
        }
        Err(IndexError::KeyNotFound)
    }

    fn remove(&self, key: &Key) -> bool {
        let t = self.tables.read();
        for storage in t.levels() {
            for b in Tables::candidates(storage, key) {
                let _g = storage.locks[b].write();
                let (header, recs) = storage.read_bucket(b);
                for (s, occupant) in recs.iter().enumerate() {
                    if header & (1 << s) != 0 && occupant.key == *key {
                        storage.clear_valid(b, s);
                        self.count.fetch_sub(1, AOrd::Relaxed);
                        return true;
                    }
                }
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.count.load(AOrd::Relaxed)
    }

    fn load_factor(&self) -> f64 {
        let t = self.tables.read();
        let slots = (t.top.n_buckets + t.bottom.n_buckets) * SLOTS;
        self.len() as f64 / slots as f64
    }

    fn scheme_name(&self) -> &'static str {
        "LEVEL"
    }
}

impl std::fmt::Debug for LevelHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelHash")
            .field("len", &self.len())
            .field("resizes", &self.resize_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(id: u64) -> Key {
        Key::from_u64(id)
    }
    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    fn table() -> LevelHash {
        LevelHash::new(LevelParams {
            initial_top_buckets: 8,
            nvm: NvmOptions::fast(),
        })
    }

    #[test]
    fn basic_crud() {
        let t = table();
        t.insert(&k(1), &v(10)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 10);
        assert_eq!(t.insert(&k(1), &v(11)), Err(IndexError::DuplicateKey));
        t.update(&k(1), &v(12)).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().as_u64(), 12);
        assert!(t.remove(&k(1)));
        assert_eq!(t.get(&k(1)), None);
        assert_eq!(t.update(&k(1), &v(1)), Err(IndexError::KeyNotFound));
    }

    #[test]
    fn fills_and_resizes() {
        let t = table();
        let n = 3_000u64;
        for i in 0..n {
            t.insert(&k(i), &v(i * 2)).unwrap();
        }
        assert!(t.resize_count() > 0);
        for i in 0..n {
            assert_eq!(t.get(&k(i)).unwrap().as_u64(), i * 2, "key {i}");
        }
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn update_preserves_single_copy() {
        let t = table();
        t.insert(&k(5), &v(1)).unwrap();
        for i in 2..100 {
            t.update(&k(5), &v(i)).unwrap();
            assert_eq!(t.get(&k(5)).unwrap().as_u64(), i);
        }
        let tables = t.tables.read();
        assert_eq!(tables.top.count_valid() + tables.bottom.count_valid(), 1);
    }

    #[test]
    fn achieves_reasonable_load_factor_before_resize() {
        // With 2+2 candidate buckets and one-step displacement, level
        // hashing reaches a decent load factor before resizing.
        let t = table();
        let mut inserted = 0u64;
        while t.resize_count() == 0 {
            t.insert(&k(inserted), &v(0)).unwrap();
            inserted += 1;
        }
        // capacity before resize = (8 + 4) * 4 = 48 slots.
        assert!(
            inserted >= 48 / 2,
            "resize fired at only {inserted} of 48 slots"
        );
    }

    #[test]
    fn search_reads_multiple_blocks() {
        // The architectural contrast with HDNH: a Level-hash positive
        // search must read candidate buckets from NVM.
        let t = table();
        for i in 0..40 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let before = t.nvm_stats();
        for i in 0..40 {
            let _ = t.get(&k(i));
        }
        let delta = t.nvm_stats().since(&before);
        assert!(
            delta.read_blocks >= 40,
            "expected ≥1 block read per search, got {}",
            delta.read_blocks
        );
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        use std::sync::Arc;
        let t = Arc::new(LevelHash::new(LevelParams {
            initial_top_buckets: 64,
            nvm: NvmOptions::fast(),
        }));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let id = tid * 1_000_000 + i;
                    t.insert(&k(id), &v(id)).unwrap();
                    assert_eq!(t.get(&k(id)).unwrap().as_u64(), id);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 8_000);
    }

    #[test]
    fn delete_then_reinsert() {
        let t = table();
        for i in 0..100 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..100 {
            assert!(t.remove(&k(i)));
        }
        assert_eq!(t.len(), 0);
        for i in 0..100 {
            t.insert(&k(i), &v(i + 1)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(t.get(&k(i)).unwrap().as_u64(), i + 1);
        }
    }
}
