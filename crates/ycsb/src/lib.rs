//! YCSB-style workload generation.
//!
//! The paper drives every experiment with YCSB (Cooper et al., SoCC'10)
//! microbenchmarks: uniform and zipfian key distributions (with the zipfian
//! exponent `s` tuned between 0.5 and 1.22 for figure 12), 16-byte keys,
//! 15-byte values, and standard operation mixes (100 % insert, 100 % search,
//! 50/50 insert+search, YCSB-A). This crate is a faithful Rust port of the
//! relevant YCSB machinery:
//!
//! * [`dist`] — the key-choice generators, including Gray et al.'s
//!   rejection-free zipfian sampler exactly as YCSB implements it, the
//!   scrambled-zipfian variant (hot items spread over the keyspace) and a
//!   "latest" distribution.
//! * [`keys`] — the mapping from abstract record ids to concrete
//!   [`hdnh_common::Key`]/[`hdnh_common::Value`] bytes, including a
//!   deterministic value derivation so correctness checks can validate any
//!   returned value.
//! * [`workload`] — operation-mix specs, the standard YCSB-A/B/C presets and
//!   the paper's custom mixes, and deterministic per-thread operation
//!   streams (the paper pre-generates all operations before timing; so do
//!   we).


#![warn(missing_docs)]
pub mod dist;
pub mod keys;
pub mod trace;
pub mod workload;

pub use dist::{KeyDist, Latest, ScrambledZipfian, Uniform, Zipfian};
pub use keys::KeySpace;
pub use workload::{generate_ops, Mix, Op, WorkloadSpec};
