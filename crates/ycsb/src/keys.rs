//! Record-id → key/value mapping.
//!
//! YCSB names records `user<hash(id)>`; what matters for a hash-table
//! benchmark is only that (a) the mapping is deterministic, (b) distinct ids
//! give distinct keys, and (c) key bytes are "random-looking" so the table's
//! hash sees realistic input. We encode the id and a salted scramble of it
//! into the 16 key bytes, and derive values deterministically from the key
//! so every read in every test can be validated.

use hdnh_common::rng::mix64;
use hdnh_common::{Key, Value};

/// Deterministic id→key/value codec shared by the harness and all tests.
///
/// ```
/// use hdnh_ycsb::KeySpace;
///
/// let ks = KeySpace::default();
/// let v = ks.value(7, 3); // id 7, version 3
/// assert_eq!(ks.validate(7, &v), Some(3));
/// assert_eq!(ks.validate(8, &v), None, "values are bound to their id");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct KeySpace {
    salt: u64,
}

impl KeySpace {
    /// A key space; different salts give fully disjoint key sets.
    pub fn new(salt: u64) -> Self {
        KeySpace { salt }
    }

    /// The key for record `id`. Top half is a salted scramble (gives the
    /// bytes entropy), bottom half is the raw id (keeps debugging sane).
    #[inline]
    pub fn key(&self, id: u64) -> Key {
        Key::from_u64_pair(mix64(id ^ self.salt), id)
    }

    /// Extracts the record id back out of a key built by [`KeySpace::key`].
    #[inline]
    pub fn id_of(&self, key: &Key) -> u64 {
        key.as_u64()
    }

    /// The canonical value for `(id, version)`. Tests bump `version` on each
    /// update and validate reads against the expected version.
    #[inline]
    pub fn value(&self, id: u64, version: u32) -> Value {
        let mut v = [0u8; hdnh_common::VALUE_LEN];
        v[..8].copy_from_slice(&mix64(id.wrapping_add((version as u64) << 32)).to_le_bytes());
        v[8..12].copy_from_slice(&version.to_le_bytes());
        // Last 3 bytes: a truncated checksum of the id so torn values are
        // detectable even when the version field happens to match.
        let ck = mix64(id).to_le_bytes();
        v[12..15].copy_from_slice(&ck[..3]);
        Value(v)
    }

    /// Checks that `value` is a canonical value for `id` (any version).
    /// Returns the version if it validates.
    pub fn validate(&self, id: u64, value: &Value) -> Option<u32> {
        let version = u32::from_le_bytes(value.0[8..12].try_into().unwrap());
        if *value == self.value(id, version) {
            Some(version)
        } else {
            None
        }
    }

    /// Keys disjoint from every id in `0..`, for negative-search workloads.
    /// (Uses the salt's complement so no positive key can collide.)
    #[inline]
    pub fn negative_key(&self, id: u64) -> Key {
        Key::from_u64_pair(mix64(id ^ !self.salt) | 1 << 63, id | 1 << 63)
    }
}

impl Default for KeySpace {
    fn default() -> Self {
        KeySpace::new(0x5EED_CAFE_1234_5678)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_distinct() {
        let ks = KeySpace::default();
        assert_eq!(ks.key(5), ks.key(5));
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000 {
            assert!(seen.insert(ks.key(id)));
        }
    }

    #[test]
    fn id_roundtrips() {
        let ks = KeySpace::default();
        for id in [0u64, 1, 999_999, u32::MAX as u64] {
            assert_eq!(ks.id_of(&ks.key(id)), id);
        }
    }

    #[test]
    fn values_validate() {
        let ks = KeySpace::default();
        for id in 0..100 {
            for version in 0..4 {
                let v = ks.value(id, version);
                assert_eq!(ks.validate(id, &v), Some(version));
            }
        }
    }

    #[test]
    fn corrupted_value_fails_validation() {
        let ks = KeySpace::default();
        let mut v = ks.value(7, 2);
        v.0[0] ^= 0xFF;
        assert_eq!(ks.validate(7, &v), None);
        // Wrong id also fails.
        let v = ks.value(7, 2);
        assert_eq!(ks.validate(8, &v), None);
    }

    #[test]
    fn negative_keys_disjoint_from_positive() {
        let ks = KeySpace::default();
        let negatives: std::collections::HashSet<_> = (0..5_000).map(|i| ks.negative_key(i)).collect();
        for id in 0..5_000 {
            assert!(!negatives.contains(&ks.key(id)));
        }
    }

    #[test]
    fn different_salts_are_disjoint() {
        let a = KeySpace::new(1);
        let b = KeySpace::new(2);
        for id in 0..1_000 {
            assert_ne!(a.key(id), b.key(id));
        }
    }
}
