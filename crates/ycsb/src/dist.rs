//! Key-choice distributions.
//!
//! Ports of the YCSB generators the paper's evaluation uses. Each generator
//! draws abstract record ids in `0..n`; [`crate::keys::KeySpace`] turns ids
//! into key bytes.

use hdnh_common::rng::{mix64, XorShift64Star};

/// A source of record ids in `0..n()`.
pub trait KeyDist {
    /// Draws the next record id.
    fn next_id(&mut self, rng: &mut XorShift64Star) -> u64;
    /// Current id-space size.
    fn n(&self) -> u64;
}

/// Uniform over `0..n`.
#[derive(Clone, Debug)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Uniform distribution over `0..n` (n > 0).
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        Uniform { n }
    }
}

impl KeyDist for Uniform {
    #[inline]
    fn next_id(&mut self, rng: &mut XorShift64Star) -> u64 {
        // 64-bit multiply-shift; bias is negligible for our n.
        ((rng.next_u64() as u128 * self.n as u128) >> 64) as u64
    }

    fn n(&self) -> u64 {
        self.n
    }
}

/// Zipfian over `0..n` with exponent `s` ("theta" in YCSB), using the
/// rejection-free method of Gray et al. ("Quickly generating billion-record
/// synthetic databases", SIGMOD'94) exactly as YCSB's `ZipfianGenerator`
/// implements it. Rank 0 is the most popular item.
///
/// ```
/// use hdnh_ycsb::{KeyDist, Zipfian};
/// use hdnh_common::rng::XorShift64Star;
///
/// let mut dist = Zipfian::new(1_000_000, 0.99);
/// let mut rng = XorShift64Star::new(42);
/// let hot_hits = (0..10_000).filter(|_| dist.next_id(&mut rng) < 100).count();
/// assert!(hot_hits > 2_000, "top-100 ids dominate at s=0.99: {hot_hits}");
/// ```
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Zipfian over `0..n` with exponent `theta` (YCSB default 0.99).
    ///
    /// `theta` must be in `(0, 1) ∪ (1, ..)`; the math degenerates at
    /// exactly 1.0, so we nudge it like YCSB users conventionally do.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        assert!(theta > 0.0, "zipfian exponent must be positive");
        let theta = if (theta - 1.0).abs() < 1e-9 { 1.0 + 1e-9 } else { theta };
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Harmonic-like partial sum Σ_{i=1..n} 1/i^theta.
    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// The exponent in force.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a *rank*: 0 is the hottest item.
    #[inline]
    pub fn next_rank(&self, rng: &mut XorShift64Star) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    #[allow(dead_code)]
    fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

impl KeyDist for Zipfian {
    #[inline]
    fn next_id(&mut self, rng: &mut XorShift64Star) -> u64 {
        self.next_rank(rng)
    }

    fn n(&self) -> u64 {
        self.n
    }
}

/// Scrambled zipfian: zipfian *popularity*, but the popular items are
/// scattered uniformly over the id space (YCSB `ScrambledZipfianGenerator`).
/// This is what makes "hot keys" hash-neutral — exactly the situation
/// HDNH's hot table targets.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Scrambled zipfian over `0..n` with exponent `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }
}

impl KeyDist for ScrambledZipfian {
    #[inline]
    fn next_id(&mut self, rng: &mut XorShift64Star) -> u64 {
        let rank = self.inner.next_rank(rng);
        mix64(rank) % self.inner.n
    }

    fn n(&self) -> u64 {
        self.inner.n
    }
}

/// "Latest" distribution: zipfian over recency — the most recently inserted
/// ids are the most popular (YCSB `SkewedLatestGenerator`).
#[derive(Clone, Debug)]
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// Latest distribution over `0..n` with exponent `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        Latest {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Grows the id space after an insert. YCSB recomputes zeta
    /// incrementally; our op streams are pre-generated against the final
    /// size, so a full rebuild on demand is sufficient and exact.
    pub fn grow_to(&mut self, n: u64) {
        if n > self.inner.n {
            self.inner = Zipfian::new(n, self.inner.theta);
        }
    }
}

impl KeyDist for Latest {
    #[inline]
    fn next_id(&mut self, rng: &mut XorShift64Star) -> u64 {
        let rank = self.inner.next_rank(rng);
        self.inner.n - 1 - rank
    }

    fn n(&self) -> u64 {
        self.inner.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift64Star {
        XorShift64Star::new(0xC0FFEE)
    }

    #[test]
    fn uniform_covers_range() {
        let mut d = Uniform::new(100);
        let mut r = rng();
        let mut seen = [false; 100];
        for _ in 0..20_000 {
            let id = d.next_id(&mut r);
            assert!(id < 100);
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform should cover all ids");
    }

    #[test]
    fn uniform_is_flat() {
        let mut d = Uniform::new(10);
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[d.next_id(&mut r) as usize] += 1;
        }
        let (min, max) = counts.iter().fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min as f64 / max as f64 > 0.9, "uniform too skewed: {counts:?}");
    }

    #[test]
    fn zipfian_in_range() {
        let mut d = Zipfian::new(1000, 0.99);
        let mut r = rng();
        for _ in 0..50_000 {
            assert!(d.next_id(&mut r) < 1000);
        }
    }

    #[test]
    fn zipfian_rank_zero_dominates() {
        let mut d = Zipfian::new(1000, 0.99);
        let mut r = rng();
        let mut c0 = 0;
        let mut c_rest = 0;
        for _ in 0..100_000 {
            if d.next_id(&mut r) == 0 {
                c0 += 1;
            } else {
                c_rest += 1;
            }
        }
        // At theta=0.99, rank 0 should get several percent of all draws.
        assert!(c0 > 2_000, "rank-0 count {c0}");
        assert!(c_rest > 0);
    }

    #[test]
    fn higher_theta_means_more_skew() {
        let mut r = rng();
        let hits_top10 = |theta: f64, r: &mut XorShift64Star| {
            let mut d = Zipfian::new(10_000, theta);
            let mut hits = 0;
            for _ in 0..50_000 {
                if d.next_id(r) < 10 {
                    hits += 1;
                }
            }
            hits
        };
        let low = hits_top10(0.5, &mut r);
        let mid = hits_top10(0.99, &mut r);
        let high = hits_top10(1.22, &mut r);
        assert!(low < mid && mid < high, "skew ordering: {low} {mid} {high}");
    }

    #[test]
    fn zipfian_matches_alibaba_hotspot_observation() {
        // The paper motivates the hot table with "50% (daily) to 90%
        // (extreme) of accesses touch 1% of items". Check our sampler
        // reproduces that: at s=0.99 the top 1% should absorb a large share.
        let mut d = Zipfian::new(100_000, 0.99);
        let mut r = rng();
        let mut top1 = 0u32;
        const N: u32 = 200_000;
        for _ in 0..N {
            if d.next_id(&mut r) < 1_000 {
                top1 += 1;
            }
        }
        let share = top1 as f64 / N as f64;
        assert!(share > 0.4, "top-1% share at s=0.99: {share}");
        let mut d = Zipfian::new(100_000, 1.22);
        let mut top1 = 0u32;
        for _ in 0..N {
            if d.next_id(&mut r) < 1_000 {
                top1 += 1;
            }
        }
        let share_extreme = top1 as f64 / N as f64;
        assert!(share_extreme > 0.75, "top-1% share at s=1.22: {share_extreme}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_ids() {
        let mut d = ScrambledZipfian::new(10_000, 0.99);
        let mut r = rng();
        let mut counts = std::collections::HashMap::<u64, u32>::new();
        for _ in 0..100_000 {
            *counts.entry(d.next_id(&mut r)).or_default() += 1;
        }
        // Still skewed: the hottest id has many hits...
        let max = counts.values().copied().max().unwrap();
        assert!(max > 2_000, "max {max}");
        // ...but hot ids are NOT clustered at 0: the hottest id is
        // (with overwhelming probability) not id 0 or 1.
        let hottest = counts.iter().max_by_key(|(_, &c)| c).map(|(&id, _)| id).unwrap();
        assert!(hottest > 1, "hottest id {hottest} not scrambled");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut d = Latest::new(1000, 0.99);
        let mut r = rng();
        let mut newest = 0;
        for _ in 0..10_000 {
            if d.next_id(&mut r) >= 990 {
                newest += 1;
            }
        }
        assert!(newest > 3_000, "newest-10 share {newest}/10000");
    }

    #[test]
    fn latest_grow_extends_range() {
        let mut d = Latest::new(100, 0.99);
        d.grow_to(200);
        assert_eq!(d.n(), 200);
        let mut r = rng();
        let saw_new = (0..10_000).any(|_| d.next_id(&mut r) >= 100);
        assert!(saw_new);
    }

    #[test]
    fn zipfian_frequencies_follow_power_law() {
        // freq(rank k) ∝ 1/k^s ⇒ freq(1)/freq(4) ≈ 4^s. Check the measured
        // ratio against theory within sampling tolerance.
        for s in [0.7f64, 0.99] {
            let mut d = Zipfian::new(100_000, s);
            let mut r = XorShift64Star::new(0x51ab);
            let mut counts = [0u32; 8];
            const N: u32 = 400_000;
            for _ in 0..N {
                let id = d.next_id(&mut r);
                if id < 8 {
                    counts[id as usize] += 1;
                }
            }
            let measured = counts[0] as f64 / counts[3] as f64;
            let theory = 4f64.powf(s);
            assert!(
                (measured / theory - 1.0).abs() < 0.25,
                "s={s}: freq(1)/freq(4) measured {measured:.2}, theory {theory:.2}"
            );
        }
    }

    #[test]
    fn theta_one_is_nudged_not_nan() {
        let mut d = Zipfian::new(100, 1.0);
        let mut r = rng();
        for _ in 0..1000 {
            let id = d.next_id(&mut r);
            assert!(id < 100);
        }
    }
}
