//! Operation-trace serialization.
//!
//! The evaluation's methodology pre-generates every operation before timing
//! (§4.1). Persisting those streams makes runs *bit-reproducible across
//! machines and versions*: generate once, check the trace into an artifact
//! store, replay everywhere. The format is a small self-contained binary
//! codec (magic + version header, one tag byte per op, LEB128 varints for
//! ids/sequences) — a 180 M-op paper-scale trace fits in a few hundred MB.
//!
//! ```
//! use hdnh_ycsb::{generate_ops, WorkloadSpec};
//! use hdnh_ycsb::trace::{read_trace, write_trace};
//!
//! let ops = generate_ops(&WorkloadSpec::ycsb_a(), 1_000, 1_000, 100, 7);
//! let mut buf = Vec::new();
//! write_trace(&mut buf, &ops).unwrap();
//! assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), ops);
//! ```

use std::io::{self, Read, Write};

use crate::workload::Op;

/// File magic: "HDNHTRC" + format version 1.
const MAGIC: [u8; 8] = *b"HDNHTRC\x01";

const TAG_READ: u8 = 1;
const TAG_READ_ABSENT: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_RMW: u8 = 5;
const TAG_DELETE: u8 = 6;

fn write_varint(w: &mut impl Write, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        v |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serializes an op stream (with a header carrying the count).
pub fn write_trace(w: &mut impl Write, ops: &[Op]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    write_varint(w, ops.len() as u64)?;
    for op in ops {
        match op {
            Op::Read(id) => {
                w.write_all(&[TAG_READ])?;
                write_varint(w, *id)?;
            }
            Op::ReadAbsent(id) => {
                w.write_all(&[TAG_READ_ABSENT])?;
                write_varint(w, *id)?;
            }
            Op::Insert(id) => {
                w.write_all(&[TAG_INSERT])?;
                write_varint(w, *id)?;
            }
            Op::Update(id, seq) => {
                w.write_all(&[TAG_UPDATE])?;
                write_varint(w, *id)?;
                write_varint(w, *seq as u64)?;
            }
            Op::ReadModifyWrite(id, seq) => {
                w.write_all(&[TAG_RMW])?;
                write_varint(w, *id)?;
                write_varint(w, *seq as u64)?;
            }
            Op::Delete(id) => {
                w.write_all(&[TAG_DELETE])?;
                write_varint(w, *id)?;
            }
        }
    }
    Ok(())
}

/// Deserializes an op stream written by [`write_trace`].
pub fn read_trace(r: &mut impl Read) -> io::Result<Vec<Op>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an HDNH trace (bad magic or version)",
        ));
    }
    let n = read_varint(r)? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let op = match tag[0] {
            TAG_READ => Op::Read(read_varint(r)?),
            TAG_READ_ABSENT => Op::ReadAbsent(read_varint(r)?),
            TAG_INSERT => Op::Insert(read_varint(r)?),
            TAG_UPDATE => {
                let id = read_varint(r)?;
                let seq = read_varint(r)? as u32;
                Op::Update(id, seq)
            }
            TAG_RMW => {
                let id = read_varint(r)?;
                let seq = read_varint(r)? as u32;
                Op::ReadModifyWrite(id, seq)
            }
            TAG_DELETE => Op::Delete(read_varint(r)?),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown op tag {other}"),
                ))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Writes a trace to a file (buffered).
pub fn save_trace(path: &std::path::Path, ops: &[Op]) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace(&mut w, ops)?;
    w.flush()
}

/// Reads a trace from a file (buffered).
pub fn load_trace(path: &std::path::Path) -> io::Result<Vec<Op>> {
    read_trace(&mut io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_ops, WorkloadSpec};

    fn roundtrip(ops: &[Op]) -> Vec<Op> {
        let mut buf = Vec::new();
        write_trace(&mut buf, ops).unwrap();
        read_trace(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert_eq!(roundtrip(&[]), Vec::<Op>::new());
    }

    #[test]
    fn all_op_kinds_roundtrip() {
        let ops = vec![
            Op::Read(0),
            Op::Read(u64::MAX),
            Op::ReadAbsent(127),
            Op::Insert(128),
            Op::Update(300, 0),
            Op::Update(1, u32::MAX),
            Op::ReadModifyWrite(1 << 40, 7),
            Op::Delete(42),
        ];
        assert_eq!(roundtrip(&ops), ops);
    }

    #[test]
    fn generated_workloads_roundtrip() {
        for spec in [
            WorkloadSpec::ycsb_a(),
            WorkloadSpec::insert_only(),
            WorkloadSpec::delete_only(),
            WorkloadSpec::negative_search_only(),
        ] {
            let ops = generate_ops(&spec, 500, 500, 2_000, 99);
            assert_eq!(roundtrip(&ops), ops);
        }
    }

    #[test]
    fn compactness_one_to_three_bytes_per_small_op() {
        let ops: Vec<Op> = (0..10_000u64).map(|i| Op::Read(i % 128)).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        // tag + 1-byte varint per op, plus the header.
        assert!(buf.len() <= 8 + 3 + 2 * ops.len(), "trace bloated: {} bytes", buf.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTATRACE".to_vec();
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_trace_rejected() {
        let ops = vec![Op::Read(1), Op::Update(2, 3)];
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[Op::Read(1)]).unwrap();
        // Corrupt the tag byte (first byte after the 8-byte magic + 1-byte
        // count varint).
        buf[9] = 0xEE;
        assert!(read_trace(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hdnh_trace_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("ops.trace");
        let ops = generate_ops(&WorkloadSpec::ycsb_b(), 100, 100, 500, 3);
        save_trace(&path, &ops).unwrap();
        assert_eq!(load_trace(&path).unwrap(), ops);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v, "varint {v}");
        }
    }
}
