//! Per-thread epoch pinning for the lock-free read path.
//!
//! The table publishes its swappable state ([`crate::table::Inner`]) behind
//! a single `AtomicPtr`. Readers and writers *pin* the epoch — one
//! `fetch_add` on a thread-private, cache-line-padded counter — load the
//! pointer, and operate on that snapshot without any shared lock. The rare
//! maintenance paths (resize, verify) that need to know every in-flight
//! operation has finished call [`drain`], which waits until every
//! registered slot has been observed quiescent once.
//!
//! # Why observing zero once is enough
//!
//! All pin/unpin counter updates, the drained thread's pointer/generation
//! loads, and the maintainer's pointer swap + generation stores are
//! `SeqCst`, so they have a single total order. If the maintainer performs
//! *store S* (e.g. "generation is now odd", or "the pointer now points at
//! the new `Inner`") and then observes a slot at depth 0, then any
//! operation on that thread either (a) incremented the slot before the
//! observation and also decremented it before the observation — it
//! completed entirely before the drain returned — or (b) incremented it
//! after the observation, in which case its subsequent pointer/generation
//! loads are ordered after S in the total order and must see S's value.
//! Either way, once `drain` returns, no thread can still act on
//! pre-S state.
//!
//! Slots are never deallocated: a thread's slot is leaked into a global
//! registry on first use and recycled through a free list when the thread
//! exits, so `drain` can hold plain `'static` references.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// One thread's pin counter. Padded to its own cache line pair so pinning
/// never contends with another thread's traffic.
#[repr(align(128))]
pub(crate) struct Slot {
    /// Pin depth: 0 = quiescent, >0 = that many nested pins.
    depth: AtomicU64,
}

/// Every slot ever created. Slots are leaked (`Box::leak`) so references
/// stay valid for the process lifetime; dead threads' slots sit at depth 0
/// until [`FREE`] hands them to a new thread.
static REGISTRY: Mutex<Vec<&'static Slot>> = Mutex::new(Vec::new());

/// Slots whose owning thread has exited, available for reuse.
static FREE: Mutex<Vec<&'static Slot>> = Mutex::new(Vec::new());

/// Thread-local handle that returns the slot to the free list on thread
/// exit (its depth is necessarily 0 by then: pins are scoped guards).
struct Registration {
    slot: &'static Slot,
}

impl Drop for Registration {
    fn drop(&mut self) {
        FREE.lock().push(self.slot);
    }
}

thread_local! {
    static SLOT: Registration = Registration { slot: acquire_slot() };
}

fn acquire_slot() -> &'static Slot {
    if let Some(slot) = FREE.lock().pop() {
        return slot;
    }
    let slot: &'static Slot = Box::leak(Box::new(Slot {
        depth: AtomicU64::new(0),
    }));
    REGISTRY.lock().push(slot);
    slot
}

/// An active pin. While this guard lives, [`drain`] callers wait for this
/// thread, so any pointer loaded after pinning stays valid.
pub(crate) struct Pin {
    slot: &'static Slot,
}

/// Pins the calling thread: one uncontended `fetch_add` on its own line.
#[inline]
pub(crate) fn pin() -> Pin {
    let slot = SLOT.with(|r| r.slot);
    slot.depth.fetch_add(1, Ordering::SeqCst);
    Pin { slot }
}

impl Drop for Pin {
    #[inline]
    fn drop(&mut self) {
        self.slot.depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Waits until every registered slot has been seen at depth 0 once.
///
/// Must not be called while the calling thread itself holds a [`Pin`]
/// (it would wait on itself forever); maintenance paths drop their pins
/// before coordinating.
pub(crate) fn drain() {
    debug_assert_eq!(
        SLOT.with(|r| r.slot.depth.load(Ordering::SeqCst)),
        0,
        "epoch::drain called while the calling thread holds a pin"
    );
    // Threads that register after this snapshot necessarily pin for the
    // first time after the caller's store, so they see post-store state.
    let slots: Vec<&'static Slot> = REGISTRY.lock().clone();
    for slot in slots {
        let mut spins = 0u32;
        while slot.depth.load(Ordering::SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Pins are a few hundred instructions long at most, but the
                // owning thread may be descheduled (single-core hosts).
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn pin_unpin_restores_quiescence() {
        {
            let _p = pin();
            assert_eq!(SLOT.with(|r| r.slot.depth.load(Ordering::SeqCst)), 1);
            let _q = pin(); // nesting
            assert_eq!(SLOT.with(|r| r.slot.depth.load(Ordering::SeqCst)), 2);
        }
        assert_eq!(SLOT.with(|r| r.slot.depth.load(Ordering::SeqCst)), 0);
        drain(); // must not hang with everything quiescent
    }

    #[test]
    fn drain_waits_for_other_threads() {
        let hold = Arc::new(AtomicBool::new(true));
        let pinned = Arc::new(AtomicBool::new(false));
        let t = {
            let hold = Arc::clone(&hold);
            let pinned = Arc::clone(&pinned);
            std::thread::spawn(move || {
                let _p = pin();
                pinned.store(true, Ordering::SeqCst);
                while hold.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            })
        };
        while !pinned.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        // Release the pin shortly after; drain must return only once the
        // other thread unpinned.
        let releaser = {
            let hold = Arc::clone(&hold);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                hold.store(false, Ordering::SeqCst);
            })
        };
        drain();
        assert!(!hold.load(Ordering::SeqCst), "drain returned while a pin was held");
        t.join().unwrap();
        releaser.join().unwrap();
    }

    #[test]
    fn slots_are_recycled_across_threads() {
        let before = REGISTRY.lock().len();
        for _ in 0..8 {
            std::thread::spawn(|| {
                let _p = pin();
            })
            .join()
            .unwrap();
        }
        let after = REGISTRY.lock().len();
        // Sequential short-lived threads reuse freed slots instead of
        // growing the registry by one each.
        assert!(after <= before + 2, "registry grew {before} -> {after}");
    }
}
