//! The non-volatile table (paper §3.1, figure 2).
//!
//! One [`Level`] is an array of segments in NVM; each segment is an array of
//! 256-byte buckets; each bucket is an 8-byte persisted header (the bitmap
//! word, written with failure-atomic 8-byte stores) followed by eight
//! 31-byte record slots:
//!
//! ```text
//! bucket (256 B, block-aligned):
//!   [ header u64 ][ slot0 31B ][ slot1 31B ] … [ slot7 31B ]
//!     bit i of header = slot i valid           8 + 8×31 = 256
//! ```
//!
//! Keys choose **two candidate segments** (one per hash) and **two candidate
//! buckets inside each segment** — the paper's "2-cuckoo strategy" applied
//! at both granularities, yielding four candidate buckets per level and
//! eight across the two levels.
//!
//! # Integrity bytes and the spill flag
//!
//! The paper leaves the header's upper 7 bytes unused. We pack a **7-bit
//! metadata field per slot** into them — 8 × 7 = 56 bits, exactly filling
//! bits 8..64:
//!
//! ```text
//! header u64:  [ bit 0..8: validity bitmap ][ bits 8+7s .. 15+7s: meta(slot s) ]
//! meta (7 bits): [ bit 6: spill flag ][ bits 0..6: CRC-6 of the record ]
//! ```
//!
//! Bit 6 of the field is the **spill flag**: when set, the slot's 15-byte
//! value is not a payload but a packed pointer into the value log (see
//! `crate::vlog`). The low 6 bits are a CRC-6 (polynomial x⁶+x+1,
//! irreducible) of the record's 31 wire bytes. Because the polynomial is
//! irreducible with a nonzero constant term, the CRC provably detects
//! every single-bit flip and every whole-byte (0xFF) flip; a random
//! corruption is missed with probability 1/64.
//!
//! A slot's meta field is installed **in the same failure-atomic 8-byte
//! header store** that sets its valid bit, so a reader that observes the
//! valid bit always observes the matching checksum *and* spill flag; a
//! checksum mismatch against the record bytes therefore indicates media
//! damage (or a torn record write that a crash made durable), never an
//! in-flight writer. The scrubber and the read path treat a mismatch as a
//! detection, repair from the DRAM hot table when possible, and quarantine
//! the slot otherwise.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hdnh_common::hash::KeyHashes;
use hdnh_common::{Record, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion};

use crate::params::{BUCKET_BYTES, BUCKET_HEADER, SLOTS_PER_BUCKET};

/// Mask selecting the validity bitmap in a bucket header.
pub const HEADER_VALID_MASK: u64 = 0xFF;
/// Width in bits of one per-slot metadata field (spill flag + checksum).
pub const SLOT_META_BITS: u32 = 7;
/// Mask of one metadata field (before shifting).
pub const SLOT_META_MASK: u64 = (1 << SLOT_META_BITS) - 1;
/// Width in bits of the checksum inside a metadata field.
pub const CHECKSUM_BITS: u32 = 6;
/// Mask of the checksum inside a metadata field.
pub const CHECKSUM_MASK: u64 = (1 << CHECKSUM_BITS) - 1;
/// Spill flag inside a metadata field: the slot's value is a packed
/// value-log pointer, not an inline payload.
pub const SPILL_FLAG: u8 = 1 << CHECKSUM_BITS;

/// Bit position of slot `slot`'s metadata field inside the header word.
#[inline]
pub const fn meta_shift(slot: usize) -> u32 {
    8 + SLOT_META_BITS * slot as u32
}

/// CRC-6 (polynomial x⁶+x+1) of a record's wire bytes.
///
/// The polynomial is irreducible over GF(2) with a nonzero constant term,
/// so the check provably detects every single-bit error (x^k is never
/// divisible by it) and every whole-byte 0xFF flip (x^k·(x+1)⁷ shares no
/// factor with an irreducible sextic). Random corruption is missed with
/// probability 1/64 — the price of sharing the 7-bit header field with
/// the spill flag.
#[inline]
pub fn checksum6(bytes: &[u8; RECORD_LEN]) -> u8 {
    // MSB-first bitwise CRC; x⁶ feeds back as the low terms x+1 (0b000011).
    let mut crc: u8 = 0x3F;
    for &b in bytes {
        let mut bit = 8u32;
        while bit > 0 {
            bit -= 1;
            let fb = ((crc >> 5) ^ (b >> bit)) & 1;
            crc = ((crc << 1) & 0x3F) ^ (fb * 0b11);
        }
    }
    crc
}

/// The 7-bit metadata field for a record: CRC-6 of its wire bytes plus
/// the spill flag when the value is a packed value-log pointer.
#[inline]
pub fn slot_meta(rec: &Record, spilled: bool) -> u8 {
    checksum6(&rec.to_bytes()) | if spilled { SPILL_FLAG } else { 0 }
}

/// Validity bitmap of a header word.
#[inline]
pub const fn header_valid_bits(header: u64) -> u64 {
    header & HEADER_VALID_MASK
}

/// Whether slot `slot`'s valid bit is set in `header`.
#[inline]
pub const fn header_slot_valid(header: u64, slot: usize) -> bool {
    header & (1 << slot) != 0
}

/// Extracts slot `slot`'s full 7-bit metadata field from a header word.
#[inline]
pub const fn header_slot_meta(header: u64, slot: usize) -> u8 {
    ((header >> meta_shift(slot)) & SLOT_META_MASK) as u8
}

/// Extracts slot `slot`'s stored CRC-6 checksum from a header word.
#[inline]
pub const fn header_checksum(header: u64, slot: usize) -> u8 {
    header_slot_meta(header, slot) & CHECKSUM_MASK as u8
}

/// Whether slot `slot`'s spill flag is set: its value bytes are a packed
/// value-log pointer, not an inline payload.
#[inline]
pub const fn header_slot_spilled(header: u64, slot: usize) -> bool {
    header_slot_meta(header, slot) & SPILL_FLAG != 0
}

/// Returns `header` with slot `slot`'s metadata field replaced by `meta`.
#[inline]
pub const fn header_with_meta(header: u64, slot: usize, meta: u8) -> u64 {
    let shift = meta_shift(slot);
    (header & !(SLOT_META_MASK << shift)) | (((meta as u64) & SLOT_META_MASK) << shift)
}

/// Packs a validity bitmap and eight 7-bit metadata fields into a header
/// word.
pub fn header_pack(valid: u8, metas: [u8; SLOTS_PER_BUCKET]) -> u64 {
    let mut h = valid as u64;
    let mut s = 0;
    while s < SLOTS_PER_BUCKET {
        h = header_with_meta(h, s, metas[s]);
        s += 1;
    }
    h
}

/// Unpacks a header word into its validity bitmap and eight metadata
/// fields.
pub fn header_unpack(header: u64) -> (u8, [u8; SLOTS_PER_BUCKET]) {
    let mut metas = [0u8; SLOTS_PER_BUCKET];
    for (s, meta) in metas.iter_mut().enumerate() {
        *meta = header_slot_meta(header, s);
    }
    (header_valid_bits(header) as u8, metas)
}

/// Whether a record's bytes match the checksum the header stores for its
/// slot (the spill flag is excluded — it is protocol state, not payload).
/// Only meaningful when the slot's valid bit is set.
#[inline]
pub fn slot_checksum_ok(header: u64, slot: usize, rec: &Record) -> bool {
    header_checksum(header, slot) == checksum6(&rec.to_bytes())
}

/// One level of the non-volatile table.
#[derive(Debug, Clone)]
pub struct Level {
    region: Arc<NvmRegion>,
    n_segments: usize,
    buckets_per_segment: usize,
}

impl Level {
    /// Allocates a zeroed level of `n_segments × buckets_per_segment`
    /// buckets. Panics on backend allocation failure; fallible
    /// construction is [`Level::try_new`].
    pub fn new(n_segments: usize, buckets_per_segment: usize, opts: &NvmOptions) -> Self {
        Self::try_new(n_segments, buckets_per_segment, opts)
            .unwrap_or_else(|e| panic!("level allocation failed: {e}"))
    }

    /// Allocates a zeroed level, surfacing backend (pool-file) failures as
    /// [`HdnhError::Io`](crate::HdnhError::Io) instead of panicking.
    pub fn try_new(
        n_segments: usize,
        buckets_per_segment: usize,
        opts: &NvmOptions,
    ) -> Result<Self, crate::HdnhError> {
        assert!(n_segments.is_power_of_two() && buckets_per_segment.is_power_of_two());
        let bytes = n_segments * buckets_per_segment * BUCKET_BYTES;
        let region = NvmRegion::alloc(bytes, opts, "seg")?;
        Ok(Level {
            region: Arc::new(region),
            n_segments,
            buckets_per_segment,
        })
    }

    /// Re-adopts an existing region (recovery).
    pub fn from_region(
        region: Arc<NvmRegion>,
        n_segments: usize,
        buckets_per_segment: usize,
    ) -> Self {
        assert_eq!(region.len(), n_segments * buckets_per_segment * BUCKET_BYTES);
        Level {
            region,
            n_segments,
            buckets_per_segment,
        }
    }

    /// The backing region.
    #[inline]
    pub fn region(&self) -> &Arc<NvmRegion> {
        &self.region
    }

    /// Segments in this level.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Buckets per segment.
    #[inline]
    pub fn buckets_per_segment(&self) -> usize {
        self.buckets_per_segment
    }

    /// Total buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.n_segments * self.buckets_per_segment
    }

    /// Total slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.n_buckets() * SLOTS_PER_BUCKET
    }

    /// The four candidate (global) bucket indices for a key in this level:
    /// two segment choices × two in-segment bucket choices. Duplicates are
    /// possible when the hashes collide; callers tolerate re-probing.
    ///
    /// Bit budget: the OCF fingerprint is `h1 & 0xFF`, so **no index may
    /// consume h1's low byte** — otherwise every h1-routed resident of a
    /// probed bucket would share the search key's fingerprint and the
    /// filter would silently stop filtering as the table grows (segment
    /// counts ≥ 256 would alias the full fingerprint). h1 therefore
    /// contributes bits 8.. for the segment and 40.. for the bucket; h2 is
    /// fingerprint-free and contributes bits 0.. and 32...
    #[inline]
    pub fn candidates(&self, h: &KeyHashes) -> [usize; 4] {
        let s1 = ((h.h1 >> 8) as usize) & (self.n_segments - 1);
        let s2 = (h.h2 as usize) & (self.n_segments - 1);
        let b1 = ((h.h1 >> 40) as usize) & (self.buckets_per_segment - 1);
        let b2 = ((h.h2 >> 32) as usize) & (self.buckets_per_segment - 1);
        [
            s1 * self.buckets_per_segment + b1,
            s1 * self.buckets_per_segment + b2,
            s2 * self.buckets_per_segment + b1,
            s2 * self.buckets_per_segment + b2,
        ]
    }

    // ---------------- byte offsets ----------------

    /// Byte offset of a bucket's persisted header word.
    #[inline]
    pub fn header_off(&self, bucket: usize) -> usize {
        bucket * BUCKET_BYTES
    }

    /// Byte offset of a record slot.
    #[inline]
    pub fn slot_off(&self, bucket: usize, slot: usize) -> usize {
        debug_assert!(slot < SLOTS_PER_BUCKET);
        bucket * BUCKET_BYTES + BUCKET_HEADER + slot * RECORD_LEN
    }

    // ---------------- persisted bitmap header ----------------

    /// Loads the persisted bitmap word (charged as one NVM block read).
    #[inline]
    pub fn load_header(&self, bucket: usize) -> u64 {
        self.region.atomic_load_u64(self.header_off(bucket), Ordering::Acquire)
    }

    /// Header load *without* a media charge — used right after the same
    /// thread wrote the bucket (line still in cache).
    #[inline]
    pub fn load_header_cached(&self, bucket: usize) -> u64 {
        self.region
            .atomic_load_u64_cached(self.header_off(bucket), Ordering::Acquire)
    }

    /// Atomically sets slot `slot`'s valid bit **and** installs `meta`
    /// (checksum + spill flag, see [`slot_meta`]) in one failure-atomic
    /// 8-byte store, then persists — the commit point of an insert
    /// (figure 9c). A reader that sees the valid bit is guaranteed to see
    /// the matching metadata.
    pub fn commit_slot_valid(&self, bucket: usize, slot: usize, meta: u8) {
        self.commit_header(bucket, |h| {
            header_with_meta(h | (1 << slot), slot, meta)
        });
    }

    /// Atomically clears slot `slot`'s valid bit and zeroes its metadata
    /// field, then persists — the commit point of a delete (and of a
    /// corruption quarantine).
    pub fn commit_slot_invalid(&self, bucket: usize, slot: usize) {
        self.commit_header(bucket, |h| {
            header_with_meta(h & !(1 << slot), slot, 0)
        });
    }

    /// Atomically flips the old and new slots' valid bits and moves the
    /// metadata (`meta` = new record's checksum + spill flag) **in one
    /// 8-byte store** and persists — the paper's figure-10(c) update
    /// commit, which is why the out-of-place slot must live in the same
    /// bucket.
    pub fn commit_slot_swap(&self, bucket: usize, old_slot: usize, new_slot: usize, meta: u8) {
        self.commit_header(bucket, |h| {
            let flipped = h ^ ((1 << old_slot) | (1 << new_slot));
            header_with_meta(header_with_meta(flipped, old_slot, 0), new_slot, meta)
        });
    }

    /// CAS loop applying `f` to the header word, then persist. Each CAS
    /// attempt is one charged 8-byte store, so a single-threaded commit
    /// costs exactly what the old fetch-op commit did; the pre-read rides
    /// the cached line the caller just wrote (same 256 B block as the
    /// record).
    fn commit_header(&self, bucket: usize, f: impl Fn(u64) -> u64) {
        let off = self.header_off(bucket);
        let mut cur = self.load_header_cached(bucket);
        loop {
            match self
                .region
                .atomic_cas_u64(off, cur, f(cur), Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.region.persist(off, 8);
        self.region.assert_persisted(off, 8);
    }

    // ---------------- record slots ----------------

    /// Writes a record into a slot and persists it (flush + fence). Does
    /// **not** set the valid bit; the caller commits separately so a crash
    /// between the two leaves the slot invisible (invariant I1).
    pub fn write_record(&self, bucket: usize, slot: usize, rec: &Record) {
        let off = self.slot_off(bucket, slot);
        self.region.write_pod(off, &rec.to_bytes());
        self.region.persist(off, RECORD_LEN);
        self.region.assert_persisted(off, RECORD_LEN);
    }

    /// Reads the record stored in a slot (charged as one NVM block read —
    /// a slot never crosses a 256-byte bucket boundary).
    #[inline]
    pub fn read_record(&self, bucket: usize, slot: usize) -> Record {
        let bytes: [u8; RECORD_LEN] = self.region.read_pod(self.slot_off(bucket, slot));
        Record::from_bytes(&bytes)
    }

    /// Reads an entire bucket (header + slots) in one charged access —
    /// what a recovery scan or a filter-less probe does: one media block.
    pub fn read_bucket(&self, bucket: usize) -> (u64, [Record; SLOTS_PER_BUCKET]) {
        let mut raw = [0u8; BUCKET_BYTES];
        self.region.read_into(self.header_off(bucket), &mut raw);
        let header = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let mut recs = [Record::new(hdnh_common::Key::ZERO, hdnh_common::Value::ZERO);
            SLOTS_PER_BUCKET];
        for (i, rec) in recs.iter_mut().enumerate() {
            let start = BUCKET_HEADER + i * RECORD_LEN;
            let bytes: [u8; RECORD_LEN] =
                raw[start..start + RECORD_LEN].try_into().unwrap();
            *rec = Record::from_bytes(&bytes);
        }
        (header, recs)
    }

    /// Re-zeroes every bucket header, persisted — recovery's "apply for
    /// the new level again": a region that was mid-allocation at the crash
    /// may hold torn header words, and clearing the valid bits is enough
    /// to make every stale slot invisible again.
    pub fn wipe_headers(&self) {
        for b in 0..self.n_buckets() {
            let off = self.header_off(b);
            self.region.atomic_store_u64(off, 0, Ordering::Release);
            self.region.persist(off, 8);
        }
    }

    /// Number of valid slots according to the persisted headers (recovery /
    /// diagnostics; charged reads). Masks off the checksum bits — only the
    /// low byte is the validity bitmap.
    pub fn count_valid(&self) -> usize {
        (0..self.n_buckets())
            .map(|b| header_valid_bits(self.load_header(b)).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_common::{Key, Value};

    fn level() -> Level {
        Level::new(4, 8, &NvmOptions::fast())
    }

    #[test]
    fn geometry() {
        let l = level();
        assert_eq!(l.n_buckets(), 32);
        assert_eq!(l.n_slots(), 256);
        assert_eq!(l.region().len(), 32 * 256);
        assert_eq!(l.header_off(3), 768);
        assert_eq!(l.slot_off(0, 0), 8);
        assert_eq!(l.slot_off(0, 7), 8 + 7 * 31);
        assert_eq!(l.slot_off(1, 0), 256 + 8);
    }

    #[test]
    fn slots_stay_inside_their_bucket() {
        let l = level();
        for b in 0..l.n_buckets() {
            for s in 0..SLOTS_PER_BUCKET {
                let off = l.slot_off(b, s);
                assert!(off / BUCKET_BYTES == b && (off + RECORD_LEN - 1) / BUCKET_BYTES == b);
            }
        }
    }

    #[test]
    fn candidates_in_range_and_deterministic() {
        let l = level();
        for i in 0..1000u64 {
            let h = KeyHashes::of(&Key::from_u64(i));
            let c = l.candidates(&h);
            assert_eq!(c, l.candidates(&h));
            for b in c {
                assert!(b < l.n_buckets());
            }
        }
    }

    #[test]
    fn candidates_share_segments_pairwise() {
        let l = level();
        let h = KeyHashes::of(&Key::from_u64(99));
        let c = l.candidates(&h);
        // c[0],c[1] in one segment; c[2],c[3] in another (possibly equal).
        assert_eq!(c[0] / l.buckets_per_segment(), c[1] / l.buckets_per_segment());
        assert_eq!(c[2] / l.buckets_per_segment(), c[3] / l.buckets_per_segment());
    }

    #[test]
    fn record_roundtrip_and_commit() {
        let l = level();
        let rec = Record::new(Key::from_u64(5), Value::from_u64(55));
        let ck = checksum6(&rec.to_bytes());
        l.write_record(2, 3, &rec);
        assert_eq!(l.load_header(2), 0, "valid bit not yet set");
        l.commit_slot_valid(2, 3, ck);
        assert_eq!(header_valid_bits(l.load_header(2)), 1 << 3);
        assert_eq!(header_checksum(l.load_header(2), 3), ck);
        assert!(slot_checksum_ok(l.load_header(2), 3, &rec));
        assert_eq!(l.read_record(2, 3), rec);
        l.commit_slot_invalid(2, 3);
        assert_eq!(l.load_header(2), 0, "valid bit and checksum both cleared");
    }

    #[test]
    fn swap_flips_both_bits_atomically() {
        let l = level();
        let old = Record::new(Key::from_u64(8), Value::from_u64(80));
        let new = Record::new(Key::from_u64(8), Value::from_u64(81));
        l.write_record(0, 1, &old);
        l.commit_slot_valid(0, 1, checksum6(&old.to_bytes()));
        l.write_record(0, 4, &new);
        let before = l.stats_writes();
        l.commit_slot_swap(0, 1, 4, checksum6(&new.to_bytes()));
        let h = l.load_header(0);
        assert_eq!(header_valid_bits(h), 1 << 4);
        assert_eq!(header_checksum(h, 1), 0, "old slot's checksum cleared");
        assert!(slot_checksum_ok(h, 4, &new));
        // Exactly one data store (plus persist) for the double flip.
        assert_eq!(l.stats_writes() - before, 1);
    }

    impl Level {
        fn stats_writes(&self) -> u64 {
            self.region.stats().snapshot().writes
        }
    }

    #[test]
    fn read_bucket_matches_slot_reads() {
        let l = level();
        for s in [0usize, 3, 7] {
            let rec = Record::new(Key::from_u64(s as u64), Value::from_u64(100 + s as u64));
            l.write_record(1, s, &rec);
            l.commit_slot_valid(1, s, checksum6(&rec.to_bytes()));
        }
        let (header, recs) = l.read_bucket(1);
        assert_eq!(header_valid_bits(header), 0b1000_1001);
        for s in [0usize, 3, 7] {
            assert_eq!(recs[s], l.read_record(1, s));
            assert_eq!(recs[s].key.as_u64(), s as u64);
            assert!(slot_checksum_ok(header, s, &recs[s]));
        }
    }

    #[test]
    fn bucket_read_is_one_block() {
        let l = level();
        let before = l.region().stats().snapshot();
        let _ = l.read_bucket(9);
        let d = l.region().stats().snapshot().since(&before);
        assert_eq!(d.read_blocks, 1);
    }

    #[test]
    fn count_valid_sums_headers() {
        let l = level();
        // Non-zero checksums must not inflate the count.
        l.commit_slot_valid(0, 0, 0x7F);
        l.commit_slot_valid(0, 1, 0x55);
        l.commit_slot_valid(31, 7, 0x7F);
        assert_eq!(l.count_valid(), 3);
    }

    #[test]
    fn header_pack_unpack_roundtrip() {
        let cks = [0u8, 1, 0x7F, 0x2A, 0x55, 0x13, 0x40, 0x6E];
        let h = header_pack(0b1010_0110, cks);
        let (valid, got) = header_unpack(h);
        assert_eq!(valid, 0b1010_0110);
        assert_eq!(got, cks);
        // Fields are independent: replacing one checksum leaves the rest.
        let h2 = header_with_meta(h, 2, 0x01);
        let (_, got2) = header_unpack(h2);
        assert_eq!(got2[2], 0x01);
        for s in [0usize, 1, 3, 4, 5, 6, 7] {
            assert_eq!(got2[s], cks[s], "slot {s} disturbed");
        }
        assert_eq!(header_valid_bits(h2), 0b1010_0110);
    }

    #[test]
    fn checksum_detects_single_byte_damage() {
        let rec = Record::new(Key::from_u64(77), Value::from_u64(770));
        let clean = rec.to_bytes();
        let ck = checksum6(&clean);
        for i in 0..RECORD_LEN {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut dam = clean;
                dam[i] ^= mask;
                assert_ne!(checksum6(&dam), ck, "byte {i} mask {mask:#x} undetected");
            }
        }
    }

    #[test]
    fn checksum_mismatch_after_in_place_corruption() {
        let l = level();
        let rec = Record::new(Key::from_u64(5), Value::from_u64(55));
        l.write_record(0, 2, &rec);
        l.commit_slot_valid(0, 2, checksum6(&rec.to_bytes()));
        assert!(slot_checksum_ok(l.load_header(0), 2, &l.read_record(0, 2)));
        // Flip one media bit in the record's value bytes.
        l.region().corrupt(l.slot_off(0, 2) + 20, &[0x04]);
        assert!(!slot_checksum_ok(l.load_header(0), 2, &l.read_record(0, 2)));
    }

    #[test]
    fn insert_protocol_is_crash_safe_record_first() {
        // Strict region: crash between record write and bit set leaves the
        // slot invisible; crash after bit set keeps the full record.
        let l = Level::new(1, 2, &NvmOptions::strict());
        let rec = Record::new(Key::from_u64(1), Value::from_u64(2));
        l.write_record(0, 0, &rec);
        // Crash before commit: record bytes may be anything, but the valid
        // bit is 0.
        let mut rng = hdnh_common::rng::XorShift64Star::new(3);
        l.region().crash(&mut rng);
        assert_eq!(l.load_header(0) & 1, 0);

        let rec2 = Record::new(Key::from_u64(9), Value::from_u64(10));
        l.write_record(0, 1, &rec2);
        l.commit_slot_valid(0, 1, checksum6(&rec2.to_bytes()));
        l.region().crash(&mut rng);
        assert_eq!(l.load_header(0) & 0b10, 0b10);
        assert_eq!(l.read_record(0, 1), rec2);
    }
}
