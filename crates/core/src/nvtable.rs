//! The non-volatile table (paper §3.1, figure 2).
//!
//! One [`Level`] is an array of segments in NVM; each segment is an array of
//! 256-byte buckets; each bucket is an 8-byte persisted header (the bitmap
//! word, written with failure-atomic 8-byte stores) followed by eight
//! 31-byte record slots:
//!
//! ```text
//! bucket (256 B, block-aligned):
//!   [ header u64 ][ slot0 31B ][ slot1 31B ] … [ slot7 31B ]
//!     bit i of header = slot i valid           8 + 8×31 = 256
//! ```
//!
//! Keys choose **two candidate segments** (one per hash) and **two candidate
//! buckets inside each segment** — the paper's "2-cuckoo strategy" applied
//! at both granularities, yielding four candidate buckets per level and
//! eight across the two levels.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hdnh_common::hash::KeyHashes;
use hdnh_common::{Record, RECORD_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion};

use crate::params::{BUCKET_BYTES, BUCKET_HEADER, SLOTS_PER_BUCKET};

/// One level of the non-volatile table.
#[derive(Debug, Clone)]
pub struct Level {
    region: Arc<NvmRegion>,
    n_segments: usize,
    buckets_per_segment: usize,
}

impl Level {
    /// Allocates a zeroed level of `n_segments × buckets_per_segment`
    /// buckets.
    pub fn new(n_segments: usize, buckets_per_segment: usize, opts: &NvmOptions) -> Self {
        assert!(n_segments.is_power_of_two() && buckets_per_segment.is_power_of_two());
        let bytes = n_segments * buckets_per_segment * BUCKET_BYTES;
        Level {
            region: Arc::new(NvmRegion::new(bytes, opts.clone())),
            n_segments,
            buckets_per_segment,
        }
    }

    /// Re-adopts an existing region (recovery).
    pub fn from_region(
        region: Arc<NvmRegion>,
        n_segments: usize,
        buckets_per_segment: usize,
    ) -> Self {
        assert_eq!(region.len(), n_segments * buckets_per_segment * BUCKET_BYTES);
        Level {
            region,
            n_segments,
            buckets_per_segment,
        }
    }

    /// The backing region.
    #[inline]
    pub fn region(&self) -> &Arc<NvmRegion> {
        &self.region
    }

    /// Segments in this level.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Buckets per segment.
    #[inline]
    pub fn buckets_per_segment(&self) -> usize {
        self.buckets_per_segment
    }

    /// Total buckets.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.n_segments * self.buckets_per_segment
    }

    /// Total slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.n_buckets() * SLOTS_PER_BUCKET
    }

    /// The four candidate (global) bucket indices for a key in this level:
    /// two segment choices × two in-segment bucket choices. Duplicates are
    /// possible when the hashes collide; callers tolerate re-probing.
    ///
    /// Bit budget: the OCF fingerprint is `h1 & 0xFF`, so **no index may
    /// consume h1's low byte** — otherwise every h1-routed resident of a
    /// probed bucket would share the search key's fingerprint and the
    /// filter would silently stop filtering as the table grows (segment
    /// counts ≥ 256 would alias the full fingerprint). h1 therefore
    /// contributes bits 8.. for the segment and 40.. for the bucket; h2 is
    /// fingerprint-free and contributes bits 0.. and 32...
    #[inline]
    pub fn candidates(&self, h: &KeyHashes) -> [usize; 4] {
        let s1 = ((h.h1 >> 8) as usize) & (self.n_segments - 1);
        let s2 = (h.h2 as usize) & (self.n_segments - 1);
        let b1 = ((h.h1 >> 40) as usize) & (self.buckets_per_segment - 1);
        let b2 = ((h.h2 >> 32) as usize) & (self.buckets_per_segment - 1);
        [
            s1 * self.buckets_per_segment + b1,
            s1 * self.buckets_per_segment + b2,
            s2 * self.buckets_per_segment + b1,
            s2 * self.buckets_per_segment + b2,
        ]
    }

    // ---------------- byte offsets ----------------

    /// Byte offset of a bucket's persisted header word.
    #[inline]
    pub fn header_off(&self, bucket: usize) -> usize {
        bucket * BUCKET_BYTES
    }

    /// Byte offset of a record slot.
    #[inline]
    pub fn slot_off(&self, bucket: usize, slot: usize) -> usize {
        debug_assert!(slot < SLOTS_PER_BUCKET);
        bucket * BUCKET_BYTES + BUCKET_HEADER + slot * RECORD_LEN
    }

    // ---------------- persisted bitmap header ----------------

    /// Loads the persisted bitmap word (charged as one NVM block read).
    #[inline]
    pub fn load_header(&self, bucket: usize) -> u64 {
        self.region.atomic_load_u64(self.header_off(bucket), Ordering::Acquire)
    }

    /// Header load *without* a media charge — used right after the same
    /// thread wrote the bucket (line still in cache).
    #[inline]
    pub fn load_header_cached(&self, bucket: usize) -> u64 {
        self.region
            .atomic_load_u64_cached(self.header_off(bucket), Ordering::Acquire)
    }

    /// Atomically sets slot `slot`'s valid bit and persists the header —
    /// the failure-atomic commit point of an insert (figure 9c).
    pub fn commit_slot_valid(&self, bucket: usize, slot: usize) {
        let off = self.header_off(bucket);
        self.region.atomic_fetch_or_u64(off, 1 << slot, Ordering::AcqRel);
        self.region.persist(off, 8);
        self.region.assert_persisted(off, 8);
    }

    /// Atomically clears slot `slot`'s valid bit and persists — the commit
    /// point of a delete.
    pub fn commit_slot_invalid(&self, bucket: usize, slot: usize) {
        let off = self.header_off(bucket);
        self.region.atomic_fetch_and_u64(off, !(1 << slot), Ordering::AcqRel);
        self.region.persist(off, 8);
        self.region.assert_persisted(off, 8);
    }

    /// Atomically flips the old and new slots' valid bits **in one 8-byte
    /// store** and persists — the paper's figure-10(c) update commit, which
    /// is why the out-of-place slot must live in the same bucket.
    pub fn commit_slot_swap(&self, bucket: usize, old_slot: usize, new_slot: usize) {
        let off = self.header_off(bucket);
        self.region
            .atomic_fetch_xor_u64(off, (1 << old_slot) | (1 << new_slot), Ordering::AcqRel);
        self.region.persist(off, 8);
        self.region.assert_persisted(off, 8);
    }

    // ---------------- record slots ----------------

    /// Writes a record into a slot and persists it (flush + fence). Does
    /// **not** set the valid bit; the caller commits separately so a crash
    /// between the two leaves the slot invisible (invariant I1).
    pub fn write_record(&self, bucket: usize, slot: usize, rec: &Record) {
        let off = self.slot_off(bucket, slot);
        self.region.write_pod(off, &rec.to_bytes());
        self.region.persist(off, RECORD_LEN);
        self.region.assert_persisted(off, RECORD_LEN);
    }

    /// Reads the record stored in a slot (charged as one NVM block read —
    /// a slot never crosses a 256-byte bucket boundary).
    #[inline]
    pub fn read_record(&self, bucket: usize, slot: usize) -> Record {
        let bytes: [u8; RECORD_LEN] = self.region.read_pod(self.slot_off(bucket, slot));
        Record::from_bytes(&bytes)
    }

    /// Reads an entire bucket (header + slots) in one charged access —
    /// what a recovery scan or a filter-less probe does: one media block.
    pub fn read_bucket(&self, bucket: usize) -> (u64, [Record; SLOTS_PER_BUCKET]) {
        let mut raw = [0u8; BUCKET_BYTES];
        self.region.read_into(self.header_off(bucket), &mut raw);
        let header = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let mut recs = [Record::new(hdnh_common::Key::ZERO, hdnh_common::Value::ZERO);
            SLOTS_PER_BUCKET];
        for (i, rec) in recs.iter_mut().enumerate() {
            let start = BUCKET_HEADER + i * RECORD_LEN;
            let bytes: [u8; RECORD_LEN] =
                raw[start..start + RECORD_LEN].try_into().unwrap();
            *rec = Record::from_bytes(&bytes);
        }
        (header, recs)
    }

    /// Re-zeroes every bucket header, persisted — recovery's "apply for
    /// the new level again": a region that was mid-allocation at the crash
    /// may hold torn header words, and clearing the valid bits is enough
    /// to make every stale slot invisible again.
    pub fn wipe_headers(&self) {
        for b in 0..self.n_buckets() {
            let off = self.header_off(b);
            self.region.atomic_store_u64(off, 0, Ordering::Release);
            self.region.persist(off, 8);
        }
    }

    /// Number of valid slots according to the persisted headers (recovery /
    /// diagnostics; charged reads).
    pub fn count_valid(&self) -> usize {
        (0..self.n_buckets())
            .map(|b| self.load_header(b).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_common::{Key, Value};

    fn level() -> Level {
        Level::new(4, 8, &NvmOptions::fast())
    }

    #[test]
    fn geometry() {
        let l = level();
        assert_eq!(l.n_buckets(), 32);
        assert_eq!(l.n_slots(), 256);
        assert_eq!(l.region().len(), 32 * 256);
        assert_eq!(l.header_off(3), 768);
        assert_eq!(l.slot_off(0, 0), 8);
        assert_eq!(l.slot_off(0, 7), 8 + 7 * 31);
        assert_eq!(l.slot_off(1, 0), 256 + 8);
    }

    #[test]
    fn slots_stay_inside_their_bucket() {
        let l = level();
        for b in 0..l.n_buckets() {
            for s in 0..SLOTS_PER_BUCKET {
                let off = l.slot_off(b, s);
                assert!(off / BUCKET_BYTES == b && (off + RECORD_LEN - 1) / BUCKET_BYTES == b);
            }
        }
    }

    #[test]
    fn candidates_in_range_and_deterministic() {
        let l = level();
        for i in 0..1000u64 {
            let h = KeyHashes::of(&Key::from_u64(i));
            let c = l.candidates(&h);
            assert_eq!(c, l.candidates(&h));
            for b in c {
                assert!(b < l.n_buckets());
            }
        }
    }

    #[test]
    fn candidates_share_segments_pairwise() {
        let l = level();
        let h = KeyHashes::of(&Key::from_u64(99));
        let c = l.candidates(&h);
        // c[0],c[1] in one segment; c[2],c[3] in another (possibly equal).
        assert_eq!(c[0] / l.buckets_per_segment(), c[1] / l.buckets_per_segment());
        assert_eq!(c[2] / l.buckets_per_segment(), c[3] / l.buckets_per_segment());
    }

    #[test]
    fn record_roundtrip_and_commit() {
        let l = level();
        let rec = Record::new(Key::from_u64(5), Value::from_u64(55));
        l.write_record(2, 3, &rec);
        assert_eq!(l.load_header(2), 0, "valid bit not yet set");
        l.commit_slot_valid(2, 3);
        assert_eq!(l.load_header(2), 1 << 3);
        assert_eq!(l.read_record(2, 3), rec);
        l.commit_slot_invalid(2, 3);
        assert_eq!(l.load_header(2), 0);
    }

    #[test]
    fn swap_flips_both_bits_atomically() {
        let l = level();
        l.commit_slot_valid(0, 1);
        let before = l.stats_writes();
        l.commit_slot_swap(0, 1, 4);
        assert_eq!(l.load_header(0), 1 << 4);
        // Exactly one data store (plus persist) for the double flip.
        assert_eq!(l.stats_writes() - before, 1);
    }

    impl Level {
        fn stats_writes(&self) -> u64 {
            self.region.stats().snapshot().writes
        }
    }

    #[test]
    fn read_bucket_matches_slot_reads() {
        let l = level();
        for s in [0usize, 3, 7] {
            let rec = Record::new(Key::from_u64(s as u64), Value::from_u64(100 + s as u64));
            l.write_record(1, s, &rec);
            l.commit_slot_valid(1, s);
        }
        let (header, recs) = l.read_bucket(1);
        assert_eq!(header, 0b1000_1001);
        for s in [0usize, 3, 7] {
            assert_eq!(recs[s], l.read_record(1, s));
            assert_eq!(recs[s].key.as_u64(), s as u64);
        }
    }

    #[test]
    fn bucket_read_is_one_block() {
        let l = level();
        let before = l.region().stats().snapshot();
        let _ = l.read_bucket(9);
        let d = l.region().stats().snapshot().since(&before);
        assert_eq!(d.read_blocks, 1);
    }

    #[test]
    fn count_valid_sums_headers() {
        let l = level();
        l.commit_slot_valid(0, 0);
        l.commit_slot_valid(0, 1);
        l.commit_slot_valid(31, 7);
        assert_eq!(l.count_valid(), 3);
    }

    #[test]
    fn insert_protocol_is_crash_safe_record_first() {
        // Strict region: crash between record write and bit set leaves the
        // slot invisible; crash after bit set keeps the full record.
        let l = Level::new(1, 2, &NvmOptions::strict());
        let rec = Record::new(Key::from_u64(1), Value::from_u64(2));
        l.write_record(0, 0, &rec);
        // Crash before commit: record bytes may be anything, but the valid
        // bit is 0.
        let mut rng = hdnh_common::rng::XorShift64Star::new(3);
        l.region().crash(&mut rng);
        assert_eq!(l.load_header(0) & 1, 0);

        let rec2 = Record::new(Key::from_u64(9), Value::from_u64(10));
        l.write_record(0, 1, &rec2);
        l.commit_slot_valid(0, 1);
        l.region().crash(&mut rng);
        assert_eq!(l.load_header(0) & 0b10, 0b10);
        assert_eq!(l.read_record(0, 1), rec2);
    }
}
