//! Pool-file lifecycle: superblock, open-or-recover, clean shutdown.
//!
//! A pool directory (see [`hdnh_nvm::PoolDir`]) holds the store's
//! persistent regions as `MAP_SHARED` files plus one 64-byte `superblock`
//! that this module owns. The superblock is the *outer* integrity layer:
//! it names the format (magic + version), pins the geometry
//! (`segment_bytes`), counts open generations (`layout_epoch`), records
//! whether the last process detached cleanly, and carries a CRC over the
//! whole block so any torn or bit-flipped header is detected before a
//! single region byte is trusted.
//!
//! Open protocol ([`Hdnh::open_pool`]):
//! 1. validate the superblock (typed errors, never a panic);
//! 2. mark the pool **dirty** (epoch+1) *before* mapping any region — if
//!    this process dies, the next open knows recovery is required;
//! 3. classify the `seg-*.dat` files into top/bottom/new-top **by size
//!    alone** (levels double every resize, so sizes are distinct);
//! 4. run the ordinary recovery path (resize resume + checksum-verified
//!    rebuild) — a clean previous shutdown makes this a pure rebuild;
//! 5. sweep orphan files left by a crash inside a resize window.
//!
//! Close protocol ([`Hdnh::close_pool`]): refuse if a flush fault is
//! pending, `msync(MS_SYNC)`+`fsync` every region, then — and only then —
//! rewrite the superblock with the clean flag set.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hdnh_nvm::{Backend, NvmRegion, PoolDir};

use crate::meta::{self, META_BYTES};
use crate::params::HdnhParams;
use crate::recovery::{PersistentPool, RecoveryTiming};
use crate::{Hdnh, HdnhError};

/// Filename of the pool superblock inside a pool directory.
pub const SUPERBLOCK_FILE: &str = "superblock";

/// Superblock magic: "HDNHPOOL" as ASCII bytes, read as little-endian.
pub const SUPERBLOCK_MAGIC: u64 = u64::from_le_bytes(*b"HDNHPOOL");

/// Superblock format version this build reads and writes. Version 2
/// added value-log segment files (`vlog-*.dat`) to the pool layout;
/// older builds would misclassify them as level regions, so v1 pools
/// are refused rather than silently reinterpreted.
pub const SUPERBLOCK_VERSION: u32 = 2;

/// Encoded superblock size on disk.
pub const SUPERBLOCK_BYTES: usize = 64;

const FLAG_CLEAN: u32 = 1;

/// Decoded pool superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Format version (currently always [`SUPERBLOCK_VERSION`]).
    pub version: u32,
    /// Whether the previous holder detached through the clean-shutdown
    /// path (all regions synced, nothing in flight).
    pub clean: bool,
    /// The pool's segment size in bytes; must match the opener's params.
    pub segment_bytes: u64,
    /// Incremented on every dirty open; a monotone "generation" counter
    /// for diagnostics and log correlation.
    pub layout_epoch: u64,
}

impl Superblock {
    /// Serializes to the on-disk layout:
    /// `magic u64 | version u32 | flags u32 | segment_bytes u64 |
    /// layout_epoch u64 | reserved [u8; 28] | crc32 u32`, all
    /// little-endian, CRC computed over the whole block with the CRC
    /// field zeroed.
    pub fn encode(&self) -> [u8; SUPERBLOCK_BYTES] {
        let mut b = [0u8; SUPERBLOCK_BYTES];
        b[0..8].copy_from_slice(&SUPERBLOCK_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&self.version.to_le_bytes());
        let flags: u32 = if self.clean { FLAG_CLEAN } else { 0 };
        b[12..16].copy_from_slice(&flags.to_le_bytes());
        b[16..24].copy_from_slice(&self.segment_bytes.to_le_bytes());
        b[24..32].copy_from_slice(&self.layout_epoch.to_le_bytes());
        let crc = crc32_ieee(&b[..SUPERBLOCK_BYTES - 4]);
        b[60..64].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Parses and validates an on-disk superblock. Every failure mode is
    /// a typed [`HdnhError::Recovery`] — truncation, wrong magic, any
    /// bit flip (caught by the CRC), unsupported version.
    pub fn decode(bytes: &[u8]) -> Result<Superblock, HdnhError> {
        if bytes.len() != SUPERBLOCK_BYTES {
            return Err(HdnhError::Recovery(format!(
                "superblock is {} bytes, expected {SUPERBLOCK_BYTES} (truncated?)",
                bytes.len()
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[60..64].try_into().unwrap());
        let actual_crc = crc32_ieee(&bytes[..SUPERBLOCK_BYTES - 4]);
        if stored_crc != actual_crc {
            return Err(HdnhError::Recovery(format!(
                "superblock CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }
        let magic = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if magic != SUPERBLOCK_MAGIC {
            return Err(HdnhError::Recovery(format!(
                "not an HDNH pool superblock (magic {magic:#018x})"
            )));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SUPERBLOCK_VERSION {
            return Err(HdnhError::Recovery(format!(
                "unsupported superblock version {version} (this build reads {SUPERBLOCK_VERSION})"
            )));
        }
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        Ok(Superblock {
            version,
            clean: flags & FLAG_CLEAN != 0,
            segment_bytes: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            layout_epoch: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), bitwise — this
/// runs on superblock/manifest-sized inputs, a table buys nothing. Public
/// because the snapshot manifest and its tests share the same checksum.
pub fn crc32_ieee(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (!(crc & 1)).wrapping_add(1));
        }
    }
    !crc
}

pub(crate) fn read_superblock(dir: &Path) -> Result<Superblock, HdnhError> {
    let path = dir.join(SUPERBLOCK_FILE);
    let bytes = fs::read(&path)
        .map_err(|e| HdnhError::Io(format!("read {}: {e}", path.display())))?;
    Superblock::decode(&bytes)
}

/// Crash-safe superblock replacement: write a temp file, fsync it,
/// rename over the live name, fsync the directory. A kill at any point
/// leaves either the old or the new (complete, CRC-valid) block.
pub(crate) fn write_superblock(dir: &Path, sb: &Superblock) -> Result<(), HdnhError> {
    let tmp = dir.join("superblock.tmp");
    let live = dir.join(SUPERBLOCK_FILE);
    let io = |op: &str, p: &Path, e: std::io::Error| {
        HdnhError::Io(format!("{op} {}: {e}", p.display()))
    };
    fs::write(&tmp, sb.encode()).map_err(|e| io("write", &tmp, e))?;
    let f = fs::File::open(&tmp).map_err(|e| io("open", &tmp, e))?;
    f.sync_all().map_err(|e| io("fsync", &tmp, e))?;
    fs::rename(&tmp, &live).map_err(|e| io("rename", &tmp, e))?;
    #[cfg(unix)]
    {
        let d = fs::File::open(dir).map_err(|e| io("open", dir, e))?;
        d.sync_all().map_err(|e| io("fsync", dir, e))?;
    }
    Ok(())
}

/// What [`Hdnh::open_pool`] did.
#[derive(Debug, Clone, Copy)]
pub struct PoolOpenReport {
    /// `true` when the directory held no pool and one was created.
    pub created: bool,
    /// `true` when the previous holder shut down cleanly (recovery was a
    /// pure rebuild). Always `false` for a created pool.
    pub was_clean: bool,
    /// Timing of the recovery scan (zeroed for a created pool).
    pub recovery: RecoveryTiming,
    /// Orphan region files removed after recovery (left by a process
    /// killed inside a resize window).
    pub removed_orphans: usize,
    /// The pool's open generation after this open.
    pub layout_epoch: u64,
}

impl Hdnh {
    /// Opens (or creates) a file-backed pool at `dir` and returns the
    /// live table plus a report of what happened.
    ///
    /// `params.nvm` must be non-strict and heap-backed on entry (the pool
    /// backend is injected here); strict mode is rejected with
    /// [`HdnhError::Config`] because the shadow-media crash model
    /// simulates losses a mapped file does not have. A corrupt or
    /// truncated superblock, geometry mismatch, or unclassifiable region
    /// file set fails with a typed error — never a panic, and never by
    /// silently reformatting.
    pub fn open_pool(
        mut params: HdnhParams,
        dir: &Path,
        threads: usize,
    ) -> Result<(Hdnh, PoolOpenReport), HdnhError> {
        if params.nvm.strict {
            return Err(HdnhError::Config(
                "strict (shadow-media) mode requires the heap backend; \
                 a pool cannot be opened strict"
                    .into(),
            ));
        }
        let sb_path = dir.join(SUPERBLOCK_FILE);
        let meta_path = dir.join(hdnh_nvm::META_FILE);
        if !sb_path.exists() {
            if meta_path.exists() {
                return Err(HdnhError::Recovery(format!(
                    "{} has region files but no superblock (interrupted creation?); \
                     refusing to guess — remove the directory to start over",
                    dir.display()
                )));
            }
            return Self::create_pool(params, dir);
        }

        // ---- validate the superblock before trusting anything else ----
        let sb = read_superblock(dir)?;
        if sb.segment_bytes != params.segment_bytes as u64 {
            return Err(HdnhError::Recovery(format!(
                "pool was formatted with segment_bytes={} but params say {}",
                sb.segment_bytes, params.segment_bytes
            )));
        }
        let pool = Arc::new(PoolDir::open(dir).map_err(HdnhError::from)?);
        params.nvm.backend = Backend::Pool(Arc::clone(&pool));

        // ---- pre-validate the meta block (typed errors, not asserts) ----
        let meta_md = fs::metadata(&meta_path)
            .map_err(|e| HdnhError::Io(format!("stat {}: {e}", meta_path.display())))?;
        if meta_md.len() != META_BYTES as u64 {
            return Err(HdnhError::Recovery(format!(
                "meta block is {} bytes, expected {META_BYTES}",
                meta_md.len()
            )));
        }
        let mut head = [0u8; 56];
        {
            use std::io::Read;
            let mut f = fs::File::open(&meta_path)
                .map_err(|e| HdnhError::Io(format!("open {}: {e}", meta_path.display())))?;
            f.read_exact(&mut head)
                .map_err(|e| HdnhError::Io(format!("read {}: {e}", meta_path.display())))?;
        }
        let magic = u64::from_le_bytes(head[0..8].try_into().unwrap());
        if magic != meta::MAGIC {
            return Err(HdnhError::Recovery(format!(
                "meta block is not an HDNH pool (magic {magic:#018x})"
            )));
        }
        let meta_seg_bytes = u64::from_le_bytes(head[48..56].try_into().unwrap());
        if meta_seg_bytes != params.segment_bytes as u64 {
            return Err(HdnhError::Recovery(format!(
                "meta block says segment_bytes={meta_seg_bytes} but params say {}",
                params.segment_bytes
            )));
        }

        // ---- mark dirty BEFORE mapping regions ----
        let epoch = sb.layout_epoch + 1;
        write_superblock(
            dir,
            &Superblock {
                version: SUPERBLOCK_VERSION,
                clean: false,
                segment_bytes: sb.segment_bytes,
                layout_epoch: epoch,
            },
        )?;

        // ---- map the regions and classify them by size ----
        let meta_region = Arc::new(
            NvmRegion::open_file(&meta_path, &params.nvm).map_err(HdnhError::from)?,
        );
        // Geometry words straight from the (magic-checked) meta block.
        let state = u64::from_le_bytes(head[8..16].try_into().unwrap());
        let top_segments = u64::from_le_bytes(head[16..24].try_into().unwrap()) as usize;
        let bottom_segments = u64::from_le_bytes(head[24..32].try_into().unwrap()) as usize;
        let new_top_segments = u64::from_le_bytes(head[40..48].try_into().unwrap()) as usize;
        let stable = state == 1;
        if sb.clean && !stable {
            return Err(HdnhError::Recovery(format!(
                "superblock says clean shutdown but the resize state machine reads {state}"
            )));
        }
        let seg_bytes = params.segment_bytes as u64;
        let top_bytes = top_segments as u64 * seg_bytes;
        let bottom_bytes = bottom_segments as u64 * seg_bytes;
        let new_top_bytes = new_top_segments as u64 * seg_bytes;

        let mut files: Vec<(PathBuf, u64)> = Vec::new();
        for p in pool.region_files().map_err(HdnhError::from)? {
            let len = fs::metadata(&p)
                .map_err(|e| HdnhError::Io(format!("stat {}: {e}", p.display())))?
                .len();
            files.push((p, len));
        }
        // Deterministic: highest seg id first, so the most recently
        // allocated file wins when sizes tie (a stale twin is orphaned).
        files.sort();
        files.reverse();
        let mut take = |want: u64| -> Option<PathBuf> {
            let i = files.iter().position(|(_, len)| *len == want)?;
            Some(files.remove(i).0)
        };
        let top_path = take(top_bytes).ok_or_else(|| {
            HdnhError::Recovery(format!(
                "no region file of the top level's size ({top_bytes} bytes) exists in {}",
                dir.display()
            ))
        })?;
        let bottom_path = take(bottom_bytes).ok_or_else(|| {
            HdnhError::Recovery(format!(
                "no region file of the bottom level's size ({bottom_bytes} bytes) exists in {}",
                dir.display()
            ))
        })?;
        // An in-flight resize target is only meaningful outside Stable;
        // in Stable the recorded new-top size is a stale leftover.
        let new_top_path = if !stable && new_top_segments > 0 {
            take(new_top_bytes)
        } else {
            None
        };

        let open_region = |p: &Path| -> Result<Arc<NvmRegion>, HdnhError> {
            Ok(Arc::new(NvmRegion::open_file(p, &params.nvm)?))
        };
        // Value-log segments carry their id in the filename; a file whose
        // name does not parse is not ours to guess about.
        let mut vlog_regions = Vec::new();
        for p in pool.vlog_files().map_err(HdnhError::from)? {
            let id = hdnh_nvm::pool::vlog_id(&p).ok_or_else(|| {
                HdnhError::Recovery(format!(
                    "unparseable value-log filename {}",
                    p.display()
                ))
            })?;
            vlog_regions.push((id as u32, open_region(&p)?));
        }
        let persistent = PersistentPool {
            meta: meta_region,
            top: open_region(&top_path)?,
            bottom: open_region(&bottom_path)?,
            new_top: new_top_path.as_deref().map(open_region).transpose()?,
            vlog: vlog_regions,
        };

        // ---- the ordinary recovery path does the rest ----
        let (table, timing) = Hdnh::try_recover_timed(params, persistent, threads)?;

        // ---- sweep orphans (files no live region claims) ----
        let live = table.region_file_paths();
        let mut removed = 0usize;
        for p in pool.region_files().map_err(HdnhError::from)? {
            if !live.contains(&p) && fs::remove_file(&p).is_ok() {
                hdnh_nvm::shadow::remove_sidecar(&p);
                removed += 1;
            }
        }

        Ok((
            table,
            PoolOpenReport {
                created: false,
                was_clean: sb.clean,
                recovery: timing,
                removed_orphans: removed,
                layout_epoch: epoch,
            },
        ))
    }

    /// Formats a fresh pool: region files first, superblock (dirty) last,
    /// so a half-created directory is recognizably incomplete rather than
    /// silently openable.
    fn create_pool(
        mut params: HdnhParams,
        dir: &Path,
    ) -> Result<(Hdnh, PoolOpenReport), HdnhError> {
        let pool = Arc::new(PoolDir::create(dir).map_err(HdnhError::from)?);
        params.nvm.backend = Backend::Pool(Arc::clone(&pool));
        let segment_bytes = params.segment_bytes as u64;
        let table = Hdnh::try_new(params)?;
        // The freshly formatted regions exist only in page cache; pin the
        // creation to disk before publishing the superblock.
        table.sync_regions_to_disk()?;
        write_superblock(
            dir,
            &Superblock {
                version: SUPERBLOCK_VERSION,
                clean: false,
                segment_bytes,
                layout_epoch: 1,
            },
        )?;
        Ok((
            table,
            PoolOpenReport {
                created: true,
                was_clean: false,
                recovery: RecoveryTiming::default(),
                removed_orphans: 0,
                layout_epoch: 1,
            },
        ))
    }

    /// Clean shutdown of a file-backed table: full-strength sync of every
    /// region, then the superblock's clean flag. Fails (without setting
    /// the flag) if a flush fault is pending or any sync fails — the next
    /// open then takes the recovery path, which is exactly right.
    pub fn close_pool(self) -> Result<(), HdnhError> {
        let pool = match &self.params().nvm.backend {
            Backend::Pool(p) => Arc::clone(p),
            Backend::Heap => {
                return Err(HdnhError::Config(
                    "close_pool called on a heap-backed table".into(),
                ));
            }
        };
        if let Some(fault) = self.io_fault() {
            return Err(fault);
        }
        let dir = pool.path().to_path_buf();
        let sb = read_superblock(&dir)?;
        let pp = self.into_pool();
        for region in [&pp.meta, &pp.top, &pp.bottom]
            .into_iter()
            .chain(pp.new_top.as_ref())
            .chain(pp.vlog.iter().map(|(_, r)| r))
        {
            region.sync_to_disk().map_err(HdnhError::from)?;
        }
        write_superblock(&dir, &Superblock { clean: true, ..sb })?;
        hdnh_obs::trace::milestone(hdnh_obs::trace::Milestone::PoolClosed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            version: SUPERBLOCK_VERSION,
            clean: true,
            segment_bytes: 16384,
            layout_epoch: 42,
        };
        assert_eq!(Superblock::decode(&sb.encode()).unwrap(), sb);
        let dirty = Superblock { clean: false, ..sb };
        assert_eq!(Superblock::decode(&dirty.encode()).unwrap(), dirty);
    }

    #[test]
    fn superblock_rejects_any_single_bit_flip() {
        let sb = Superblock {
            version: SUPERBLOCK_VERSION,
            clean: true,
            segment_bytes: 4096,
            layout_epoch: 7,
        };
        let good = sb.encode();
        for byte in 0..SUPERBLOCK_BYTES {
            for bit in 0..8 {
                let mut bad = good;
                bad[byte] ^= 1 << bit;
                let r = Superblock::decode(&bad);
                assert!(r.is_err(), "bit {bit} of byte {byte} flipped but decode passed");
            }
        }
    }

    #[test]
    fn superblock_rejects_truncation() {
        let sb = Superblock {
            version: SUPERBLOCK_VERSION,
            clean: true,
            segment_bytes: 4096,
            layout_epoch: 1,
        };
        let good = sb.encode();
        for n in 0..SUPERBLOCK_BYTES {
            assert!(Superblock::decode(&good[..n]).is_err(), "len {n}");
        }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF4_3926);
    }
}
