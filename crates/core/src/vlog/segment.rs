//! One value-log segment: an append-only NVM region of checksummed
//! records.
//!
//! Record wire format (all integers little-endian):
//!
//! ```text
//! ┌──────────┬──────────┬───────────────┬──────────┬─────────┐
//! │ len: u32 │ key: 16B │ payload: len B│ crc: u32 │ pad → 8 │
//! └──────────┴──────────┴───────────────┴──────────┴─────────┘
//! ```
//!
//! The CRC32 (IEEE, the same polynomial as the superblock's) covers the
//! length, key and payload, so a torn write anywhere in a record — length
//! word, key, payload or the checksum itself — is detected and never
//! forged into a shorter-but-valid record. Records are reserved at 8-byte
//! granularity with one `fetch_add` on the tail cursor; a reservation that
//! would cross the end of the region seals the segment instead of writing,
//! leaving the unreserved suffix zero (a zero length word is the scan
//! terminator).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hdnh_common::{Key, KEY_LEN};
use hdnh_nvm::{fault, NvmRegion};

use crate::pool::crc32_ieee;

/// Fixed bytes around each record's payload: 4-byte length, 16-byte key,
/// 4-byte CRC32.
pub const RECORD_OVERHEAD: usize = 4 + KEY_LEN + 4;

/// Bytes a record with a `payload_len`-byte payload occupies in a segment
/// (8-byte aligned so concurrent reservations never share a word).
pub fn footprint(payload_len: usize) -> usize {
    (RECORD_OVERHEAD + payload_len + 7) & !7
}

/// Encodes one record, zero-padded to its aligned [`footprint`]. Public
/// so external tooling and property tests can exercise the wire format
/// without going through a segment.
pub fn encode_record(key: &Key, payload: &[u8]) -> Vec<u8> {
    let n = payload.len();
    let mut buf = vec![0u8; footprint(n)];
    buf[0..4].copy_from_slice(&(n as u32).to_le_bytes());
    buf[4..4 + KEY_LEN].copy_from_slice(&key.0);
    buf[4 + KEY_LEN..4 + KEY_LEN + n].copy_from_slice(payload);
    let crc = crc32_ieee(&buf[..4 + KEY_LEN + n]);
    buf[4 + KEY_LEN + n..RECORD_OVERHEAD + n].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes a record from `buf` (which must start at a record boundary and
/// hold at least `RECORD_OVERHEAD + len` bytes). Returns the key and
/// payload when the length matches and the CRC verifies.
pub fn decode_record(buf: &[u8]) -> Option<(Key, &[u8])> {
    if buf.len() < RECORD_OVERHEAD {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > super::MAX_VALUE_BYTES || buf.len() < RECORD_OVERHEAD + len {
        return None;
    }
    let crc = u32::from_le_bytes(buf[4 + KEY_LEN + len..RECORD_OVERHEAD + len].try_into().unwrap());
    if crc != crc32_ieee(&buf[..4 + KEY_LEN + len]) {
        return None;
    }
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(&buf[4..4 + KEY_LEN]);
    Some((Key(key), &buf[4 + KEY_LEN..4 + KEY_LEN + len]))
}

/// One append-only log segment over an [`NvmRegion`].
#[derive(Debug)]
pub struct VlogSegment {
    id: u32,
    region: Arc<NvmRegion>,
    /// Reservation cursor in bytes. May overshoot the capacity: the first
    /// reservation whose end crosses the capacity seals the segment and
    /// writes nothing.
    tail: AtomicU64,
    sealed: AtomicBool,
    /// Bytes (aligned footprints) of records no longer referenced by the
    /// index — tombstoned by overwrite, delete, or GC relocation.
    garbage: AtomicU64,
}

impl VlogSegment {
    pub(crate) fn new(id: u32, region: Arc<NvmRegion>) -> VlogSegment {
        VlogSegment {
            id,
            region,
            tail: AtomicU64::new(0),
            sealed: AtomicBool::new(false),
            garbage: AtomicU64::new(0),
        }
    }

    /// The segment's id (the pointer's `segment` field).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Total region bytes.
    pub fn capacity(&self) -> u64 {
        self.region.len() as u64
    }

    /// Bytes written so far (reservation cursor clamped to capacity).
    pub fn used(&self) -> u64 {
        self.tail.load(Ordering::Acquire).min(self.capacity())
    }

    /// Bytes of tombstoned records.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage.load(Ordering::Relaxed)
    }

    /// Bytes of still-referenced records (`used - garbage`).
    pub fn live_bytes(&self) -> u64 {
        self.used().saturating_sub(self.garbage_bytes())
    }

    /// Whether the segment accepts no further appends.
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    pub(crate) fn seal(&self) {
        self.sealed.store(true, Ordering::Release);
    }

    pub(crate) fn region(&self) -> &Arc<NvmRegion> {
        &self.region
    }

    /// Installs recovered state: the scanned tail and recomputed garbage.
    pub(crate) fn set_recovered(&self, tail: u64, garbage: u64) {
        self.tail.store(tail, Ordering::Release);
        self.garbage.store(garbage, Ordering::Release);
        self.seal();
    }

    pub(crate) fn mark_garbage(&self, bytes: u64) {
        self.garbage.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Appends one record: reserve with a single `fetch_add`, write, then
    /// persist (flush + fence) so the payload is durable *before* the
    /// caller publishes an index pointer to it — the §15 power-loss model's
    /// ordering requirement. Returns the record's byte offset, or `None`
    /// when the record does not fit (the segment is sealed as a side
    /// effect; the caller rotates to a fresh segment).
    pub(crate) fn try_append(&self, key: &Key, payload: &[u8]) -> Option<u32> {
        if self.is_sealed() {
            return None;
        }
        let need = footprint(payload.len()) as u64;
        let off = self.tail.fetch_add(need, Ordering::AcqRel);
        if off + need > self.capacity() {
            self.seal();
            return None;
        }
        let rec = encode_record(key, payload);
        self.region.write_bytes(off as usize, &rec);
        self.region.persist(off as usize, rec.len());
        fault::point("vlog.appended");
        Some(off as u32)
    }

    /// Reads and verifies the record at `offset`. `Err(())` means the
    /// bytes there do not checksum to a record carrying this key and
    /// length — corruption (or a dangling pointer), never a forged value.
    pub(crate) fn read(&self, offset: u32, len: u32, key: &Key) -> Result<Vec<u8>, ()> {
        let off = offset as usize;
        let len = len as usize;
        if len > super::MAX_VALUE_BYTES || off + footprint(len) > self.region.len() {
            return Err(());
        }
        let mut rec = vec![0u8; RECORD_OVERHEAD + len];
        self.region.read_into(off, &mut rec);
        match decode_record(&rec) {
            Some((k, payload)) if k == *key && payload.len() == len => Ok(rec
                [4 + KEY_LEN..4 + KEY_LEN + len]
                .to_vec()),
            _ => Err(()),
        }
    }

    /// Walks records from offset 0 and returns the offset of the first
    /// hole: a zero/absurd length word, a record overrunning the region,
    /// or a CRC failure (a torn final append). Used on recovery; the true
    /// tail is the max of this and the highest end of any live pointer.
    pub(crate) fn scan_tail(&self) -> u64 {
        let cap = self.region.len();
        let mut off = 0usize;
        loop {
            if off + RECORD_OVERHEAD > cap {
                break;
            }
            let mut lenb = [0u8; 4];
            self.region.peek(off, &mut lenb);
            let len = u32::from_le_bytes(lenb) as usize;
            if len == 0 || len > super::MAX_VALUE_BYTES || off + footprint(len) > cap {
                break;
            }
            let mut rec = vec![0u8; RECORD_OVERHEAD + len];
            self.region.peek(off, &mut rec);
            if decode_record(&rec).is_none() {
                break;
            }
            off += footprint(len);
        }
        off as u64
    }

    /// Iterates decodable records (offset, key, payload) from offset 0 up
    /// to the current tail, skipping nothing: the log is dense until the
    /// first hole by construction.
    pub(crate) fn for_each_record(&self, mut f: impl FnMut(u32, &Key, &[u8])) {
        let end = self.used() as usize;
        let mut off = 0usize;
        while off + RECORD_OVERHEAD <= end {
            let mut lenb = [0u8; 4];
            self.region.peek(off, &mut lenb);
            let len = u32::from_le_bytes(lenb) as usize;
            if len == 0 || len > super::MAX_VALUE_BYTES || off + footprint(len) > end {
                break;
            }
            let mut rec = vec![0u8; RECORD_OVERHEAD + len];
            self.region.peek(off, &mut rec);
            match decode_record(&rec) {
                Some((k, payload)) => f(off as u32, &k, payload),
                None => break,
            }
            off += footprint(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_nvm::NvmOptions;

    fn seg(cap: usize) -> VlogSegment {
        let region = NvmRegion::alloc(cap, &NvmOptions::fast(), "vlog").unwrap();
        VlogSegment::new(7, Arc::new(region))
    }

    #[test]
    fn record_roundtrip_and_footprint_alignment() {
        for n in [0usize, 1, 7, 8, 100, 4096] {
            let key = Key::from_u64(n as u64 + 1);
            let payload: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            let rec = encode_record(&key, &payload);
            assert_eq!(rec.len(), footprint(n));
            assert_eq!(rec.len() % 8, 0);
            let (k, p) = decode_record(&rec).expect("decodes");
            assert_eq!(k, key);
            assert_eq!(p, &payload[..]);
        }
    }

    #[test]
    fn single_byte_damage_is_detected() {
        let key = Key::from_u64(42);
        let payload = vec![0xA5u8; 200];
        let rec = encode_record(&key, &payload);
        for pos in 0..RECORD_OVERHEAD + payload.len() {
            let mut bad = rec.clone();
            bad[pos] ^= 0x01;
            // Damage may shrink the length field; the decode must never
            // produce a (key, payload) pair different from the original
            // without failing the CRC.
            if let Some((k, p)) = decode_record(&bad) {
                assert!(k == key && p == &payload[..], "forged record at byte {pos}");
            }
        }
    }

    #[test]
    fn append_read_and_seal_on_overflow() {
        let s = seg(256);
        let key = Key::from_u64(1);
        let payload = vec![9u8; 40]; // footprint 64
        let mut offs = Vec::new();
        for _ in 0..4 {
            offs.push(s.try_append(&key, &payload).expect("fits"));
        }
        assert!(s.try_append(&key, &payload).is_none(), "fifth append overflows");
        assert!(s.is_sealed());
        for off in offs {
            assert_eq!(s.read(off, 40, &key).unwrap(), payload);
        }
        // Wrong key / wrong length never forge a value.
        assert!(s.read(0, 40, &Key::from_u64(2)).is_err());
        assert!(s.read(0, 39, &key).is_err());
    }

    #[test]
    fn scan_tail_stops_at_first_hole() {
        let s = seg(1024);
        let key = Key::from_u64(3);
        s.try_append(&key, &[1u8; 10]).unwrap();
        s.try_append(&key, &[2u8; 20]).unwrap();
        assert_eq!(s.scan_tail(), (footprint(10) + footprint(20)) as u64);
        // Corrupt the second record's CRC: the scan now stops after the
        // first record.
        let mut mask = vec![0u8; 1];
        mask[0] = 0xFF;
        s.region().corrupt(footprint(10) + RECORD_OVERHEAD + 20 - 4, &mask);
        assert_eq!(s.scan_tail(), footprint(10) as u64);
    }
}
