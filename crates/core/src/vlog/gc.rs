//! Value-log compaction: reclaim tombstoned bytes without blocking
//! readers (DESIGN.md §17).
//!
//! The compactor picks every segment carrying tombstoned bytes, seals it,
//! relocates each still-live record (append to the active segment, then a
//! *guarded* index update that only lands while the slot still carries
//! the old pointer), and finally unmaps the victim. Safety for concurrent
//! readers is two-layered:
//!
//! * a reader that already resolved a pointer holds an `Arc` to the
//!   segment, so the bytes stay mapped until its read completes even
//!   after the segment leaves the map (and, on the pool backend, after
//!   the file is unlinked — POSIX keeps unlinked mappings readable);
//! * a reader that resolves the pointer *after* retirement finds the
//!   segment gone (`Vlog::read` → `Ok(None)`) and re-probes the index,
//!   which by then names the relocated copy. Readers therefore never
//!   block on the compactor and never observe a missing value.
//!
//! The guarded update makes relocation race-free against writers: if a
//! concurrent overwrite or delete wins the slot lock first, the guard
//! mismatches, the relocation aborts, and the freshly appended copy is
//! immediately tombstoned (it was never referenced).

use crate::epoch;
use crate::error::HdnhError;
use crate::table::Hdnh;
use hdnh_obs as obs;

use super::{segment, VlogPtr};

/// Outcome of one [`Hdnh::compact`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments selected as victims (they carried tombstoned bytes).
    pub victims: usize,
    /// Victims fully evacuated and unmapped (pool files unlinked).
    pub segments_retired: usize,
    /// Live records rewritten into fresh segments.
    pub records_relocated: usize,
    /// Net bytes returned: victim footprints minus relocated live bytes.
    pub bytes_reclaimed: u64,
}

impl Hdnh {
    /// Compacts the value log: evacuates every segment carrying
    /// tombstoned bytes and retires it. Serialized against other
    /// compactions only — readers, writers, and even a concurrent resize
    /// keep running (relocation goes through the ordinary per-slot lock
    /// protocol). Returns what was reclaimed; an I/O failure mid-pass
    /// surfaces after the already-completed victims are accounted.
    pub fn compact(&self) -> Result<CompactReport, HdnhError> {
        let _g = self.vlog.gc_lock.lock();
        let span = obs::phase_enter(obs::Phase::VlogGc);
        obs::trace::milestone(obs::trace::Milestone::VlogGcStart);
        let mut report = CompactReport::default();
        let out = self.compact_victims(&mut report);
        obs::add(obs::Counter::VlogGcBytesReclaimed, report.bytes_reclaimed);
        obs::add(
            obs::Counter::VlogGcSegmentsRetired,
            report.segments_retired as u64,
        );
        self.vlog.set_last_gc(report);
        obs::phase_record(obs::Phase::VlogGc, span, report.records_relocated as u64);
        obs::trace::milestone(obs::trace::Milestone::VlogGcDone);
        out.map(|()| report)
    }

    fn compact_victims(&self, report: &mut CompactReport) -> Result<(), HdnhError> {
        // Victims: every segment with tombstoned bytes, sealed up front so
        // no new record lands in a segment about to disappear (the next
        // append rotates to a fresh active segment). Relocation targets
        // are whatever segment is active — never a sealed victim.
        let victims: Vec<_> = self
            .vlog
            .segments_snapshot()
            .into_iter()
            .filter(|s| s.garbage_bytes() > 0)
            .collect();
        for seg in &victims {
            seg.seal();
        }
        let mut retired_paths = Vec::new();
        for seg in &victims {
            report.victims += 1;
            let mut relocated = 0u64;
            let mut failure: Option<HdnhError> = None;
            seg.for_each_record(|offset, key, payload| {
                if failure.is_some() {
                    return;
                }
                let old_ptr = VlogPtr {
                    segment: seg.id(),
                    offset,
                    len: payload.len() as u32,
                };
                // Liveness: the index must reference exactly this record.
                // Tombstoned records (and older versions of a rewritten
                // key) fail the pointer comparison and are skipped.
                let live = matches!(
                    self.get(key),
                    Ok(Some(v)) if VlogPtr::from_value(&v) == Some(old_ptr)
                );
                if !live {
                    return;
                }
                let new_ptr = match self.vlog.append(key, payload) {
                    Ok(p) => p,
                    Err(e) => {
                        failure = Some(e);
                        return;
                    }
                };
                // Guarded swap under the slot lock: lands only while the
                // slot is still spill-flagged with the old pointer.
                match self.update_inner(key, &new_ptr.to_value(), true, Some(&old_ptr.to_value()))
                {
                    Ok(_) => {
                        // The old record is now unreferenced; account it so
                        // a victim kept alive by a mid-pass failure still
                        // carries honest garbage numbers.
                        self.vlog.mark_garbage(&old_ptr);
                        relocated += segment::footprint(payload.len()) as u64;
                        report.records_relocated += 1;
                        obs::count(obs::Counter::VlogGcRecordsRelocated);
                    }
                    // A writer superseded the record mid-relocation: the
                    // new copy was never published — orphan it.
                    Err(_) => self.vlog.mark_garbage(&new_ptr),
                }
            });
            if let Some(e) = failure {
                return Err(e);
            }
            // Every record in the victim is now tombstoned or relocated:
            // unmap it. Readers holding the Arc finish unharmed; later
            // readers re-probe the index.
            self.vlog.remove_segment(seg.id());
            report.segments_retired += 1;
            report.bytes_reclaimed += seg.used().saturating_sub(relocated);
            if let Some(p) = seg.region().file_path() {
                retired_paths.push(p.to_path_buf());
            }
        }
        // Quiesce in-flight operations that pinned the index before the
        // relocated pointers were published, then drop the backing files.
        // (Unlinking earlier would also be safe — mappings survive the
        // unlink — but this keeps "no reader can still reach a retired
        // path" a one-line argument.)
        if !retired_paths.is_empty() {
            epoch::drain();
            for p in retired_paths {
                let _ = std::fs::remove_file(&p);
                hdnh_nvm::shadow::remove_sidecar(&p);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HdnhParams;
    use hdnh_common::Key;

    fn table() -> Hdnh {
        Hdnh::new(
            HdnhParams::builder()
                .segment_bytes(4096)
                .initial_bottom_segments(2)
                .vlog_segment_bytes(1024)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn compact_on_empty_log_is_a_noop() {
        let t = table();
        assert_eq!(t.compact().unwrap(), CompactReport::default());
    }

    #[test]
    fn compact_reclaims_overwritten_values() {
        let t = table();
        let key = Key::from_u64(1);
        t.insert_bytes(&key, &[1u8; 200]).unwrap();
        for round in 2..10u8 {
            t.update_bytes(&key, &[round; 200]).unwrap();
        }
        let before = t.vlog_stats();
        assert!(before.garbage_bytes > 0);
        let report = t.compact().unwrap();
        assert!(report.segments_retired > 0, "{report:?}");
        assert!(
            report.bytes_reclaimed * 2 >= before.garbage_bytes,
            "reclaimed {} of {} garbage bytes",
            report.bytes_reclaimed,
            before.garbage_bytes
        );
        assert!(t.vlog_stats().garbage_bytes < before.garbage_bytes);
        assert_eq!(t.get_bytes(&key).unwrap().unwrap(), vec![9u8; 200]);
        t.verify_integrity().unwrap();
    }

    #[test]
    fn compact_relocates_live_records_readably() {
        let t = table();
        for i in 0..20u64 {
            t.insert_bytes(&Key::from_u64(i), &[i as u8; 100]).unwrap();
        }
        for i in 0..10u64 {
            assert!(t.remove(&Key::from_u64(i)).unwrap());
        }
        let report = t.compact().unwrap();
        assert!(report.records_relocated > 0, "{report:?}");
        assert!(report.segments_retired > 0, "{report:?}");
        for i in 10..20u64 {
            assert_eq!(
                t.get_bytes(&Key::from_u64(i)).unwrap().unwrap(),
                vec![i as u8; 100],
                "key {i} after compaction"
            );
        }
        t.verify_integrity().unwrap();
        // The report is surfaced through stats for INFO / /varz.
        assert_eq!(t.vlog_stats().last_gc, Some(report));
    }
}
