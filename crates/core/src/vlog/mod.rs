//! Value log: variable-length values behind the paper-faithful index.
//!
//! HDNH's 31-byte NVM record (16-byte key, 15-byte value) is the *index
//! entry*; this module adds an out-of-band, log-structured store for
//! values that do not fit. Values up to the inline budget
//! ([`INLINE_MAX`], tunable down via `HdnhParams::vlog_inline_max`) are
//! stored directly in the slot — the paper's fast path, unchanged. Longer
//! values are appended to a segmented, CRC32-checksummed log
//! ([`segment::VlogSegment`]) and the slot stores a packed
//! `(segment, offset, length)` pointer ([`VlogPtr`]), discriminated two
//! ways: by the spare per-slot header bit (`nvtable`'s spill flag — the
//! authority for every internal path) and by the [`SPILL_SENTINEL`] first
//! value byte (a cheap bytes-API-level discriminator; inline encodings
//! put a 0..=14 length there, so the sentinel is unreachable for them).
//!
//! Durability ordering: a record is flushed and fenced *before* its
//! pointer is published to the index, so under `--sync-policy sync` a
//! pointer is never durable ahead of its payload (DESIGN.md §15/§17). A
//! crash between append and publish leaves an orphaned record that the
//! recovery scan treats as garbage.
//!
//! Garbage collection ([`gc`], `Hdnh::compact`) relocates live records
//! out of the most-garbage segments and retires the emptied segments
//! without ever blocking readers: readers hold an `Arc` to the segment
//! they are reading, and a reader that loses the race (its segment left
//! the map) simply re-probes the index, which by then names the
//! relocated copy.

pub mod gc;
pub mod segment;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdnh_common::{Key, Value, VALUE_LEN};
use hdnh_nvm::{NvmOptions, NvmRegion};
use parking_lot::{Mutex, RwLock};

use crate::error::HdnhError;

pub use gc::CompactReport;
pub use segment::{decode_record, encode_record, footprint, VlogSegment, RECORD_OVERHEAD};

/// Largest payload the 15-byte slot stores inline: one length byte plus
/// up to 14 payload bytes.
pub const INLINE_MAX: usize = VALUE_LEN - 1;

/// First value byte of a spill pointer. Inline encodings store the
/// payload length (0..=14) there, so 0xFF never collides with them.
pub const SPILL_SENTINEL: u8 = 0xFF;

/// Largest accepted value. The RESP frame budget is 1 MiB; the headroom
/// keeps a maximal `SET key value` request (command, key, framing)
/// inside one frame, so the boundary is reachable over the wire.
pub const MAX_VALUE_BYTES: usize = (1 << 20) - 4096;

/// Encodes a payload of at most [`INLINE_MAX`] bytes into a slot value.
pub fn encode_inline(payload: &[u8]) -> Value {
    debug_assert!(payload.len() <= INLINE_MAX);
    let mut buf = [0u8; VALUE_LEN];
    buf[0] = payload.len() as u8;
    buf[1..1 + payload.len()].copy_from_slice(payload);
    Value(buf)
}

/// Decodes an inline slot value back into its payload; `None` when the
/// first byte is not a valid inline length (e.g. the spill sentinel).
pub fn decode_inline(v: &Value) -> Option<&[u8]> {
    let len = v.0[0] as usize;
    if len > INLINE_MAX {
        return None;
    }
    Some(&v.0[1..1 + len])
}

/// A packed pointer into the value log, stored in the 15-byte slot value:
/// sentinel byte, then segment id, byte offset and payload length as
/// little-endian `u32`s (2 spare bytes, zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VlogPtr {
    /// Id of the segment holding the record.
    pub segment: u32,
    /// Byte offset of the record inside the segment.
    pub offset: u32,
    /// Payload length in bytes (always > [`INLINE_MAX`] ≥ 0, never 0).
    pub len: u32,
}

impl VlogPtr {
    /// Packs the pointer into a slot value.
    pub fn to_value(self) -> Value {
        let mut buf = [0u8; VALUE_LEN];
        buf[0] = SPILL_SENTINEL;
        buf[1..5].copy_from_slice(&self.segment.to_le_bytes());
        buf[5..9].copy_from_slice(&self.offset.to_le_bytes());
        buf[9..13].copy_from_slice(&self.len.to_le_bytes());
        Value(buf)
    }

    /// Unpacks a slot value carrying the spill sentinel; `None` for
    /// anything else (inline encodings, fixed-API values).
    pub fn from_value(v: &Value) -> Option<VlogPtr> {
        if v.0[0] != SPILL_SENTINEL {
            return None;
        }
        let ptr = VlogPtr {
            segment: u32::from_le_bytes(v.0[1..5].try_into().unwrap()),
            offset: u32::from_le_bytes(v.0[5..9].try_into().unwrap()),
            len: u32::from_le_bytes(v.0[9..13].try_into().unwrap()),
        };
        // A spill pointer always names a payload too large for the slot;
        // len 0 (or a non-zero pad) marks a non-pointer 0xFF-first value
        // (reachable only through the fixed u64 API).
        if ptr.len == 0 || v.0[13] != 0 || v.0[14] != 0 {
            return None;
        }
        Some(ptr)
    }
}

/// Point-in-time statistics over the whole value log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VlogStats {
    /// Mapped segments (including the active one).
    pub segments: usize,
    /// Sum of segment capacities in bytes.
    pub capacity_bytes: u64,
    /// Bytes appended (aligned record footprints).
    pub used_bytes: u64,
    /// Bytes of tombstoned records awaiting compaction.
    pub garbage_bytes: u64,
    /// Bytes of still-referenced records (`used - garbage`).
    pub live_bytes: u64,
    /// Report of the most recent compaction, if any ran.
    pub last_gc: Option<CompactReport>,
}

/// The segmented value log. One instance per table; shared across resizes
/// (the log is keyed by segment id, not by index geometry).
#[derive(Debug)]
pub struct Vlog {
    opts: NvmOptions,
    segment_bytes: usize,
    /// Every mapped segment by id. Readers clone the `Arc` under the read
    /// lock; GC removes retired segments under the write lock.
    segments: RwLock<BTreeMap<u32, Arc<VlogSegment>>>,
    /// The segment taking new appends (`None` until the first spill).
    /// The mutex serializes rotation only — appends themselves are a
    /// lock-free `fetch_add` inside the segment.
    active: Mutex<Option<Arc<VlogSegment>>>,
    /// Id source for heap-backed segments (pool-backed segments take
    /// their id from the `vlog-<id>.dat` filename).
    next_id: AtomicU64,
    /// Serializes compactions. Deliberately *not* the table's maintenance
    /// mutex: a long compaction must not block a resize (or vice versa) —
    /// their shared state is only the per-slot lock protocol.
    pub(crate) gc_lock: Mutex<()>,
    last_gc: Mutex<Option<CompactReport>>,
}

impl Vlog {
    /// An empty log allocating segments of `segment_bytes` on the backend
    /// in `opts`.
    pub fn new(opts: NvmOptions, segment_bytes: usize) -> Vlog {
        Vlog {
            opts,
            segment_bytes,
            segments: RwLock::new(BTreeMap::new()),
            active: Mutex::new(None),
            next_id: AtomicU64::new(0),
            gc_lock: Mutex::new(()),
            last_gc: Mutex::new(None),
        }
    }

    /// Rebuilds a log from recovered segment regions (reopened
    /// `vlog-<id>.dat` files). Each segment's tail is the scanned dense
    /// prefix and all recovered segments are sealed; garbage accounting
    /// is provisional until the index walk calls [`finish_recovery`]
    /// (`Self::finish_recovery`).
    pub fn from_recovered(
        opts: NvmOptions,
        segment_bytes: usize,
        regions: Vec<(u32, Arc<NvmRegion>)>,
    ) -> Vlog {
        let vlog = Vlog::new(opts, segment_bytes);
        let mut max_id = 0u64;
        {
            let mut map = vlog.segments.write();
            for (id, region) in regions {
                let seg = Arc::new(VlogSegment::new(id, region));
                let tail = seg.scan_tail();
                seg.set_recovered(tail, 0);
                max_id = max_id.max(id as u64 + 1);
                map.insert(id, seg);
            }
        }
        vlog.next_id.store(max_id, Ordering::Relaxed);
        vlog
    }

    /// Completes recovery: for each segment, `live` gives the summed
    /// footprint of index-referenced records and the highest byte end of
    /// any such record. The tail is raised to cover live records past the
    /// scanned dense prefix (a torn *earlier* record must not hide later
    /// live ones) and everything not live becomes garbage.
    pub fn finish_recovery(&self, live: &BTreeMap<u32, (u64, u64)>) {
        let map = self.segments.read();
        for (id, seg) in map.iter() {
            let (live_bytes, max_end) = live.get(id).copied().unwrap_or((0, 0));
            let tail = seg.used().max(max_end);
            seg.set_recovered(tail, tail.saturating_sub(live_bytes));
        }
    }

    /// Every mapped segment region with its id (for pool close/crash
    /// plumbing and snapshots).
    pub fn regions(&self) -> Vec<(u32, Arc<NvmRegion>)> {
        self.segments
            .read()
            .iter()
            .map(|(id, seg)| (*id, Arc::clone(seg.region())))
            .collect()
    }

    /// The segment with `id`, if still mapped.
    pub(crate) fn segment(&self, id: u32) -> Option<Arc<VlogSegment>> {
        self.segments.read().get(&id).cloned()
    }

    /// All currently mapped segments, ordered by id.
    pub(crate) fn segments_snapshot(&self) -> Vec<Arc<VlogSegment>> {
        self.segments.read().values().cloned().collect()
    }

    /// Removes a retired segment from the map. Readers that already hold
    /// the `Arc` finish their read on the unlinked mapping.
    pub(crate) fn remove_segment(&self, id: u32) -> Option<Arc<VlogSegment>> {
        self.segments.write().remove(&id)
    }

    fn new_segment(&self, min_capacity: usize) -> Result<Arc<VlogSegment>, HdnhError> {
        let cap = self.segment_bytes.max(segment::footprint(min_capacity));
        let region = Arc::new(NvmRegion::alloc(cap, &self.opts, "vlog")?);
        // Pool-backed segments take their id from the vlog-<id>.dat
        // filename (the pool's counter also feeds seg files, so ids can
        // jump); heap segments use the log's own counter.
        let id = region
            .file_path()
            .and_then(hdnh_nvm::pool::vlog_id)
            .unwrap_or_else(|| self.next_id.fetch_add(1, Ordering::Relaxed));
        let seg = Arc::new(VlogSegment::new(id as u32, region));
        self.segments.write().insert(id as u32, Arc::clone(&seg));
        Ok(seg)
    }

    /// Appends one record and returns its pointer. One `fetch_add` per
    /// append on the hot path; the rotation mutex is taken only to
    /// install a fresh segment when the active one seals.
    pub fn append(&self, key: &Key, payload: &[u8]) -> Result<VlogPtr, HdnhError> {
        if payload.len() > MAX_VALUE_BYTES {
            return Err(HdnhError::Capacity(format!(
                "value of {} bytes exceeds the {MAX_VALUE_BYTES}-byte maximum",
                payload.len()
            )));
        }
        loop {
            let seg = {
                let guard = self.active.lock();
                match guard.as_ref() {
                    Some(seg) if !seg.is_sealed() => Arc::clone(seg),
                    _ => {
                        drop(guard);
                        self.rotate(payload.len())?
                    }
                }
            };
            if let Some(offset) = seg.try_append(key, payload) {
                hdnh_obs::count(hdnh_obs::Counter::VlogAppends);
                return Ok(VlogPtr {
                    segment: seg.id(),
                    offset,
                    len: payload.len() as u32,
                });
            }
            // The segment sealed under us (overflow); rotate and retry.
            self.rotate(payload.len())?;
        }
    }

    /// Installs a fresh active segment unless another thread already did.
    fn rotate(&self, min_capacity: usize) -> Result<Arc<VlogSegment>, HdnhError> {
        let mut guard = self.active.lock();
        if let Some(seg) = guard.as_ref() {
            if !seg.is_sealed() && seg.capacity() >= segment::footprint(min_capacity) as u64 {
                return Ok(Arc::clone(seg));
            }
        }
        let seg = self.new_segment(min_capacity)?;
        *guard = Some(Arc::clone(&seg));
        Ok(seg)
    }

    /// Materializes the payload behind `ptr`. `Ok(None)` means the
    /// segment is no longer mapped — the GC retired it after relocating
    /// its live records, so the caller must re-probe the index for the
    /// new pointer. A checksum or key mismatch inside a mapped segment is
    /// real corruption and is surfaced, never forged.
    pub fn read(&self, ptr: &VlogPtr, key: &Key) -> Result<Option<Vec<u8>>, HdnhError> {
        let Some(seg) = self.segment(ptr.segment) else {
            hdnh_obs::count(hdnh_obs::Counter::VlogReadRetries);
            return Ok(None);
        };
        match seg.read(ptr.offset, ptr.len, key) {
            Ok(payload) => {
                hdnh_obs::count(hdnh_obs::Counter::VlogReads);
                Ok(Some(payload))
            }
            Err(()) => Err(HdnhError::VlogCorruption {
                segment: ptr.segment,
                offset: ptr.offset,
            }),
        }
    }

    /// Verifies the record behind `ptr` without materializing it.
    pub fn verify(&self, ptr: &VlogPtr, key: &Key) -> bool {
        match self.segment(ptr.segment) {
            Some(seg) => seg.read(ptr.offset, ptr.len, key).is_ok(),
            None => false,
        }
    }

    /// Tombstones the record behind `ptr` (its bytes stay in place; the
    /// segment's garbage counter makes it a compaction victim).
    pub fn mark_garbage(&self, ptr: &VlogPtr) {
        if let Some(seg) = self.segment(ptr.segment) {
            seg.mark_garbage(segment::footprint(ptr.len as usize) as u64);
        }
    }

    pub(crate) fn set_last_gc(&self, report: CompactReport) {
        *self.last_gc.lock() = Some(report);
    }

    /// Aggregated statistics across all mapped segments.
    pub fn stats(&self) -> VlogStats {
        let map = self.segments.read();
        let mut s = VlogStats {
            segments: map.len(),
            ..VlogStats::default()
        };
        for seg in map.values() {
            s.capacity_bytes += seg.capacity();
            s.used_bytes += seg.used();
            s.garbage_bytes += seg.garbage_bytes();
        }
        s.live_bytes = s.used_bytes.saturating_sub(s.garbage_bytes);
        s.last_gc = *self.last_gc.lock();
        s
    }

    /// Flushes every segment's backing file to disk (pool backend).
    pub fn sync_to_disk(&self) -> Result<(), HdnhError> {
        for seg in self.segments_snapshot() {
            seg.region().sync_to_disk()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_roundtrip_and_sentinel_discrimination() {
        for n in 0..=INLINE_MAX {
            let payload: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let v = encode_inline(&payload);
            assert_eq!(decode_inline(&v).unwrap(), &payload[..]);
            assert!(VlogPtr::from_value(&v).is_none());
        }
    }

    #[test]
    fn ptr_roundtrip_and_inline_rejection() {
        let ptr = VlogPtr {
            segment: 3,
            offset: 0x1234_5678,
            len: 65_536,
        };
        let v = ptr.to_value();
        assert_eq!(v.0[0], SPILL_SENTINEL);
        assert_eq!(VlogPtr::from_value(&v).unwrap(), ptr);
        assert!(decode_inline(&v).is_none());
        // The fixed-API value 255 also starts with 0xFF but has len 0 —
        // it must not parse as a pointer.
        assert!(VlogPtr::from_value(&Value::from_u64(SPILL_SENTINEL as u64)).is_none());
    }

    #[test]
    fn append_read_rotate_and_stats() {
        let vlog = Vlog::new(NvmOptions::fast(), 256);
        let key = Key::from_u64(1);
        let payload = vec![7u8; 100]; // footprint 128: two per segment
        let mut ptrs = Vec::new();
        for _ in 0..5 {
            ptrs.push(vlog.append(&key, &payload).unwrap());
        }
        let s = vlog.stats();
        assert_eq!(s.segments, 3, "5 records at 2/segment need 3 segments");
        for ptr in &ptrs {
            assert_eq!(vlog.read(ptr, &key).unwrap().unwrap(), payload);
        }
        // Distinct ids, and garbage accounting moves bytes live → garbage.
        assert_eq!(s.garbage_bytes, 0);
        vlog.mark_garbage(&ptrs[0]);
        let s2 = vlog.stats();
        assert_eq!(s2.garbage_bytes, 128);
        assert_eq!(s2.live_bytes + s2.garbage_bytes, s2.used_bytes);
    }

    #[test]
    fn oversized_record_gets_its_own_segment() {
        let vlog = Vlog::new(NvmOptions::fast(), 256);
        let key = Key::from_u64(9);
        let big = vec![3u8; 4000];
        let ptr = vlog.append(&key, &big).unwrap();
        assert_eq!(vlog.read(&ptr, &key).unwrap().unwrap(), big);
    }

    #[test]
    fn over_max_value_is_a_capacity_error() {
        let vlog = Vlog::new(NvmOptions::fast(), 256);
        let e = vlog
            .append(&Key::from_u64(1), &vec![0u8; MAX_VALUE_BYTES + 1])
            .unwrap_err();
        assert!(matches!(e, HdnhError::Capacity(_)), "{e}");
    }

    #[test]
    fn retired_segment_read_returns_none() {
        let vlog = Vlog::new(NvmOptions::fast(), 256);
        let key = Key::from_u64(2);
        let ptr = vlog.append(&key, &[1u8; 50]).unwrap();
        vlog.remove_segment(ptr.segment).unwrap();
        assert_eq!(vlog.read(&ptr, &key).unwrap(), None);
    }

    #[test]
    fn recovery_scan_accounts_garbage() {
        let vlog = Vlog::new(NvmOptions::fast(), 1024);
        let key = Key::from_u64(5);
        let p1 = vlog.append(&key, &[1u8; 40]).unwrap();
        let _p2 = vlog.append(&key, &[2u8; 40]).unwrap();
        let regions = vlog.regions();
        let re = Vlog::from_recovered(NvmOptions::fast(), 1024, regions);
        // Only record 1 is still referenced by the (hypothetical) index.
        let fp = segment::footprint(40) as u64;
        let mut live = BTreeMap::new();
        live.insert(p1.segment, (fp, fp));
        re.finish_recovery(&live);
        let s = re.stats();
        assert_eq!(s.used_bytes, 2 * fp);
        assert_eq!(s.live_bytes, fp);
        assert_eq!(s.garbage_bytes, fp);
        assert_eq!(re.read(&p1, &key).unwrap().unwrap(), vec![1u8; 40]);
    }
}
