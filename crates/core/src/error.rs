//! Typed error taxonomy for the HDNH stack.
//!
//! The public [`HashIndex`](hdnh_common::HashIndex) trait keeps its small
//! [`IndexError`] vocabulary (duplicate key, not found, full, retry); this
//! module adds the *system-level* failures that the media-error layer,
//! recovery, and the CLI need to report without panicking: detected
//! corruption (with what was done about it), simulated-I/O problems, an
//! unrecoverable pool, and capacity exhaustion.

use std::fmt;

use hdnh_common::IndexError;

/// What the resilience layer did with a slot whose record failed its
/// header checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionOutcome {
    /// The record was rewritten from the DRAM hot-table copy and its
    /// checksum recommitted; no data was lost.
    Repaired,
    /// No clean copy existed; the slot's valid bit was cleared so the
    /// damaged bytes can never be served. The record is lost.
    Quarantined,
}

impl fmt::Display for CorruptionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionOutcome::Repaired => write!(f, "repaired"),
            CorruptionOutcome::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// System-level errors surfaced by the HDNH stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdnhError {
    /// A record's bytes failed their header checksum. Carries the slot's
    /// location (`level` 0 = top, 1 = bottom) and how the slot was
    /// handled; the damaged bytes were never returned to any caller.
    Corruption {
        /// Level index (0 = top, 1 = bottom).
        level: usize,
        /// Global bucket index within the level.
        bucket: usize,
        /// Slot index within the bucket.
        slot: usize,
        /// What was done with the damaged slot.
        outcome: CorruptionOutcome,
    },
    /// An environment / simulated-I/O failure (file access, parse of an
    /// external artifact, …).
    Io(String),
    /// A persistent pool could not be opened or recovered (bad magic,
    /// geometry mismatch, torn metadata).
    Recovery(String),
    /// The table cannot admit more records (resize exhausted or
    /// disabled).
    Capacity(String),
}

impl fmt::Display for HdnhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdnhError::Corruption {
                level,
                bucket,
                slot,
                outcome,
            } => write!(
                f,
                "corrupted record at level {level} bucket {bucket} slot {slot} ({outcome})"
            ),
            HdnhError::Io(msg) => write!(f, "i/o error: {msg}"),
            HdnhError::Recovery(msg) => write!(f, "recovery failed: {msg}"),
            HdnhError::Capacity(msg) => write!(f, "capacity exhausted: {msg}"),
        }
    }
}

impl std::error::Error for HdnhError {}

impl From<IndexError> for HdnhError {
    /// Maps the per-operation vocabulary onto the system taxonomy: only
    /// `TableFull` is a system condition (capacity); the rest describe the
    /// caller's request and keep their message under `Io`.
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::TableFull => HdnhError::Capacity(e.to_string()),
            other => HdnhError::Io(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HdnhError::Corruption {
            level: 1,
            bucket: 7,
            slot: 3,
            outcome: CorruptionOutcome::Quarantined,
        };
        let s = e.to_string();
        assert!(s.contains("level 1") && s.contains("bucket 7") && s.contains("slot 3"));
        assert!(s.contains("quarantined"));
        assert!(HdnhError::Recovery("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn index_error_mapping() {
        assert!(matches!(
            HdnhError::from(IndexError::TableFull),
            HdnhError::Capacity(_)
        ));
        assert!(matches!(
            HdnhError::from(IndexError::KeyNotFound),
            HdnhError::Io(_)
        ));
    }
}
