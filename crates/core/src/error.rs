//! Typed error taxonomy for the HDNH stack.
//!
//! The public [`HashIndex`](hdnh_common::HashIndex) trait keeps its small
//! [`IndexError`] vocabulary (duplicate key, not found, full, retry); this
//! module adds the *system-level* failures that the media-error layer,
//! recovery, and the CLI need to report without panicking: detected
//! corruption (with what was done about it), simulated-I/O problems, an
//! unrecoverable pool, and capacity exhaustion.

use std::fmt;

use hdnh_common::IndexError;

/// What the resilience layer did with a slot whose record failed its
/// header checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionOutcome {
    /// The record was rewritten from the DRAM hot-table copy and its
    /// checksum recommitted; no data was lost.
    Repaired,
    /// No clean copy existed; the slot's valid bit was cleared so the
    /// damaged bytes can never be served. The record is lost.
    Quarantined,
}

impl fmt::Display for CorruptionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionOutcome::Repaired => write!(f, "repaired"),
            CorruptionOutcome::Quarantined => write!(f, "quarantined"),
        }
    }
}

/// System-level errors surfaced by the HDNH stack.
///
/// Since the API unification this is the error type of every public table
/// operation: `insert` reports [`HdnhError::DuplicateKey`], `update`
/// reports [`HdnhError::KeyNotFound`], `verify_integrity` reports
/// [`HdnhError::Integrity`], and configuration problems surface as
/// [`HdnhError::Config`] from the params builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdnhError {
    /// A record's bytes failed their header checksum. Carries the slot's
    /// location (`level` 0 = top, 1 = bottom) and how the slot was
    /// handled; the damaged bytes were never returned to any caller.
    Corruption {
        /// Level index (0 = top, 1 = bottom).
        level: usize,
        /// Global bucket index within the level.
        bucket: usize,
        /// Slot index within the bucket.
        slot: usize,
        /// What was done with the damaged slot.
        outcome: CorruptionOutcome,
    },
    /// A value-log record failed its CRC or did not carry the key and
    /// length its spill pointer promised — media damage or a dangling
    /// pointer. The damaged bytes were never returned to any caller.
    VlogCorruption {
        /// Value-log segment id from the spill pointer.
        segment: u32,
        /// Byte offset of the record within the segment.
        offset: u32,
    },
    /// An insert found the key already present.
    DuplicateKey,
    /// An update addressed a key that is not in the table.
    KeyNotFound,
    /// An integrity audit found a violated invariant. Carries the first
    /// failing invariant's stable name and its (capped) violation list;
    /// the full per-invariant breakdown is available from
    /// [`verify_integrity_report`](crate::Hdnh::verify_integrity_report).
    Integrity {
        /// Stable identifier of the first failing invariant.
        invariant: &'static str,
        /// Human-readable violations under that invariant (capped).
        violations: Vec<String>,
    },
    /// An invalid configuration was rejected by the params builder.
    Config(String),
    /// An environment / simulated-I/O failure (file access, parse of an
    /// external artifact, …).
    Io(String),
    /// A persistent pool could not be opened or recovered (bad magic,
    /// geometry mismatch, torn metadata).
    Recovery(String),
    /// The table cannot admit more records (resize exhausted or
    /// disabled).
    Capacity(String),
}

impl fmt::Display for HdnhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdnhError::Corruption {
                level,
                bucket,
                slot,
                outcome,
            } => write!(
                f,
                "corrupted record at level {level} bucket {bucket} slot {slot} ({outcome})"
            ),
            HdnhError::VlogCorruption { segment, offset } => write!(
                f,
                "corrupted value-log record at segment {segment} offset {offset}"
            ),
            // Keep the per-operation wordings identical to the narrow
            // `IndexError` vocabulary the CLI grew up on.
            HdnhError::DuplicateKey => write!(f, "key already present"),
            HdnhError::KeyNotFound => write!(f, "key not found"),
            HdnhError::Integrity {
                invariant,
                violations,
            } => write!(
                f,
                "integrity violation [{invariant}]: {}",
                violations.join("; ")
            ),
            HdnhError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            HdnhError::Io(msg) => write!(f, "i/o error: {msg}"),
            HdnhError::Recovery(msg) => write!(f, "recovery failed: {msg}"),
            HdnhError::Capacity(msg) => write!(f, "capacity exhausted: {msg}"),
        }
    }
}

impl std::error::Error for HdnhError {}

impl From<hdnh_nvm::NvmIoError> for HdnhError {
    /// A file-backend failure (mmap/msync/ftruncate/…) with its path and
    /// operation context.
    fn from(e: hdnh_nvm::NvmIoError) -> Self {
        HdnhError::Io(e.to_string())
    }
}

impl From<IndexError> for HdnhError {
    /// Maps the per-operation vocabulary onto the system taxonomy.
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::DuplicateKey => HdnhError::DuplicateKey,
            IndexError::KeyNotFound => HdnhError::KeyNotFound,
            IndexError::TableFull => HdnhError::Capacity(e.to_string()),
            IndexError::RetryResize => HdnhError::Io(e.to_string()),
        }
    }
}

impl From<HdnhError> for IndexError {
    /// Narrows the system taxonomy back to the trait vocabulary, for the
    /// [`HashIndex`](hdnh_common::HashIndex) adapter: the per-operation
    /// conditions map one-to-one; capacity exhaustion is `TableFull`;
    /// anything else (corruption, I/O, recovery) has no slot in the narrow
    /// enum and is reported as `RetryResize` — the trait's only
    /// "system interfered, not your request" variant.
    fn from(e: HdnhError) -> Self {
        match e {
            HdnhError::DuplicateKey => IndexError::DuplicateKey,
            HdnhError::KeyNotFound => IndexError::KeyNotFound,
            HdnhError::Capacity(_) => IndexError::TableFull,
            _ => IndexError::RetryResize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HdnhError::Corruption {
            level: 1,
            bucket: 7,
            slot: 3,
            outcome: CorruptionOutcome::Quarantined,
        };
        let s = e.to_string();
        assert!(s.contains("level 1") && s.contains("bucket 7") && s.contains("slot 3"));
        assert!(s.contains("quarantined"));
        assert!(HdnhError::Recovery("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn index_error_mapping() {
        assert!(matches!(
            HdnhError::from(IndexError::TableFull),
            HdnhError::Capacity(_)
        ));
        assert_eq!(
            HdnhError::from(IndexError::KeyNotFound),
            HdnhError::KeyNotFound
        );
        assert_eq!(
            HdnhError::from(IndexError::DuplicateKey),
            HdnhError::DuplicateKey
        );
    }

    #[test]
    fn round_trip_to_index_error() {
        assert_eq!(IndexError::from(HdnhError::DuplicateKey), IndexError::DuplicateKey);
        assert_eq!(IndexError::from(HdnhError::KeyNotFound), IndexError::KeyNotFound);
        assert_eq!(
            IndexError::from(HdnhError::Capacity("full".into())),
            IndexError::TableFull
        );
        assert_eq!(
            IndexError::from(HdnhError::Io("x".into())),
            IndexError::RetryResize
        );
    }

    #[test]
    fn operation_wordings_match_the_trait_vocabulary() {
        // The CLI prints these; they must not drift from IndexError's.
        assert_eq!(HdnhError::DuplicateKey.to_string(), IndexError::DuplicateKey.to_string());
        assert_eq!(HdnhError::KeyNotFound.to_string(), IndexError::KeyNotFound.to_string());
        let e = HdnhError::Integrity {
            invariant: "no-duplicate-keys",
            violations: vec!["duplicate key at L0/1/2".into()],
        };
        assert!(e.to_string().contains("no-duplicate-keys"));
        assert!(HdnhError::Config("bad ratio".into()).to_string().contains("bad ratio"));
    }
}
