//! Optimistic Compression Filter (paper §3.2, §3.6).
//!
//! The OCF is a DRAM mirror of the non-volatile table: one 16-bit entry per
//! NVM slot packing the four per-slot metadata fields of figure 4:
//!
//! ```text
//!  bit 0      VALID   (the paper's per-slot bitmap bit)
//!  bit 1      BUSY    (the paper's opmap lock bit)
//!  bits 2..8  VERSION (6 bits, wraps mod 64)
//!  bits 8..16 FP      (1-byte key fingerprint)
//! ```
//!
//! Packing all four into one atomic word means lock acquisition, version
//! bump and fingerprint publication are a single CAS/store — the paper's
//! "modified atomically using compare-and-swap" — and a reader validates a
//! whole slot with one load.
//!
//! # Seqlock protocol
//!
//! Writers: CAS `BUSY` 0→1 (acquire), **release fence**, write the NVM slot,
//! then one release store that clears `BUSY`, bumps `VERSION` and sets
//! `VALID`/`FP`. Readers: load the entry (acquire), read the NVM slot,
//! **acquire fence**, re-load the entry; the read is consistent iff both
//! loads are equal and not busy. The release fence after lock acquisition is
//! what makes the protocol sound under the C++ memory model: any thread that
//! observes one of the writer's data stores and then issues the acquire
//! fence is guaranteed to observe the `BUSY` bit.

use std::sync::atomic::{fence, AtomicU16, Ordering};

use hdnh_obs as obs;

/// VALID bit: slot holds a live record.
pub const E_VALID: u16 = 1;
/// BUSY bit: slot is locked by a writer (the paper's opmap).
pub const E_BUSY: u16 = 1 << 1;
const VERSION_SHIFT: u16 = 2;
const VERSION_MASK: u16 = 0x3F << VERSION_SHIFT;
const FP_SHIFT: u16 = 8;

/// Packs an entry from its fields.
#[inline]
pub fn pack(valid: bool, busy: bool, version: u16, fp: u8) -> u16 {
    (valid as u16)
        | ((busy as u16) << 1)
        | ((version & 0x3F) << VERSION_SHIFT)
        | ((fp as u16) << FP_SHIFT)
}

/// Entry field accessors.
#[inline]
pub fn is_valid(e: u16) -> bool {
    e & E_VALID != 0
}
/// True if a writer holds the slot.
#[inline]
pub fn is_busy(e: u16) -> bool {
    e & E_BUSY != 0
}
/// 6-bit version counter.
#[inline]
pub fn version(e: u16) -> u16 {
    (e & VERSION_MASK) >> VERSION_SHIFT
}
/// Stored fingerprint byte.
#[inline]
pub fn fp(e: u16) -> u8 {
    (e >> FP_SHIFT) as u8
}

/// The filter for one level: a flat array of entries, one per NVM slot.
///
/// ```
/// use hdnh::ocf::{self, LockOutcome, Ocf};
///
/// let filter = Ocf::new(16, 8); // 16 buckets x 8 slots
/// // Writer: lock an empty slot, publish fingerprint 0x42.
/// let LockOutcome::Locked(pre) = filter.try_lock_empty(3, 0) else { panic!() };
/// filter.commit(3, 0, pre, true, 0x42);
/// // Reader: one load answers "could slot (3,0) hold a key with fp 0x42?"
/// let e = filter.load(3, 0);
/// assert!(ocf::is_valid(e) && ocf::fp(e) == 0x42);
/// ```
#[derive(Debug)]
pub struct Ocf {
    entries: Box<[AtomicU16]>,
    slots_per_bucket: usize,
}

/// Outcome of a lock attempt on one slot.
#[derive(Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Lock acquired; contains the pre-lock entry value.
    Locked(u16),
    /// Entry changed under us (busy or mutated); caller rescans.
    Contended,
    /// Entry no longer satisfies the caller's predicate.
    Mismatch,
}

impl Ocf {
    /// Zeroed filter for `n_buckets × slots_per_bucket` slots (all invalid,
    /// unlocked, version 0).
    pub fn new(n_buckets: usize, slots_per_bucket: usize) -> Self {
        let mut v = Vec::with_capacity(n_buckets * slots_per_bucket);
        v.resize_with(n_buckets * slots_per_bucket, || AtomicU16::new(0));
        Ocf {
            entries: v.into_boxed_slice(),
            slots_per_bucket,
        }
    }

    /// Number of buckets covered.
    #[inline]
    pub fn n_buckets(&self) -> usize {
        self.entries.len() / self.slots_per_bucket
    }

    /// Slots per bucket.
    #[inline]
    pub fn slots_per_bucket(&self) -> usize {
        self.slots_per_bucket
    }

    #[inline]
    fn idx(&self, bucket: usize, slot: usize) -> usize {
        debug_assert!(slot < self.slots_per_bucket);
        bucket * self.slots_per_bucket + slot
    }

    /// Acquire-loads one entry (the reader's first load).
    #[inline]
    pub fn load(&self, bucket: usize, slot: usize) -> u16 {
        self.entries[self.idx(bucket, slot)].load(Ordering::Acquire)
    }

    /// The reader's validation load: acquire fence, then re-load. Returns
    /// `true` iff the entry still equals `expected` (and is therefore not
    /// busy, assuming `expected` was not busy).
    #[inline]
    pub fn revalidate(&self, bucket: usize, slot: usize, expected: u16) -> bool {
        fence(Ordering::Acquire);
        self.entries[self.idx(bucket, slot)].load(Ordering::Relaxed) == expected
    }

    /// Tries to lock an **empty** slot for insertion: CAS from
    /// `(valid=0, busy=0)` to busy. On success, issues the writer-side
    /// release fence; the caller may then write the NVM slot.
    pub fn try_lock_empty(&self, bucket: usize, slot: usize) -> LockOutcome {
        let cell = &self.entries[self.idx(bucket, slot)];
        let cur = cell.load(Ordering::Relaxed);
        if is_valid(cur) || is_busy(cur) {
            return if is_busy(cur) {
                // Contention events only: a Mismatch on a valid slot is the
                // insert scan walking occupied slots, not a failed lock.
                obs::count(obs::Counter::OpmapCasFail);
                LockOutcome::Contended
            } else {
                LockOutcome::Mismatch
            };
        }
        match cell.compare_exchange(cur, cur | E_BUSY, Ordering::Acquire, Ordering::Relaxed) {
            Ok(_) => {
                fence(Ordering::Release);
                LockOutcome::Locked(cur)
            }
            Err(_) => {
                obs::count(obs::Counter::OpmapCasFail);
                LockOutcome::Contended
            }
        }
    }

    /// Tries to lock a **valid** slot whose entry currently equals
    /// `expected` (as previously loaded by the caller during its probe).
    /// Guarantees the slot content cannot have changed since that load.
    pub fn try_lock_at(&self, bucket: usize, slot: usize, expected: u16) -> LockOutcome {
        if is_busy(expected) {
            obs::count(obs::Counter::OpmapCasFail);
            return LockOutcome::Contended;
        }
        let cell = &self.entries[self.idx(bucket, slot)];
        match cell.compare_exchange(
            expected,
            expected | E_BUSY,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                fence(Ordering::Release);
                LockOutcome::Locked(expected)
            }
            Err(now) => {
                obs::count(obs::Counter::OpmapCasFail);
                if now & !E_BUSY != expected & !E_BUSY {
                    LockOutcome::Mismatch
                } else {
                    LockOutcome::Contended
                }
            }
        }
    }

    /// Commit: unlock, bump version, publish `valid`/`fp`. One release
    /// store (the paper's "atomic write … incrementing the version").
    pub fn commit(&self, bucket: usize, slot: usize, pre_lock: u16, valid: bool, fp: u8) {
        debug_assert!(
            is_busy(self.entries[self.idx(bucket, slot)].load(Ordering::Relaxed)),
            "commit without lock"
        );
        let next = pack(valid, false, version(pre_lock).wrapping_add(1), fp);
        self.entries[self.idx(bucket, slot)].store(next, Ordering::Release);
    }

    /// Abort: unlock without changing valid/fp. Bumps the version anyway —
    /// cheap, and conservatively invalidates any reader that overlapped the
    /// lock window.
    pub fn abort(&self, bucket: usize, slot: usize, pre_lock: u16) {
        let next = pack(
            is_valid(pre_lock),
            false,
            version(pre_lock).wrapping_add(1),
            fp(pre_lock),
        );
        self.entries[self.idx(bucket, slot)].store(next, Ordering::Release);
    }

    /// Recovery-time raw install (single-threaded per bucket, pre-publication).
    pub fn install(&self, bucket: usize, slot: usize, valid: bool, fp: u8) {
        self.entries[self.idx(bucket, slot)].store(pack(valid, false, 0, fp), Ordering::Relaxed);
    }

    /// Count of valid entries (diagnostics, recovery verification).
    pub fn count_valid(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| is_valid(e.load(Ordering::Relaxed)))
            .count()
    }

    /// Approximate memory footprint in bytes (for the paper's "an OCF entry
    /// only occupies 2 bytes" accounting).
    pub fn footprint_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<AtomicU16>()
    }
}

/// Bounded exponential backoff for opmap CAS retry loops.
///
/// Round `k` burns `2^min(k, MAX_EXP)` [`std::hint::spin_loop`] hints; once
/// the spin budget saturates the waiter yields the CPU instead, so a
/// descheduled lock holder cannot starve its contenders. Every round is
/// counted under [`obs::Counter::OpmapBackoffRound`].
#[derive(Debug, Default)]
pub struct Backoff {
    round: u32,
}

impl Backoff {
    /// Spin budget cap: at most `2^MAX_EXP` hints per round.
    pub const MAX_EXP: u32 = 6;
    /// Rounds after which the waiter yields instead of spinning.
    pub const YIELD_AFTER: u32 = 10;

    /// Fresh backoff state (round 0).
    pub const fn new() -> Self {
        Backoff { round: 0 }
    }

    /// Rounds waited so far.
    pub fn rounds(&self) -> u32 {
        self.round
    }

    /// Wait one round: exponential spinning up to the cap, then yields.
    pub fn wait(&mut self) {
        obs::count(obs::Counter::OpmapBackoffRound);
        if self.round < Self::YIELD_AFTER {
            for _ in 0..(1u32 << self.round.min(Self::MAX_EXP)) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.round = self.round.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for valid in [false, true] {
            for busy in [false, true] {
                for ver in [0u16, 1, 63] {
                    for f in [0u8, 0xAB, 0xFF] {
                        let e = pack(valid, busy, ver, f);
                        assert_eq!(is_valid(e), valid);
                        assert_eq!(is_busy(e), busy);
                        assert_eq!(version(e), ver);
                        assert_eq!(fp(e), f);
                    }
                }
            }
        }
    }

    #[test]
    fn entry_is_two_bytes() {
        // The paper's space argument: 2 bytes per slot.
        assert_eq!(std::mem::size_of::<AtomicU16>(), 2);
        let ocf = Ocf::new(100, 8);
        assert_eq!(ocf.footprint_bytes(), 1600);
    }

    #[test]
    fn version_wraps_mod_64() {
        let e = pack(true, false, 63, 0);
        let ocf = Ocf::new(1, 8);
        ocf.install(0, 0, true, 0);
        // Install sets version 0; drive it to 63 then wrap.
        let mut pre = ocf.load(0, 0);
        for _ in 0..64 {
            match ocf.try_lock_at(0, 0, pre) {
                LockOutcome::Locked(p) => ocf.commit(0, 0, p, true, 0),
                other => panic!("{other:?}"),
            }
            pre = ocf.load(0, 0);
        }
        assert_eq!(version(pre), 0, "64 commits wrap to 0");
        let _ = e;
    }

    #[test]
    fn lock_empty_only_succeeds_on_empty() {
        let ocf = Ocf::new(1, 8);
        match ocf.try_lock_empty(0, 0) {
            LockOutcome::Locked(pre) => ocf.commit(0, 0, pre, true, 0x42),
            other => panic!("{other:?}"),
        }
        assert_eq!(ocf.try_lock_empty(0, 0), LockOutcome::Mismatch);
        let e = ocf.load(0, 0);
        assert!(is_valid(e));
        assert_eq!(fp(e), 0x42);
        assert_eq!(version(e), 1);
    }

    #[test]
    fn lock_at_detects_mutation() {
        let ocf = Ocf::new(1, 8);
        let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 3) else {
            panic!()
        };
        ocf.commit(0, 3, pre, true, 7);
        let seen = ocf.load(0, 3);
        // Another writer commits in between…
        let LockOutcome::Locked(pre2) = ocf.try_lock_at(0, 3, seen) else {
            panic!()
        };
        ocf.commit(0, 3, pre2, true, 8);
        // …so locking with the stale snapshot must report Mismatch.
        assert_eq!(ocf.try_lock_at(0, 3, seen), LockOutcome::Mismatch);
    }

    #[test]
    fn busy_slot_reports_contended() {
        let ocf = Ocf::new(1, 8);
        let LockOutcome::Locked(_) = ocf.try_lock_empty(0, 0) else {
            panic!()
        };
        assert_eq!(ocf.try_lock_empty(0, 0), LockOutcome::Contended);
        let busy_entry = ocf.load(0, 0);
        assert_eq!(ocf.try_lock_at(0, 0, busy_entry), LockOutcome::Contended);
    }

    #[test]
    fn abort_restores_and_bumps() {
        let ocf = Ocf::new(1, 8);
        let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 0) else {
            panic!()
        };
        ocf.abort(0, 0, pre);
        let e = ocf.load(0, 0);
        assert!(!is_valid(e));
        assert!(!is_busy(e));
        assert_eq!(version(e), 1);
        // Slot is lockable again.
        assert!(matches!(ocf.try_lock_empty(0, 0), LockOutcome::Locked(_)));
    }

    #[test]
    fn revalidate_detects_commit() {
        let ocf = Ocf::new(1, 8);
        let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 1) else {
            panic!()
        };
        ocf.commit(0, 1, pre, true, 9);
        let snapshot = ocf.load(0, 1);
        assert!(ocf.revalidate(0, 1, snapshot));
        let LockOutcome::Locked(pre) = ocf.try_lock_at(0, 1, snapshot) else {
            panic!()
        };
        ocf.commit(0, 1, pre, true, 9);
        assert!(!ocf.revalidate(0, 1, snapshot));
    }

    #[test]
    fn count_valid_counts() {
        let ocf = Ocf::new(4, 8);
        assert_eq!(ocf.count_valid(), 0);
        ocf.install(0, 0, true, 1);
        ocf.install(3, 7, true, 2);
        ocf.install(2, 2, false, 3);
        assert_eq!(ocf.count_valid(), 2);
    }

    #[test]
    fn seqlock_detects_any_change_below_the_version_wrap() {
        // Deterministic boundary test: a reader snapshot is invalidated by
        // ANY number of intervening commits from 1 to 63. (At exactly 64
        // the 6-bit version wraps — see the companion test below.)
        use hdnh_common::{Key, Record, Value};
        use hdnh_nvm::{NvmOptions, NvmRegion};
        for commits in [1usize, 2, 63] {
            let ocf = Ocf::new(1, 8);
            let region = NvmRegion::new(256, NvmOptions::fast());
            let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 0) else {
                panic!()
            };
            region.write_pod(8, &Record::new(Key::from_u64(1), Value::from_u64(10)).to_bytes());
            ocf.commit(0, 0, pre, true, 0x42);
            // Reader takes its snapshot…
            let e1 = ocf.load(0, 0);
            // …writer performs `commits` commits in between…
            for i in 0..commits {
                let e = ocf.load(0, 0);
                let LockOutcome::Locked(p) = ocf.try_lock_at(0, 0, e) else {
                    panic!()
                };
                region.write_pod(
                    8,
                    &Record::new(Key::from_u64(2 + i as u64), Value::from_u64(99)).to_bytes(),
                );
                ocf.commit(0, 0, p, true, 0x42);
            }
            // …and the snapshot must be rejected.
            assert!(
                !ocf.revalidate(0, 0, e1),
                "revalidation missed {commits} intervening commits"
            );
        }
    }

    /// Documented limitation inherited from the paper's 2-byte OCF entry:
    /// the 6-bit version wraps mod 64, so a reader descheduled long enough
    /// for a slot to receive exactly 64 commits (with identical final
    /// valid/fp bits) revalidates a stale snapshot — the classic seqlock
    /// ABA. The paper accepts this window; real deployments make it
    /// vanishingly small because every commit includes an NVM persist.
    /// This test pins the behaviour so any future fix (e.g. wider entries)
    /// updates it consciously.
    #[test]
    fn seqlock_version_wrap_aba_window_is_exactly_64() {
        use hdnh_common::{Key, Record, Value};
        use hdnh_nvm::{NvmOptions, NvmRegion};
        let ocf = Ocf::new(1, 8);
        let region = NvmRegion::new(256, NvmOptions::fast());
        let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 0) else {
            panic!()
        };
        region.write_pod(8, &Record::new(Key::from_u64(1), Value::from_u64(10)).to_bytes());
        ocf.commit(0, 0, pre, true, 0x42);
        let e1 = ocf.load(0, 0);
        for i in 0..64usize {
            let e = ocf.load(0, 0);
            let LockOutcome::Locked(p) = ocf.try_lock_at(0, 0, e) else {
                panic!()
            };
            region.write_pod(
                8,
                &Record::new(Key::from_u64(100 + i as u64), Value::from_u64(1)).to_bytes(),
            );
            ocf.commit(0, 0, p, true, 0x42);
        }
        // 64 commits: version wrapped all the way around — ABA.
        assert!(
            ocf.revalidate(0, 0, e1),
            "entry layout changed: ABA window is no longer 64 commits"
        );
    }

    #[test]
    fn backoff_rounds_accumulate_and_saturate() {
        let mut b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        // Drive it well past the yield threshold; must neither panic nor
        // overflow the shift (the exponent is capped at MAX_EXP).
        for _ in 0..(Backoff::YIELD_AFTER + 20) {
            b.wait();
        }
        assert_eq!(b.rounds(), Backoff::YIELD_AFTER + 20);
    }

    #[test]
    fn concurrent_lock_is_exclusive() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let ocf = Arc::new(Ocf::new(1, 8));
        let holders = Arc::new(AtomicUsize::new(0));
        let winners = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let ocf = Arc::clone(&ocf);
            let holders = Arc::clone(&holders);
            let winners = Arc::clone(&winners);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    if let LockOutcome::Locked(pre) = ocf.try_lock_empty(0, 0) {
                        let h = holders.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(h, 0, "two threads inside the critical section");
                        winners.fetch_add(1, Ordering::Relaxed);
                        holders.fetch_sub(1, Ordering::SeqCst);
                        ocf.abort(0, 0, pre);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(winners.load(Ordering::Relaxed) > 0);
    }
}
