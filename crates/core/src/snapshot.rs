//! Crash-consistent live snapshots of a file-backed pool.
//!
//! [`Hdnh::snapshot`] copies every region file of a [`Backend::Pool`]
//! table into a target directory while the table keeps serving reads.
//! Consistency comes from the same writer-exclusion device the integrity
//! scan uses: the maintenance lock is taken and the generation counter is
//! made odd, so every mutator parks at its next generation check, then the
//! epoch is drained so no mutator is still mid-store. Readers never touch
//! the generation and keep running for the whole copy (IcebergHT makes the
//! same stability argument for its resize-free scans).
//!
//! The copy is taken *after* `msync(MS_SYNC)`+`fsync` of every region, so
//! the page-cache image being copied equals the on-media image; under
//! shadow-persistence mode this also commits all fenced lines to the
//! sidecars, keeping the power-loss model consistent across a backup.
//!
//! Snapshot directory layout:
//!
//! * `meta.dat`, `seg-*.dat` — byte-for-byte copies of the live regions;
//! * `superblock` — freshly encoded, **dirty** (clean flag clear), so a
//!   restore always runs the recovery path. This is what makes a snapshot
//!   taken mid-resize restorable: the copied meta block carries the resize
//!   state machine, and recovery resumes or unwinds it exactly as it would
//!   after a crash;
//! * `snapshot.manifest` — text manifest naming every file with its length
//!   and CRC-32, itself CRC-terminated, written last via temp-file +
//!   rename. A directory without a valid manifest is not a snapshot;
//!   restore refuses it.
//!
//! Shadow `.shadow` sidecars are deliberately *not* copied: a snapshot
//! models media contents, and the restore side re-derives its sidecar
//! baseline from the region files on open.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use hdnh_nvm::Backend;
use hdnh_obs as obs;

use crate::pool::{
    crc32_ieee, read_superblock, write_superblock, Superblock, SUPERBLOCK_FILE,
    SUPERBLOCK_VERSION,
};
use crate::{Hdnh, HdnhError};

/// Filename of the CRC manifest inside a snapshot directory.
pub const SNAPSHOT_MANIFEST_FILE: &str = "snapshot.manifest";

/// Manifest header magic (first token of the first line).
const MANIFEST_MAGIC: &str = "HDNHSNAP";

/// Manifest format version this build reads and writes.
const MANIFEST_VERSION: u32 = 1;

/// One file covered by a snapshot manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Filename relative to the snapshot directory.
    pub name: String,
    /// Exact length in bytes.
    pub len: u64,
    /// CRC-32 (IEEE) of the file contents.
    pub crc32: u32,
}

/// Parsed `snapshot.manifest`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotManifest {
    /// The pool's segment size; must match the restoring params.
    pub segment_bytes: u64,
    /// The source pool's open generation when the snapshot was taken.
    pub layout_epoch: u64,
    /// Every file in the snapshot, superblock included.
    pub entries: Vec<ManifestEntry>,
}

/// What [`Hdnh::snapshot`] did.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReport {
    /// Files written into the snapshot directory (manifest included).
    pub files: usize,
    /// Region + superblock bytes copied (manifest excluded).
    pub bytes: u64,
}

fn io_err(op: &str, p: &Path, e: std::io::Error) -> HdnhError {
    HdnhError::Io(format!("{op} {}: {e}", p.display()))
}

/// Copies `src` to `dst` in chunks, returning `(len, crc32)`. The
/// destination is fsynced so a snapshot is durable once its manifest is.
fn copy_with_crc(src: &Path, dst: &Path) -> Result<(u64, u32), HdnhError> {
    let mut from = fs::File::open(src).map_err(|e| io_err("open", src, e))?;
    let mut to = fs::File::create(dst).map_err(|e| io_err("create", dst, e))?;
    let mut buf = vec![0u8; 1 << 20];
    let mut len = 0u64;
    let mut crc = !0u32;
    loop {
        let n = from.read(&mut buf).map_err(|e| io_err("read", src, e))?;
        if n == 0 {
            break;
        }
        // Incremental CRC: fold each chunk into the running register.
        for &byte in &buf[..n] {
            crc ^= byte as u32;
            for _ in 0..8 {
                crc = (crc >> 1) ^ (0xEDB8_8320 & (!(crc & 1)).wrapping_add(1));
            }
        }
        to.write_all(&buf[..n]).map_err(|e| io_err("write", dst, e))?;
        len += n as u64;
    }
    to.sync_all().map_err(|e| io_err("fsync", dst, e))?;
    Ok((len, !crc))
}

fn file_crc(path: &Path) -> Result<(u64, u32), HdnhError> {
    let bytes = fs::read(path).map_err(|e| io_err("read", path, e))?;
    Ok((bytes.len() as u64, crc32_ieee(&bytes)))
}

impl SnapshotManifest {
    fn encode(&self) -> String {
        let mut s = format!("{MANIFEST_MAGIC} {MANIFEST_VERSION}\n");
        s.push_str(&format!("segment_bytes {}\n", self.segment_bytes));
        s.push_str(&format!("layout_epoch {}\n", self.layout_epoch));
        for e in &self.entries {
            s.push_str(&format!("file {} {} {:08x}\n", e.name, e.len, e.crc32));
        }
        let crc = crc32_ieee(s.as_bytes());
        s.push_str(&format!("end {crc:08x}\n"));
        s
    }

    /// Parses and validates manifest text; every failure is a typed
    /// [`HdnhError::Recovery`].
    pub fn decode(text: &str) -> Result<SnapshotManifest, HdnhError> {
        let bad = |msg: String| Err(HdnhError::Recovery(format!("snapshot manifest: {msg}")));
        // The trailer covers every byte before its own line.
        let Some(end_at) = text.rfind("end ") else {
            return bad("missing end line (truncated?)".into());
        };
        let trailer = text[end_at..].trim_end();
        let Some(stored) = trailer
            .strip_prefix("end ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
        else {
            return bad(format!("malformed end line {trailer:?}"));
        };
        let actual = crc32_ieee(&text.as_bytes()[..end_at]);
        if stored != actual {
            return bad(format!(
                "CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
            ));
        }
        let mut lines = text[..end_at].lines();
        match lines.next().map(|l| l.split_whitespace().collect::<Vec<_>>()) {
            Some(v) if v.len() == 2 && v[0] == MANIFEST_MAGIC => {
                if v[1].parse::<u32>() != Ok(MANIFEST_VERSION) {
                    return bad(format!("unsupported version {}", v[1]));
                }
            }
            other => return bad(format!("bad header {other:?}")),
        }
        let mut field = |key: &str| -> Result<u64, HdnhError> {
            match lines.next().map(|l| l.split_whitespace().collect::<Vec<_>>()) {
                Some(v) if v.len() == 2 && v[0] == key => v[1]
                    .parse()
                    .map_err(|_| HdnhError::Recovery(format!("snapshot manifest: bad {key}"))),
                other => Err(HdnhError::Recovery(format!(
                    "snapshot manifest: expected {key}, got {other:?}"
                ))),
            }
        };
        let segment_bytes = field("segment_bytes")?;
        let layout_epoch = field("layout_epoch")?;
        let mut entries = Vec::new();
        for line in lines {
            let v: Vec<_> = line.split_whitespace().collect();
            let (Some(&"file"), Some(name), Some(len), Some(crc)) =
                (v.first(), v.get(1), v.get(2), v.get(3))
            else {
                return bad(format!("malformed file line {line:?}"));
            };
            // Reject path traversal: entries are plain basenames.
            if name.contains('/') || name.contains('\\') || *name == ".." {
                return bad(format!("entry name {name:?} is not a plain filename"));
            }
            entries.push(ManifestEntry {
                name: name.to_string(),
                len: len
                    .parse()
                    .map_err(|_| HdnhError::Recovery(format!("bad length in {line:?}")))?,
                crc32: u32::from_str_radix(crc, 16)
                    .map_err(|_| HdnhError::Recovery(format!("bad crc in {line:?}")))?,
            });
        }
        if entries.is_empty() {
            return bad("no file entries".into());
        }
        Ok(SnapshotManifest {
            segment_bytes,
            layout_epoch,
            entries,
        })
    }
}

/// Reads and validates `dir`'s manifest, then checks every listed file's
/// length and CRC against the bytes actually present. Returns the parsed
/// manifest on success; any mismatch is a typed [`HdnhError::Recovery`].
pub fn verify_snapshot(dir: &Path) -> Result<SnapshotManifest, HdnhError> {
    let mpath = dir.join(SNAPSHOT_MANIFEST_FILE);
    let text = fs::read_to_string(&mpath).map_err(|e| io_err("read", &mpath, e))?;
    let manifest = SnapshotManifest::decode(&text)?;
    for e in &manifest.entries {
        let p = dir.join(&e.name);
        let (len, crc) = file_crc(&p)?;
        if len != e.len {
            return Err(HdnhError::Recovery(format!(
                "snapshot file {} is {len} bytes, manifest says {}",
                e.name, e.len
            )));
        }
        if crc != e.crc32 {
            return Err(HdnhError::Recovery(format!(
                "snapshot file {} CRC mismatch (computed {crc:#010x}, manifest {:#010x})",
                e.name, e.crc32
            )));
        }
    }
    Ok(manifest)
}

impl Hdnh {
    /// Takes a crash-consistent snapshot of a file-backed pool into `dir`
    /// (created if absent; must not already hold a snapshot or pool).
    ///
    /// Writers are excluded for the duration of the copy via the
    /// maintenance guard + odd generation + epoch drain; readers are never
    /// blocked. Heap-backed tables are rejected with
    /// [`HdnhError::Config`]; a pending pool I/O fault is surfaced instead
    /// of snapshotting possibly-stale pages.
    pub fn snapshot(&self, dir: &Path) -> Result<SnapshotReport, HdnhError> {
        obs::trace::milestone(obs::trace::Milestone::SnapshotStart);
        let r = self.snapshot_inner(dir);
        match &r {
            Ok(report) => {
                obs::count(obs::Counter::SnapshotTaken);
                obs::add(obs::Counter::SnapshotBytes, report.bytes);
                obs::trace::milestone(obs::trace::Milestone::SnapshotDone);
            }
            Err(_) => {
                obs::count(obs::Counter::SnapshotFailed);
                obs::trace::milestone(obs::trace::Milestone::SnapshotFailed);
            }
        }
        r
    }

    fn snapshot_inner(&self, dir: &Path) -> Result<SnapshotReport, HdnhError> {
        let pool = match &self.params().nvm.backend {
            Backend::Pool(p) => p.clone(),
            Backend::Heap => {
                return Err(HdnhError::Config(
                    "snapshot requires a file-backed pool (heap tables have \
                     nothing durable to copy)"
                        .into(),
                ));
            }
        };
        if let Some(fault) = self.io_fault() {
            return Err(fault);
        }
        fs::create_dir_all(dir).map_err(|e| io_err("mkdir", dir, e))?;
        for blocker in [SNAPSHOT_MANIFEST_FILE, SUPERBLOCK_FILE] {
            if dir.join(blocker).exists() {
                return Err(HdnhError::Config(format!(
                    "{} already holds {blocker}; refusing to overwrite",
                    dir.display()
                )));
            }
        }
        let src_sb = read_superblock(pool.path())?;

        // ---- consistent copy behind the writer pause ----
        let copied: Result<Vec<ManifestEntry>, HdnhError> = self.with_writers_paused(|| {
            // Equalize page cache and media (and commit shadow sidecars)
            // before reading the files back.
            self.sync_regions_to_disk_locked()?;
            let mut entries = Vec::new();
            for src in self.region_file_paths_locked() {
                let name = src
                    .file_name()
                    .and_then(|n| n.to_str())
                    .ok_or_else(|| {
                        HdnhError::Io(format!("region path {} has no filename", src.display()))
                    })?
                    .to_string();
                let (len, crc32) = copy_with_crc(&src, &dir.join(&name))?;
                entries.push(ManifestEntry { name, len, crc32 });
            }
            Ok(entries)
        });
        let mut entries = copied?;

        // ---- snapshot superblock: always dirty, restore always recovers ----
        let sb = Superblock {
            version: SUPERBLOCK_VERSION,
            clean: false,
            segment_bytes: src_sb.segment_bytes,
            layout_epoch: src_sb.layout_epoch,
        };
        write_superblock(dir, &sb)?;
        let enc = sb.encode();
        entries.push(ManifestEntry {
            name: SUPERBLOCK_FILE.to_string(),
            len: enc.len() as u64,
            crc32: crc32_ieee(&enc),
        });
        let bytes = entries.iter().map(|e| e.len).sum();

        // ---- manifest last: its presence marks the snapshot complete ----
        let manifest = SnapshotManifest {
            segment_bytes: src_sb.segment_bytes,
            layout_epoch: src_sb.layout_epoch,
            entries,
        };
        let tmp = dir.join("snapshot.manifest.tmp");
        let live = dir.join(SNAPSHOT_MANIFEST_FILE);
        fs::write(&tmp, manifest.encode()).map_err(|e| io_err("write", &tmp, e))?;
        let f = fs::File::open(&tmp).map_err(|e| io_err("open", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        fs::rename(&tmp, &live).map_err(|e| io_err("rename", &tmp, e))?;
        #[cfg(unix)]
        {
            let d = fs::File::open(dir).map_err(|e| io_err("open", dir, e))?;
            d.sync_all().map_err(|e| io_err("fsync", dir, e))?;
        }
        Ok(SnapshotReport {
            files: manifest.entries.len() + 1,
            bytes,
        })
    }

    /// Restores the snapshot at `snap_dir` into `dest_dir` and opens it.
    ///
    /// Every file is CRC-verified against the manifest *before* anything
    /// is written, the copies land in `dest_dir` (created, must not hold a
    /// pool), and the result is opened through the ordinary
    /// [`Hdnh::open_pool`] recovery path — the snapshot's superblock is
    /// dirty by construction, so resize resume and the checksum-verified
    /// rebuild always run.
    pub fn restore_snapshot(
        params: crate::HdnhParams,
        snap_dir: &Path,
        dest_dir: &Path,
        threads: usize,
    ) -> Result<(Hdnh, crate::PoolOpenReport), HdnhError> {
        let manifest = verify_snapshot(snap_dir)?;
        if manifest.segment_bytes != params.segment_bytes as u64 {
            return Err(HdnhError::Recovery(format!(
                "snapshot was taken with segment_bytes={} but params say {}",
                manifest.segment_bytes, params.segment_bytes
            )));
        }
        fs::create_dir_all(dest_dir).map_err(|e| io_err("mkdir", dest_dir, e))?;
        let sb_dest = dest_dir.join(SUPERBLOCK_FILE);
        let meta_dest = dest_dir.join(hdnh_nvm::META_FILE);
        if sb_dest.exists() || meta_dest.exists() {
            return Err(HdnhError::Config(format!(
                "{} already holds a pool; refusing to overwrite",
                dest_dir.display()
            )));
        }
        for e in &manifest.entries {
            let src: PathBuf = snap_dir.join(&e.name);
            let (_, _) = copy_with_crc(&src, &dest_dir.join(&e.name))?;
        }
        #[cfg(unix)]
        {
            let d = fs::File::open(dest_dir).map_err(|e| io_err("open", dest_dir, e))?;
            d.sync_all().map_err(|e| io_err("fsync", dest_dir, e))?;
        }
        Hdnh::open_pool(params, dest_dir, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = SnapshotManifest {
            segment_bytes: 1024,
            layout_epoch: 3,
            entries: vec![
                ManifestEntry {
                    name: "meta.dat".into(),
                    len: 256,
                    crc32: 0xDEAD_BEEF,
                },
                ManifestEntry {
                    name: "seg-0.dat".into(),
                    len: 2048,
                    crc32: 0x0000_0001,
                },
            ],
        };
        assert_eq!(SnapshotManifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_any_edit() {
        let m = SnapshotManifest {
            segment_bytes: 4096,
            layout_epoch: 1,
            entries: vec![ManifestEntry {
                name: "seg-1.dat".into(),
                len: 4096,
                crc32: 7,
            }],
        };
        let good = m.encode();
        // Flip one character in the covered region: decode must fail.
        let tampered = good.replacen("4096", "8192", 1);
        assert!(SnapshotManifest::decode(&tampered).is_err());
        // Truncation loses the end line.
        assert!(SnapshotManifest::decode(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn manifest_rejects_traversal_names() {
        let m = SnapshotManifest {
            segment_bytes: 1024,
            layout_epoch: 1,
            entries: vec![ManifestEntry {
                name: "seg-0.dat".into(),
                len: 1,
                crc32: 0,
            }],
        };
        let evil = m.encode().replace("seg-0.dat", "../seg-0.dat");
        // Re-seal the CRC so only the name check can reject it.
        let body = &evil[..evil.rfind("end ").unwrap()];
        let resealed = format!("{body}end {:08x}\n", crc32_ieee(body.as_bytes()));
        let err = SnapshotManifest::decode(&resealed).unwrap_err();
        assert!(format!("{err}").contains("plain filename"), "{err}");
    }
}
