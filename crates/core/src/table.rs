//! The HDNH table: hybrid DRAM-NVM hashing (paper §3).
//!
//! Composition (figure 2): key-value records persist in the two-level
//! [`Level`] structure in NVM; all probe metadata lives in the DRAM
//! [`Ocf`]; a DRAM [`HotTable`] absorbs skewed reads; writes run under the
//! synchronous write mechanism ([`SyncWriter`]); per-slot optimistic
//! concurrency (§3.6) replaces bucket locks.
//!
//! # Operation protocols (figures 9 & 10)
//!
//! * **Insert** — lock an empty slot in the OCF (opmap CAS), write the
//!   record to the NVM slot and persist it, atomically set the persisted
//!   bitmap bit (8-byte failure-atomic commit point), then one release store
//!   to the OCF entry publishes fingerprint + valid + version+1 and drops
//!   the lock. A crash before the bitmap commit leaves the slot invisible.
//! * **Update** — lock the old slot, write the *new* record out-of-place
//!   into an empty slot of the **same bucket**, then flip both bitmap bits
//!   with a single 8-byte atomic store (figure 10c). If the bucket has no
//!   free slot, fall back to insert-elsewhere-then-delete (two atomic
//!   commits; the recovery scan deduplicates the crash window — see
//!   DESIGN.md).
//! * **Delete** — lock, clear the bitmap bit atomically, invalidate the OCF
//!   entry.
//! * **Search** — hot table first; then OCF fingerprints; only a fingerprint
//!   match touches NVM, and the seqlock version re-check detects any
//!   concurrent writer. Completely lock-free: no NVM writes on the read
//!   path (the flaw the paper calls out in CCEH's reader locks). Every NVM
//!   record read is additionally verified against the 7-bit checksum packed
//!   into the bucket header; a seqlock-stable mismatch is media damage and
//!   is repaired or quarantined — never served (DESIGN.md §10).
//!
//! Resizing follows Level hashing's scheme (§3.7): a new top level with
//! twice the segments is allocated, bottom-level items are rehashed into it,
//! the old top becomes the new bottom. The `level number` state machine and
//! a per-bucket progress cursor are persisted so a crash at any point is
//! recoverable ([`crate::recovery`]).
//!
//! # Concurrency model (DESIGN.md §11)
//!
//! There is no table-wide lock on any operation path. The swappable state
//! ([`Inner`]: levels + OCFs + hot table) is published behind one
//! `AtomicPtr`; every operation pins the epoch ([`crate::epoch`]), loads the
//! pointer, and works on that snapshot. Readers validate the `generation`
//! counter after the probe and retry only across a concurrent resize;
//! writers additionally validate it *before* operating (an even, matching
//! generation) so a resize can exclude them by publishing an odd value and
//! draining the epoch. Only the maintenance paths — resize, scrub,
//! integrity audits, and the crash-simulation hooks — serialize on a rare
//! `maintenance` mutex, which the hot paths never touch (enforced by a
//! debug assertion).

use std::cell::RefCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use hdnh_common::hash::KeyHashes;
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{HashIndex, IndexError, IndexResult, Key, Record, Value};
use hdnh_nvm::fault;
use hdnh_nvm::StatsSnapshot;
use hdnh_obs as obs;
use parking_lot::{Mutex, MutexGuard};

use crate::epoch;
use crate::error::{CorruptionOutcome, HdnhError};
use crate::hot::HotTable;
use crate::meta::{Meta, ResizeState};
use crate::nvtable::{header_slot_spilled, header_slot_valid, slot_checksum_ok, slot_meta, Level};
use crate::ocf::{self, Backoff, LockOutcome, Ocf};
use crate::params::{HdnhParams, SyncMode, BUCKET_BYTES, SLOTS_PER_BUCKET};
use crate::sync::{HotOp, SyncWriter};
use crate::vlog::{self, Vlog, VlogPtr};

static RNG_SEED: AtomicU64 = AtomicU64::new(0x5EED);

thread_local! {
    static RAFL_RNG: RefCell<XorShift64Star> = RefCell::new(XorShift64Star::new(
        // Distinct per thread; exact value irrelevant.
        RNG_SEED.fetch_add(1, Ordering::Relaxed)
    ));
}

/// Number of candidate buckets per level under the 2-choice strategy.
pub(crate) const CANDIDATES_FULL: usize = 4;
/// Candidates per level with a single segment choice (ablation).
pub(crate) const CANDIDATES_ONE_CHOICE: usize = 2;

/// Table state that is swapped wholesale by a resize.
pub(crate) struct Inner {
    /// The (even) table generation this snapshot belongs to.
    pub(crate) generation: u64,
    pub(crate) top: Level,
    pub(crate) bottom: Level,
    /// OCFs are `Arc`-shared across snapshots: after a resize the old top's
    /// OCF *is* the new bottom's, so a reader still probing the pre-swap
    /// snapshot observes the same per-slot seqlock words new writers commit.
    pub(crate) ocf_top: Arc<Ocf>,
    pub(crate) ocf_bottom: Arc<Ocf>,
    pub(crate) hot: Option<Arc<HotTable>>,
}

impl Inner {
    #[inline]
    pub(crate) fn level(&self, li: usize) -> (&Level, &Ocf) {
        if li == 0 {
            (&self.top, &*self.ocf_top)
        } else {
            (&self.bottom, &*self.ocf_bottom)
        }
    }

    #[inline]
    fn total_slots(&self) -> usize {
        self.top.n_slots() + self.bottom.n_slots()
    }
}

/// Outcome of one named integrity invariant from
/// [`Hdnh::verify_integrity_report`].
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Stable invariant identifier (see `verify_integrity_report` docs).
    pub name: &'static str,
    /// Whether every check under this invariant passed.
    pub ok: bool,
    /// The first few violations, human-readable (capped).
    pub violations: Vec<String>,
}

/// Machine-readable outcome of one [`Hdnh::scrub`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Live slots whose record was checksum-verified.
    pub scanned: usize,
    /// Slots whose bytes failed the checksum committed with them.
    pub detected: usize,
    /// Detected slots rebuilt in place from a clean DRAM hot-table copy.
    pub repaired: usize,
    /// Detected slots with no clean copy: valid bit cleared, record lost.
    pub quarantined: usize,
    /// Per-slot detail for each detection (capped at [`ScrubReport::ERRORS_CAP`]).
    pub errors: Vec<HdnhError>,
}

impl ScrubReport {
    /// Cap on retained per-slot errors so a badly damaged pool stays
    /// reportable.
    pub const ERRORS_CAP: usize = 64;

    /// `true` when the pass found no corruption.
    pub fn clean(&self) -> bool {
        self.detected == 0
    }

    /// One-line JSON summary for tooling and CI artifacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scanned\":{},\"detected\":{},\"repaired\":{},\"quarantined\":{}}}",
            self.scanned, self.detected, self.repaired, self.quarantined
        )
    }
}

/// A record's located position in the table.
struct Located {
    li: usize,
    bucket: usize,
    slot: usize,
    /// OCF entry snapshot taken when the record was matched.
    entry: u16,
    value: Value,
}

/// The HDNH hash table.
pub struct Hdnh {
    params: HdnhParams,
    pub(crate) meta: Meta,
    /// The live snapshot, swapped wholesale by a resize. Hot paths pin the
    /// epoch and load this pointer; they never take a lock.
    pub(crate) current: AtomicPtr<Inner>,
    /// Serializes the maintainers (resize, scrub, integrity audits, crash
    /// hooks). Never touched by `get`/`insert`/`update`/`remove`.
    maintenance: Mutex<()>,
    /// In-flight resize level, surfaced to `into_pool` after a mid-resize
    /// crash (an unwind out of `perform_resize`).
    pub(crate) pending_new_top: Mutex<Option<(Level, Ocf)>>,
    count: AtomicUsize,
    /// Even = stable; odd = a maintainer is excluding writers. Advances by
    /// 2 per completed resize and always matches `current`'s snapshot
    /// generation when even.
    generation: AtomicU64,
    /// Bumped by every out-of-place update *between* committing the new
    /// copy and clearing the old one. A reader that misses can only have
    /// raced such a move if this changed during its probe (the proof in
    /// `get_inner`); an unchanged counter makes the miss authoritative.
    relocations: AtomicU64,
    resizes: AtomicUsize,
    sync: Option<SyncWriter>,
    /// The value log holding spilled (over-inline-budget) values. Lives
    /// outside [`Inner`] because log segments survive level resizes
    /// unchanged — only the slot pointers move with their records.
    pub(crate) vlog: Arc<Vlog>,
}

impl Drop for Hdnh {
    fn drop(&mut self) {
        let p = *self.current.get_mut();
        if !p.is_null() {
            // Safety: `current` exclusively owns the snapshot; `into_pool`
            // nulls the pointer after taking ownership.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// A pinned snapshot: the epoch pin (taken *before* the pointer load) keeps
/// a concurrent resize from freeing the `Inner` this borrows.
struct PinnedInner<'a> {
    _pin: epoch::Pin,
    inner: &'a Inner,
}

#[cfg(debug_assertions)]
thread_local! {
    /// Set while `get` runs. [`Hdnh::maintenance_lock`] asserts against it,
    /// proving the read path never serializes on the maintainers' mutex.
    static ON_READ_PATH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[cfg(debug_assertions)]
struct ReadPathGuard;

#[cfg(debug_assertions)]
impl ReadPathGuard {
    fn enter() -> Self {
        ON_READ_PATH.with(|f| f.set(true));
        ReadPathGuard
    }
}

#[cfg(debug_assertions)]
impl Drop for ReadPathGuard {
    fn drop(&mut self) {
        ON_READ_PATH.with(|f| f.set(false));
    }
}

/// Restores the generation word on unwind. Arms the writer-exclusion phase
/// of a maintainer: if the maintainer panics (fault-injection crashes), the
/// even pre-maintenance generation is restored so subsequent operations on
/// the untouched old snapshot don't spin on a forever-odd value.
struct GenRestore<'a> {
    gen: &'a AtomicU64,
    value: u64,
    armed: bool,
}

impl Drop for GenRestore<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.gen.store(self.value, Ordering::SeqCst);
        }
    }
}

impl Hdnh {
    /// Pins the epoch and loads the live snapshot: the entire read-side
    /// synchronization cost — one uncontended `fetch_add` and one load.
    #[inline]
    fn pinned(&self) -> PinnedInner<'_> {
        let pin = epoch::pin();
        // Safety: the pointer is never null while `&self` is reachable, and
        // the pin taken before the load keeps resize's reclamation drain
        // from freeing the target until this guard drops.
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        PinnedInner { _pin: pin, inner }
    }

    /// Pins and validates for a writer: the snapshot must carry the current
    /// *even* generation. A maintainer excludes new writers by publishing an
    /// odd value; in-flight validated writers finish under their pin before
    /// the maintainer's `drain` returns.
    #[inline]
    fn pin_for_write(&self) -> (PinnedInner<'_>, u64) {
        loop {
            let snap = self.pinned();
            let gen = self.generation.load(Ordering::SeqCst);
            if gen & 1 == 0 && gen == snap.inner.generation {
                return (snap, gen);
            }
            drop(snap);
            std::thread::yield_now();
        }
    }

    /// Takes the maintainers' mutex (resize, scrub, audits, crash hooks).
    pub(crate) fn maintenance_lock(&self) -> MutexGuard<'_, ()> {
        #[cfg(debug_assertions)]
        ON_READ_PATH.with(|f| {
            debug_assert!(!f.get(), "maintenance lock taken on the read path")
        });
        obs::count(obs::Counter::MaintenanceLock);
        self.maintenance.lock()
    }
    /// Creates an empty table. Panics on backend allocation failure;
    /// fallible construction (pool files) is [`Hdnh::try_new`].
    pub fn new(params: HdnhParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("table allocation failed: {e}"))
    }

    /// Creates an empty table, surfacing backend (pool-file) failures as
    /// typed errors instead of panicking.
    pub fn try_new(params: HdnhParams) -> Result<Self, HdnhError> {
        params.validate();
        let bps = params.segment_bytes / BUCKET_BYTES;
        let bottom_segments = params.initial_bottom_segments;
        let top_segments = bottom_segments * 2;
        let top = Level::try_new(top_segments, bps, &params.nvm)?;
        let bottom = Level::try_new(bottom_segments, bps, &params.nvm)?;
        let ocf_top = Ocf::new(top.n_buckets(), SLOTS_PER_BUCKET);
        let ocf_bottom = Ocf::new(bottom.n_buckets(), SLOTS_PER_BUCKET);
        let meta =
            Meta::try_create(&params.nvm, top_segments, bottom_segments, params.segment_bytes)?;
        let hot = params
            .enable_hot_table
            .then(|| Arc::new(Self::make_hot(&params, top.n_slots() + bottom.n_slots())));
        let sync = (params.sync_mode == SyncMode::Background && params.enable_hot_table)
            .then(|| SyncWriter::new(params.background_writers));
        let vlog = Arc::new(Vlog::new(params.nvm.clone(), params.vlog_segment_bytes));
        Ok(Self::assemble(
            params,
            meta,
            Inner {
                generation: 0,
                top,
                bottom,
                ocf_top: Arc::new(ocf_top),
                ocf_bottom: Arc::new(ocf_bottom),
                hot,
            },
            sync,
            vlog,
        ))
    }

    /// Assembles a table from recovered parts (see [`crate::recovery`]).
    pub(crate) fn assemble(
        params: HdnhParams,
        meta: Meta,
        inner: Inner,
        sync: Option<SyncWriter>,
        vlog: Arc<Vlog>,
    ) -> Self {
        let generation = inner.generation;
        Hdnh {
            params,
            meta,
            current: AtomicPtr::new(Box::into_raw(Box::new(inner))),
            maintenance: Mutex::new(()),
            pending_new_top: Mutex::new(None),
            count: AtomicUsize::new(0),
            generation: AtomicU64::new(generation),
            relocations: AtomicU64::new(0),
            resizes: AtomicUsize::new(0),
            sync,
            vlog,
        }
    }

    pub(crate) fn make_hot(params: &HdnhParams, nv_slots: usize) -> HotTable {
        let hot_slots =
            ((nv_slots as f64 * params.hot_capacity_ratio) as usize).max(params.hot_slots_per_bucket * 2);
        HotTable::new(hot_slots, params.hot_slots_per_bucket, params.hot_policy)
    }

    /// The configuration in force.
    pub fn params(&self) -> &HdnhParams {
        &self.params
    }

    /// How many resizes have completed.
    pub fn resize_count(&self) -> usize {
        self.resizes.load(Ordering::Relaxed)
    }

    /// Aggregated media counters across the table's NVM regions.
    pub fn nvm_stats(&self) -> StatsSnapshot {
        let snap = self.pinned();
        let inner = snap.inner;
        let mut acc = StatsSnapshot::default();
        let mut snaps = vec![
            self.meta.region().stats().snapshot(),
            inner.top.region().stats().snapshot(),
            inner.bottom.region().stats().snapshot(),
        ];
        for (_, region) in self.vlog.regions() {
            snaps.push(region.stats().snapshot());
        }
        for snap in snaps {
            acc.reads += snap.reads;
            acc.read_bytes += snap.read_bytes;
            acc.read_blocks += snap.read_blocks;
            acc.writes += snap.writes;
            acc.write_bytes += snap.write_bytes;
            acc.write_lines += snap.write_lines;
            acc.flushes += snap.flushes;
            acc.fences += snap.fences;
        }
        acc
    }

    /// Handle to the hot table (None when disabled).
    pub fn hot_table(&self) -> Option<Arc<HotTable>> {
        self.pinned().inner.hot.clone()
    }

    /// A sticky flush-path I/O fault, if the file backend has recorded
    /// one (a failed `msync` on the fence path). `None` on the heap
    /// backend or while the pool is healthy. Callers that acknowledge
    /// durability (the RESP server) check this before acking.
    pub fn io_fault(&self) -> Option<HdnhError> {
        self.params
            .nvm
            .backend
            .pool()
            .and_then(|p| p.fault())
            .map(HdnhError::from)
    }

    /// Which storage backend holds the NVM regions: `"pool"` for the
    /// mmap-backed file pool, `"heap"` for the in-process simulator.
    /// Operational surfaces (`INFO`, `/varz`) report this so an operator
    /// can tell a durable deployment from a volatile one at a glance.
    pub fn backend_kind(&self) -> &'static str {
        if self.params.nvm.backend.pool().is_some() {
            "pool"
        } else {
            "heap"
        }
    }

    /// Paths of every pool file currently reachable from the table
    /// (meta + live levels + any in-flight resize target). Empty on the
    /// heap backend. Used by the orphan sweep after recovery.
    pub fn region_file_paths(&self) -> Vec<std::path::PathBuf> {
        let _m = self.maintenance_lock();
        self.region_file_paths_locked()
    }

    /// [`region_file_paths`](Self::region_file_paths) body for callers that
    /// already hold the maintenance lock (the lock is not re-entrant).
    pub(crate) fn region_file_paths_locked(&self) -> Vec<std::path::PathBuf> {
        let snap = self.pinned();
        let inner = snap.inner;
        let mut out = Vec::new();
        for region in [self.meta.region(), inner.top.region(), inner.bottom.region()] {
            if let Some(p) = region.file_path() {
                out.push(p.to_path_buf());
            }
        }
        for (_, region) in self.vlog.regions() {
            if let Some(p) = region.file_path() {
                out.push(p.to_path_buf());
            }
        }
        if let Some((level, _)) = self.pending_new_top.lock().as_ref() {
            if let Some(p) = level.region().file_path() {
                out.push(p.to_path_buf());
            }
        }
        out
    }

    /// `msync(MS_SYNC)`+`fsync` every region reachable from the table
    /// without consuming it (pool creation, checkpoint-style callers).
    /// No-op on the heap backend.
    pub fn sync_regions_to_disk(&self) -> Result<(), HdnhError> {
        let _m = self.maintenance_lock();
        self.sync_regions_to_disk_locked()
    }

    /// [`sync_regions_to_disk`](Self::sync_regions_to_disk) body for
    /// callers that already hold the maintenance lock.
    pub(crate) fn sync_regions_to_disk_locked(&self) -> Result<(), HdnhError> {
        let snap = self.pinned();
        let inner = snap.inner;
        for region in [self.meta.region(), inner.top.region(), inner.bottom.region()] {
            region.sync_to_disk().map_err(HdnhError::from)?;
        }
        for (_, region) in self.vlog.regions() {
            region.sync_to_disk().map_err(HdnhError::from)?;
        }
        if let Some((level, _)) = self.pending_new_top.lock().as_ref() {
            level.region().sync_to_disk().map_err(HdnhError::from)?;
        }
        Ok(())
    }

    /// Runs `f` with the maintenance lock held and writers excluded: the
    /// generation is made odd and the epoch drained, so no mutator is
    /// mid-operation while `f` runs. Readers keep running throughout (the
    /// lock-free read path never touches the generation). The snapshot
    /// machinery uses this to get a single crash-consistent point in time.
    pub(crate) fn with_writers_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        let _m = self.maintenance_lock();
        let gen = self.generation.load(Ordering::SeqCst);
        self.generation.store(gen + 1, Ordering::SeqCst);
        let _pause = GenRestore {
            gen: &self.generation,
            value: gen,
            armed: true,
        };
        epoch::drain();
        f()
    }

    /// Number of bottom-level buckets (the rehash cursor range; exposed for
    /// crash-point enumeration in tests and tools).
    pub fn meta_bottom_buckets(&self) -> usize {
        self.pinned().inner.bottom.n_buckets()
    }

    /// Full-table audit of invariant I2: for every slot, the OCF entry's
    /// valid bit must equal the persisted bitmap bit, and a valid entry's
    /// fingerprint must match the stored key's. Also verifies that `len()`
    /// equals the number of valid slots and that no key appears twice.
    /// Pauses writers (odd generation + epoch drain) for the scan; readers
    /// keep running. Intended for tests and tooling. Returns the number of
    /// live records on success, or the first failing invariant as a typed
    /// [`HdnhError::Integrity`].
    pub fn verify_integrity(&self) -> Result<usize, HdnhError> {
        let (reports, live) = self.verify_integrity_report();
        match reports.into_iter().find(|r| !r.ok) {
            Some(r) => Err(HdnhError::Integrity {
                invariant: r.name,
                violations: r.violations,
            }),
            None => Ok(live),
        }
    }

    /// Per-invariant variant of [`verify_integrity`]: audits every named
    /// invariant independently (one failing check does not hide the others)
    /// and returns the reports plus the scanned live-record count.
    ///
    /// Invariants:
    /// * `no-locks-at-rest` — no OCF slot is BUSY while the table is idle.
    /// * `ocf-bitmap-agreement` — every OCF valid bit equals the persisted
    ///   bitmap bit (I2).
    /// * `fingerprint-match` — every valid OCF entry carries the stored
    ///   key's fingerprint.
    /// * `no-duplicate-keys` — no key is bitmap-valid in two slots (the
    ///   update-fallback double-copy window must have been repaired).
    /// * `hot-consistency` — a hot-table hit for a live key returns the
    ///   authoritative NVM value.
    /// * `checksum-match` — every bitmap-valid record's bytes match the
    ///   7-bit checksum committed with its valid bit (media integrity).
    /// * `vlog-pointer-valid` — every spill-flagged slot's value bytes
    ///   decode to a pointer that resolves to a CRC-valid value-log record
    ///   carrying the slot's key.
    /// * `count-consistency` — `len()` equals the number of valid slots.
    /// * `meta-quiescent` — the metadata block is stable (no resize state,
    ///   no rehash cursor) and its geometry matches the live levels.
    pub fn verify_integrity_report(&self) -> (Vec<InvariantReport>, usize) {
        /// Cap per invariant so a badly corrupted table stays readable.
        const MAX_VIOLATIONS: usize = 8;
        fn push(v: &mut Vec<String>, msg: String) {
            if v.len() < MAX_VIOLATIONS {
                v.push(msg);
            }
        }
        let _m = self.maintenance_lock();
        // Writer pause: publish an odd generation and drain the epoch so no
        // writer is mid-operation during the scan. Readers keep running —
        // the scan is read-only and reader-side corruption repairs defer
        // themselves while the generation is odd.
        let gen = self.generation.load(Ordering::SeqCst);
        self.generation.store(gen + 1, Ordering::SeqCst);
        let _pause = GenRestore {
            gen: &self.generation,
            value: gen,
            armed: true,
        };
        epoch::drain();
        // Safety: the maintenance lock is held — the pointer cannot swap.
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        let mut locks = Vec::new();
        let mut agree = Vec::new();
        let mut fps = Vec::new();
        let mut dups = Vec::new();
        let mut hots = Vec::new();
        let mut cks = Vec::new();
        let mut vlogs = Vec::new();
        let mut counts = Vec::new();
        let mut metas = Vec::new();
        let mut live = 0usize;
        let mut seen = std::collections::HashSet::new();
        for li in 0..2 {
            let (level, ocf) = inner.level(li);
            for bucket in 0..level.n_buckets() {
                let header = level.load_header(bucket);
                for slot in 0..SLOTS_PER_BUCKET {
                    let e = ocf.load(bucket, slot);
                    let nv_valid = header & (1 << slot) != 0;
                    if ocf::is_busy(e) {
                        push(&mut locks, format!("slot L{li}/{bucket}/{slot} locked at rest"));
                    }
                    if ocf::is_valid(e) != nv_valid {
                        push(
                            &mut agree,
                            format!(
                                "OCF/bitmap disagree at L{li}/{bucket}/{slot}: ocf={} nv={}",
                                ocf::is_valid(e),
                                nv_valid
                            ),
                        );
                    }
                    if nv_valid {
                        let rec = level.read_record(bucket, slot);
                        if !slot_checksum_ok(header, slot, &rec) {
                            push(
                                &mut cks,
                                format!("checksum mismatch at L{li}/{bucket}/{slot}"),
                            );
                        }
                        if header_slot_spilled(header, slot) {
                            let resolves = VlogPtr::from_value(&rec.value)
                                .is_some_and(|ptr| self.vlog.verify(&ptr, &rec.key));
                            if !resolves {
                                push(
                                    &mut vlogs,
                                    format!(
                                        "spill pointer at L{li}/{bucket}/{slot} does not resolve \
                                         to a valid log record"
                                    ),
                                );
                            }
                        }
                        let h = KeyHashes::of(&rec.key);
                        if self.params.enable_ocf && ocf::fp(e) != h.fp {
                            push(&mut fps, format!("fingerprint mismatch at L{li}/{bucket}/{slot}"));
                        }
                        if !seen.insert(rec.key) {
                            push(&mut dups, format!("duplicate key at L{li}/{bucket}/{slot}"));
                        }
                        if let Some(hot) = &inner.hot {
                            if let Some(v) = hot.search(&rec.key, h.h1, h.h2, h.fp) {
                                if v != rec.value {
                                    push(
                                        &mut hots,
                                        format!(
                                            "hot table stale at L{li}/{bucket}/{slot}: cached {} nvm {}",
                                            v.as_u64(),
                                            rec.value.as_u64()
                                        ),
                                    );
                                }
                            }
                        }
                        live += 1;
                    }
                }
            }
        }
        if live != self.len() {
            push(&mut counts, format!("count drift: scanned {live}, len() {}", self.len()));
        }
        if self.meta.state() != ResizeState::Stable {
            push(&mut metas, format!("resize state {:?} at rest", self.meta.state()));
        }
        if let Some(cursor) = self.meta.rehash_progress() {
            push(&mut metas, format!("dangling rehash cursor {cursor}"));
        }
        if self.meta.top_segments() != inner.top.n_segments()
            || self.meta.bottom_segments() != inner.bottom.n_segments()
        {
            push(
                &mut metas,
                format!(
                    "meta geometry {}/{} != live levels {}/{}",
                    self.meta.top_segments(),
                    self.meta.bottom_segments(),
                    inner.top.n_segments(),
                    inner.bottom.n_segments()
                ),
            );
        }
        if self.pending_new_top.lock().is_some() {
            push(&mut metas, "in-flight resize level leaked past quiescence".into());
        }
        let mk = |name: &'static str, violations: Vec<String>| InvariantReport {
            name,
            ok: violations.is_empty(),
            violations,
        };
        (
            vec![
                mk("no-locks-at-rest", locks),
                mk("ocf-bitmap-agreement", agree),
                mk("fingerprint-match", fps),
                mk("no-duplicate-keys", dups),
                mk("hot-consistency", hots),
                mk("checksum-match", cks),
                mk("vlog-pointer-valid", vlogs),
                mk("count-consistency", counts),
                mk("meta-quiescent", metas),
            ],
            live,
        )
    }

    /// On-demand media scrub (DESIGN.md §10): walks every live slot of both
    /// levels, re-verifies each record against the checksum committed with
    /// its valid bit, and handles every mismatch — rebuilt in place when the
    /// DRAM hot table still holds a clean copy (and the OCF fingerprint
    /// vouches for the damaged record's key bytes), quarantined otherwise.
    /// Holds only the maintenance mutex: readers *and writers* keep running,
    /// because every repair goes through the per-slot lock protocol
    /// ([`handle_corruption`](Self::handle_corruption)). After it returns,
    /// [`verify_integrity_report`](Hdnh::verify_integrity_report) is clean
    /// with respect to `checksum-match`.
    pub fn scrub(&self) -> ScrubReport {
        let span = obs::phase_enter(obs::Phase::Scrub);
        let _m = self.maintenance_lock();
        // Safety: the maintenance lock is held — the pointer cannot swap.
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        let mut report = ScrubReport::default();
        for li in 0..2 {
            let (level, ocf) = inner.level(li);
            for bucket in 0..level.n_buckets() {
                for slot in 0..SLOTS_PER_BUCKET {
                    let header = level.load_header(bucket);
                    if !header_slot_valid(header, slot) {
                        continue;
                    }
                    report.scanned += 1;
                    let rec = level.read_record(bucket, slot);
                    if slot_checksum_ok(header, slot, &rec) {
                        // The slot's own bytes are clean; a spill-flagged
                        // slot must additionally resolve to a CRC-valid log
                        // record (the damage may live in the value log).
                        if header_slot_spilled(header, slot) {
                            let resolves = VlogPtr::from_value(&rec.value)
                                .is_some_and(|ptr| self.vlog.verify(&ptr, &rec.key));
                            if !resolves {
                                if let Some(err) =
                                    self.quarantine_dangling_pointer(inner, li, bucket, slot)
                                {
                                    report.detected += 1;
                                    report.quarantined += 1;
                                    if report.errors.len() < ScrubReport::ERRORS_CAP {
                                        report.errors.push(err);
                                    }
                                }
                            }
                        }
                        continue;
                    }
                    let entry = ocf.load(bucket, slot);
                    // A mismatch seen while a writer holds the slot resolves
                    // under the slot lock: `handle_corruption` re-verifies
                    // and reports `None` (transient or superseded — media is
                    // fine) when the writer superseded it.
                    if let Some(err) = self.handle_corruption(inner, li, bucket, slot, entry) {
                        report.detected += 1;
                        if let HdnhError::Corruption { outcome, .. } = &err {
                            match outcome {
                                CorruptionOutcome::Repaired => report.repaired += 1,
                                CorruptionOutcome::Quarantined => report.quarantined += 1,
                            }
                        }
                        if report.errors.len() < ScrubReport::ERRORS_CAP {
                            report.errors.push(err);
                        }
                    }
                }
            }
        }
        obs::phase_record(obs::Phase::Scrub, span, report.scanned as u64);
        report
    }

    /// Fault-injection hook: XORs `mask` into byte `byte` (0-based within
    /// the 31-byte record) of `key`'s persisted record, bypassing the write
    /// path — simulating in-place media decay. Returns `None` when the key
    /// has no live NVM slot, otherwise whether the damage is *detectable*
    /// (the 7-bit checksum admits a 1/128 false-accept; deterministic tests
    /// must check this and pick a different mask on collision).
    ///
    /// Test/diagnostics support only — not part of the stable API.
    #[doc(hidden)]
    pub fn corrupt_record_for_test(&self, key: &Key, byte: usize, mask: u8) -> Option<bool> {
        let _m = self.maintenance_lock();
        // Safety: the maintenance lock is held — the pointer cannot swap.
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        for li in 0..2 {
            let (level, _) = inner.level(li);
            for bucket in 0..level.n_buckets() {
                let header = level.load_header(bucket);
                for slot in 0..SLOTS_PER_BUCKET {
                    if header_slot_valid(header, slot)
                        && level.read_record(bucket, slot).key == *key
                    {
                        level.region().corrupt(level.slot_off(bucket, slot) + byte, &[mask]);
                        let damaged = level.read_record(bucket, slot);
                        return Some(!slot_checksum_ok(header, slot, &damaged));
                    }
                }
            }
        }
        None
    }

    /// DRAM footprint of the OCF in bytes.
    pub fn ocf_footprint_bytes(&self) -> usize {
        let snap = self.pinned();
        snap.inner.ocf_top.footprint_bytes() + snap.inner.ocf_bottom.footprint_bytes()
    }

    // =================================================================
    // Probing
    // =================================================================

    /// Candidate buckets probed per level (4, or 2 in the 1-choice
    /// ablation).
    #[inline]
    fn n_candidates(&self) -> usize {
        if self.params.two_choice_segments {
            CANDIDATES_FULL
        } else {
            CANDIDATES_ONE_CHOICE
        }
    }

    /// Searches both levels; returns the located record. `writer` marks a
    /// generation-validated writer probe (see the corruption gate below).
    fn find(&self, inner: &Inner, key: &Key, h: &KeyHashes, writer: bool) -> Option<Located> {
        let mut backoff = Backoff::new();
        for li in 0..2 {
            let (level, ocf) = inner.level(li);
            for bucket in level.candidates(h).into_iter().take(self.n_candidates()) {
                'slot: for slot in 0..SLOTS_PER_BUCKET {
                    loop {
                        let e = ocf.load(bucket, slot);
                        if !ocf::is_valid(e) && !ocf::is_busy(e) {
                            continue 'slot;
                        }
                        if ocf::is_busy(e) {
                            // A writer may be materialising this very key;
                            // wait for it to settle.
                            backoff.wait();
                            continue;
                        }
                        // The OCF fingerprint filter (§3.2): a mismatch
                        // proves the slot cannot hold the key — no NVM read.
                        // With the filter disabled (ablation) every valid
                        // slot costs a media read, like Level hashing.
                        if self.params.enable_ocf && ocf::fp(e) != h.fp {
                            obs::count(obs::Counter::OcfNegativeShortCircuit);
                            continue 'slot;
                        }
                        let rec = level.read_record(bucket, slot);
                        // Header load is uncharged: the 256 B media block
                        // fetched for the record read already holds it.
                        let header = level.load_header_cached(bucket);
                        if !ocf.revalidate(bucket, slot, e) {
                            obs::count(obs::Counter::SeqlockReadRetry);
                            continue; // concurrent writer: retry this slot
                        }
                        // The version was stable across both loads, so a
                        // checksum mismatch cannot be a racing writer — it
                        // is media damage. Never serve the bytes (§ media
                        // errors, DESIGN.md §10): repair or quarantine,
                        // then treat the slot as a miss.
                        if header_slot_valid(header, slot) && !slot_checksum_ok(header, slot, &rec)
                        {
                            // Repair gate: a reader on a snapshot whose
                            // generation no longer matches may be racing a
                            // resize migration or an integrity pause —
                            // mutating the old levels then could lose the
                            // repaired record or corrupt the audit. Defer
                            // (miss this slot); a later probe on the fresh
                            // snapshot repairs it. Validated writers are
                            // always pre-drain (the maintainer waits on
                            // their pin), so they repair unconditionally.
                            if !writer
                                && self.generation.load(Ordering::SeqCst) != inner.generation
                            {
                                continue 'slot;
                            }
                            self.handle_corruption(inner, li, bucket, slot, e);
                            continue; // re-probe: repaired slots re-match
                        }
                        if rec.key == *key {
                            if self.params.enable_ocf {
                                obs::count(obs::Counter::OcfTrueMatch);
                            }
                            return Some(Located {
                                li,
                                bucket,
                                slot,
                                entry: e,
                                value: rec.value,
                            });
                        }
                        // Fingerprint matched but the key differs: the NVM
                        // read above was wasted (the 1/256 false-positive
                        // cost the paper budgets for).
                        if self.params.enable_ocf {
                            obs::count(obs::Counter::OcfFalsePositive);
                        }
                        continue 'slot;
                    }
                }
            }
        }
        None
    }

    /// Searches and write-locks the record's slot. `Ok(Some(..))` holds the
    /// lock; the pre-lock entry is inside.
    fn find_and_lock(&self, inner: &Inner, key: &Key, h: &KeyHashes) -> Option<Located> {
        let mut backoff = Backoff::new();
        loop {
            let loc = self.find(inner, key, h, true)?;
            let (_, ocf) = inner.level(loc.li);
            match ocf.try_lock_at(loc.bucket, loc.slot, loc.entry) {
                LockOutcome::Locked(_) => return Some(loc),
                // Entry changed: the record may have moved or been deleted;
                // rescan from scratch.
                LockOutcome::Contended | LockOutcome::Mismatch => {
                    backoff.wait();
                    continue;
                }
            }
        }
    }

    /// Handles a seqlock-stable checksum mismatch at `(li, bucket, slot)`:
    /// the persisted record no longer matches the checksum committed with
    /// it. Locks the slot, re-verifies under the lock (a transient device
    /// read error heals itself and needs no repair), then either rewrites
    /// the record from the clean DRAM hot-table copy (**repair**) or clears
    /// the valid bit so the damaged bytes can never be served again
    /// (**quarantine**). Returns what was done, or `None` when a concurrent
    /// writer superseded the damaged bytes first.
    ///
    /// Repair is gated on the OCF fingerprint — a DRAM-held witness of the
    /// true key — still matching the damaged record's key bytes: if the
    /// damage hit the key, the fingerprint disagrees with probability
    /// 255/256 and the slot is quarantined rather than rebuilt under a
    /// forged key.
    fn handle_corruption(
        &self,
        inner: &Inner,
        li: usize,
        bucket: usize,
        slot: usize,
        entry: u16,
    ) -> Option<HdnhError> {
        obs::count(obs::Counter::CorruptionDetected);
        let (level, ocf) = inner.level(li);
        let LockOutcome::Locked(pre) = ocf.try_lock_at(bucket, slot, entry) else {
            return None;
        };
        let rec = level.read_record(bucket, slot);
        let header = level.load_header_cached(bucket);
        if !header_slot_valid(header, slot) || slot_checksum_ok(header, slot, &rec) {
            ocf.abort(bucket, slot, pre);
            return None;
        }
        let h = KeyHashes::of(&rec.key);
        let hot_copy = inner.hot.as_ref().and_then(|hot| {
            (h.fp == ocf::fp(pre))
                .then(|| hot.search(&rec.key, h.h1, h.h2, h.fp))
                .flatten()
        });
        let outcome = if let Some(value) = hot_copy {
            let clean = Record::new(rec.key, value);
            // The hot table caches the slot's 15 value bytes verbatim —
            // for a spilled slot that is the packed value-log pointer — so
            // the repair must re-commit the *old header's* spill flag, not
            // re-derive it from the bytes.
            let spilled = header_slot_spilled(header, slot);
            level.write_record(bucket, slot, &clean);
            level.commit_slot_valid(bucket, slot, slot_meta(&clean, spilled));
            ocf.commit(bucket, slot, pre, true, h.fp);
            obs::count(obs::Counter::CorruptionRepaired);
            CorruptionOutcome::Repaired
        } else {
            level.commit_slot_invalid(bucket, slot);
            ocf.commit(bucket, slot, pre, false, 0);
            self.count.fetch_sub(1, Ordering::Relaxed);
            obs::count(obs::Counter::CorruptionQuarantined);
            CorruptionOutcome::Quarantined
        };
        Some(HdnhError::Corruption {
            level: li,
            bucket,
            slot,
            outcome,
        })
    }

    /// Quarantines a spill-flagged slot whose pointer no longer resolves to
    /// a CRC-valid log record carrying its key. The slot bytes themselves
    /// checksum clean — the damage lives in the value log — so there is
    /// nothing to repair from: the hot table caches the pointer, not the
    /// payload. Locks the slot, re-verifies under the lock (a concurrent
    /// overwrite or GC relocation may have superseded the stale pointer),
    /// then clears the valid bit. `None` when the slot healed.
    fn quarantine_dangling_pointer(
        &self,
        inner: &Inner,
        li: usize,
        bucket: usize,
        slot: usize,
    ) -> Option<HdnhError> {
        let (level, ocf) = inner.level(li);
        let entry = ocf.load(bucket, slot);
        let LockOutcome::Locked(pre) = ocf.try_lock_at(bucket, slot, entry) else {
            return None;
        };
        let header = level.load_header_cached(bucket);
        let rec = level.read_record(bucket, slot);
        let still_dangling = header_slot_valid(header, slot)
            && header_slot_spilled(header, slot)
            && !VlogPtr::from_value(&rec.value)
                .is_some_and(|ptr| self.vlog.verify(&ptr, &rec.key));
        if !still_dangling {
            ocf.abort(bucket, slot, pre);
            return None;
        }
        obs::count(obs::Counter::CorruptionDetected);
        if let Some(hot) = &inner.hot {
            let h = KeyHashes::of(&rec.key);
            hot.delete(&rec.key, h.h1, h.h2, h.fp);
        }
        level.commit_slot_invalid(bucket, slot);
        ocf.commit(bucket, slot, pre, false, 0);
        self.count.fetch_sub(1, Ordering::Relaxed);
        obs::count(obs::Counter::CorruptionQuarantined);
        Some(HdnhError::Corruption {
            level: li,
            bucket,
            slot,
            outcome: CorruptionOutcome::Quarantined,
        })
    }

    // =================================================================
    // Hot-table dispatch (synchronous write mechanism, §3.4)
    // =================================================================

    /// Starts the hot-table half of a write. Returns a waiter to invoke
    /// after the NVM half committed.
    fn begin_hot_write(&self, inner: &Inner, op: HotOp) -> HotWrite {
        match (&inner.hot, &self.sync) {
            (Some(hot), Some(pool)) => {
                fault::point("hot.dispatched");
                HotWrite::Pending(pool.dispatch(hot, op))
            }
            (Some(hot), None) => HotWrite::Inline(Arc::clone(hot), op),
            (None, _) => HotWrite::None,
        }
    }

    fn finish_hot_write(w: HotWrite) {
        match w {
            HotWrite::Pending(handle) => {
                fault::point("hot.wait_completed");
                handle.wait()
            }
            HotWrite::Inline(hot, op) => RAFL_RNG.with(|r| {
                let rng = &mut *r.borrow_mut();
                match op {
                    HotOp::Put { rec, h1, h2, fp } => hot.put(&rec, h1, h2, fp, rng),
                    HotOp::Delete { key, h1, h2, fp } => hot.delete(&key, h1, h2, fp),
                }
            }),
            HotWrite::None => {}
        }
    }

    // =================================================================
    // Public operations
    // =================================================================

    /// Point lookup (§3.5, figure 8): hot table → OCF fingerprints → NVM.
    /// Lock-free: one epoch pin and a generation validation; retries only
    /// across a concurrent resize. The error channel is reserved for future
    /// system-level failures — today's miss is `Ok(None)`.
    pub fn get(&self, key: &Key) -> Result<Option<Value>, HdnhError> {
        let t = obs::op_start();
        #[cfg(debug_assertions)]
        let _read_path = ReadPathGuard::enter();
        let out = self.get_inner(key);
        obs::op_record(obs::OpKind::Get, t);
        Ok(out)
    }

    fn get_inner(&self, key: &Key) -> Option<Value> {
        let h = KeyHashes::of(key);
        loop {
            let snap = self.pinned();
            let inner = snap.inner;
            if let Some(hot) = &inner.hot {
                if let Some(v) = hot.search(key, h.h1, h.h2, h.fp) {
                    return Some(v);
                }
            }
            let reloc0 = self.relocations.load(Ordering::SeqCst);
            let found = self.find(inner, key, &h, false);
            // Validate after the probe: an unchanged generation (or the
            // odd writer-exclusion value, under which nothing can commit)
            // proves the snapshot answered consistently. Otherwise a
            // resize swapped the levels mid-probe — retry on the fresh
            // snapshot.
            let now = self.generation.load(Ordering::SeqCst);
            if now != inner.generation && now != inner.generation + 1 {
                obs::count(obs::Counter::SnapshotRetry);
                continue;
            }
            let Some(loc) = found else {
                // A miss is only authoritative if no out-of-place update
                // moved a record mid-probe. Missing both copies requires
                // the new-slot read to precede the new commit and the
                // old-slot read to follow the old clear; the writer bumps
                // `relocations` strictly between those two stores, so this
                // re-load is guaranteed to observe it (the old-slot load
                // acquires the clearing release-store, which the bump is
                // sequenced before).
                if self.relocations.load(Ordering::SeqCst) != reloc0 {
                    obs::count(obs::Counter::SnapshotRetry);
                    continue;
                }
                return None;
            };
            // Cache-miss promotion: "the items can be inserted to the hot
            // table again when these items are searched next time" (§3.3).
            // Done under the slot's busy bit so it serializes with any
            // writer of this key: writers update the hot copy while holding
            // the same lock, so a promotion can never overwrite a newer hot
            // value with the stale one we just read. A failed lock means a
            // writer superseded the slot — its own hot write covers us.
            if let Some(hot) = &inner.hot {
                let (_, ocf) = inner.level(loc.li);
                if let LockOutcome::Locked(pre) = ocf.try_lock_at(loc.bucket, loc.slot, loc.entry)
                {
                    RAFL_RNG.with(|r| {
                        hot.put(
                            &Record::new(*key, loc.value),
                            h.h1,
                            h.h2,
                            h.fp,
                            &mut r.borrow_mut(),
                        )
                    });
                    ocf.abort(loc.bucket, loc.slot, pre);
                }
            }
            return Some(loc.value);
        }
    }

    /// Inserts a new record (figure 9). Reports
    /// [`HdnhError::DuplicateKey`] when the key is already present.
    pub fn insert(&self, key: &Key, value: &Value) -> Result<(), HdnhError> {
        let t = obs::op_start();
        let out = self.insert_inner(key, value, false);
        obs::op_record(obs::OpKind::Insert, t);
        out
    }

    /// Insert body. `spilled` marks the 15 value bytes as a packed
    /// value-log pointer (committed into the header's spill flag).
    pub(crate) fn insert_inner(
        &self,
        key: &Key,
        value: &Value,
        spilled: bool,
    ) -> Result<(), HdnhError> {
        let h = KeyHashes::of(key);
        let rec = Record::new(*key, *value);
        let ck = slot_meta(&rec, spilled);
        loop {
            let gen = {
                let (snap, gen) = self.pin_for_write();
                let inner = snap.inner;
                if self.find(inner, key, &h, true).is_some() {
                    return Err(HdnhError::DuplicateKey);
                }
                for li in 0..2 {
                    let (level, ocf) = inner.level(li);
                    for bucket in level.candidates(&h).into_iter().take(self.n_candidates()) {
                        for slot in 0..SLOTS_PER_BUCKET {
                            match ocf.try_lock_empty(bucket, slot) {
                                LockOutcome::Locked(pre) => {
                                    fault::point("insert.slot_locked");
                                    // (a) slot locked — overlap the hot-table
                                    // write with the NVM write.
                                    let hot = self.begin_hot_write(
                                        inner,
                                        HotOp::Put {
                                            rec,
                                            h1: h.h1,
                                            h2: h.h2,
                                            fp: h.fp,
                                        },
                                    );
                                    // (b) record persisted while invisible.
                                    level.write_record(bucket, slot, &rec);
                                    fault::point("insert.record_written");
                                    // (c) failure-atomic commit: valid bit
                                    // and record checksum in one store.
                                    level.commit_slot_valid(bucket, slot, ck);
                                    fault::point("insert.bitmap_committed");
                                    // The hot write must complete BEFORE the
                                    // OCF publish: the moment the slot is
                                    // visible, another writer can claim the
                                    // key and write its own hot copy — a hot
                                    // write finishing after publication could
                                    // overwrite that newer copy with ours.
                                    Self::finish_hot_write(hot);
                                    // (d) publish in DRAM, release lock.
                                    ocf.commit(bucket, slot, pre, true, h.fp);
                                    fault::point("insert.published");
                                    self.count.fetch_add(1, Ordering::Relaxed);
                                    return Ok(());
                                }
                                LockOutcome::Contended | LockOutcome::Mismatch => continue,
                            }
                        }
                    }
                }
                gen
            }; // pin dropped here: the resize drain must not wait on us
            // All eight candidate buckets full in both levels: grow.
            self.resize(gen)?;
        }
    }

    /// Replaces the value of an existing key (figure 10). Reports
    /// [`HdnhError::KeyNotFound`] when the key is absent.
    pub fn update(&self, key: &Key, value: &Value) -> Result<(), HdnhError> {
        let t = obs::op_start();
        let out = self.update_inner(key, value, false, None);
        obs::op_record(obs::OpKind::Update, t);
        // Overwriting a spilled value orphans its log entry.
        Self::tombstone_old(&self.vlog, out?);
        Ok(())
    }

    /// Update body. `spilled` marks the new value bytes as a packed
    /// value-log pointer. With `expect`, the update only proceeds if the
    /// old slot is spill-flagged *and* its value bytes equal `expect` —
    /// the guarded compare-and-relocate the value-log GC uses to move a
    /// live log entry without racing a concurrent overwrite (a mismatch
    /// means the entry became garbage; reported as `KeyNotFound`).
    /// Returns the replaced `(value, spilled)` pair so callers can
    /// tombstone a spilled old value's log entry.
    pub(crate) fn update_inner(
        &self,
        key: &Key,
        value: &Value,
        spilled: bool,
        expect: Option<&Value>,
    ) -> Result<(Value, bool), HdnhError> {
        let h = KeyHashes::of(key);
        let rec = Record::new(*key, *value);
        let ck = slot_meta(&rec, spilled);
        loop {
            let gen = {
                let (snap, gen) = self.pin_for_write();
                let inner = snap.inner;
                let Some(old) = self.find_and_lock(inner, key, &h) else {
                    return Err(HdnhError::KeyNotFound);
                };
                fault::point("update.old_locked");
                let (level, ocf) = inner.level(old.li);
                // Old header under the slot lock: stable, and the only
                // authoritative source of the old value's spill-ness.
                let old_header = level.load_header_cached(old.bucket);
                let old_spilled = header_slot_spilled(old_header, old.slot);
                if let Some(expect) = expect {
                    if !old_spilled || old.value != *expect {
                        ocf.abort(old.bucket, old.slot, old.entry);
                        return Err(HdnhError::KeyNotFound);
                    }
                }
                // Option-wrapped so exactly one arm below consumes the hot
                // write — and always BEFORE its OCF publish: once the new
                // slot is visible, another writer can claim the key, and a
                // hot write completing after that publication could clobber
                // the newer writer's hot copy with this (now stale) one.
                let mut hot = Some(self.begin_hot_write(
                    inner,
                    HotOp::Put {
                        rec,
                        h1: h.h1,
                        h2: h.h2,
                        fp: h.fp,
                    },
                ));
                // Preferred path: out-of-place within the same bucket, both
                // bitmap bits flipped in ONE atomic store (figure 10c).
                for ns in 0..SLOTS_PER_BUCKET {
                    if ns == old.slot {
                        continue;
                    }
                    if let LockOutcome::Locked(pre_new) = ocf.try_lock_empty(old.bucket, ns) {
                        level.write_record(old.bucket, ns, &rec);
                        fault::point("update.new_written");
                        Self::finish_hot_write(hot.take().expect("hot write consumed once"));
                        level.commit_slot_swap(old.bucket, old.slot, ns, ck);
                        fault::point("update.swap_committed");
                        ocf.commit(old.bucket, ns, pre_new, true, h.fp);
                        // Ordered between the two commits: a reader that
                        // missed the new slot (read before the line above)
                        // and the old slot (read after the line below)
                        // observes the bump and retries.
                        self.relocations.fetch_add(1, Ordering::SeqCst);
                        ocf.commit(old.bucket, old.slot, old.entry, false, 0);
                        fault::point("update.published");
                        return Ok((old.value, old_spilled));
                    }
                }
                // Fallback: place the new version in another candidate
                // bucket, then invalidate the old slot (two atomic commits;
                // recovery dedupes the window).
                for lj in 0..2 {
                    let (level2, ocf2) = inner.level(lj);
                    for bucket2 in level2.candidates(&h).into_iter().take(self.n_candidates()) {
                        if lj == old.li && bucket2 == old.bucket {
                            continue;
                        }
                        for ns in 0..SLOTS_PER_BUCKET {
                            if let LockOutcome::Locked(pre_new) = ocf2.try_lock_empty(bucket2, ns)
                            {
                                level2.write_record(bucket2, ns, &rec);
                                fault::point("update.fallback.new_written");
                                Self::finish_hot_write(
                                    hot.take().expect("hot write consumed once"),
                                );
                                level2.commit_slot_valid(bucket2, ns, ck);
                                // The double-copy window: both the old and
                                // the new version are bitmap-valid until the
                                // next commit; recovery dedupes it.
                                fault::point("update.fallback.new_committed");
                                ocf2.commit(bucket2, ns, pre_new, true, h.fp);
                                // Same ordering argument as the preferred
                                // path: bump strictly between publishing the
                                // new copy and retiring the old one.
                                self.relocations.fetch_add(1, Ordering::SeqCst);
                                level.commit_slot_invalid(old.bucket, old.slot);
                                fault::point("update.fallback.old_cleared");
                                ocf.commit(old.bucket, old.slot, old.entry, false, 0);
                                fault::point("update.fallback.published");
                                return Ok((old.value, old_spilled));
                            }
                        }
                    }
                }
                // Nowhere to put the new version: undo and grow.
                ocf.abort(old.bucket, old.slot, old.entry);
                // hot value == new value; NV still old.
                Self::finish_hot_write(hot.take().expect("hot write consumed once"));
                // The hot table now holds the new value while NVM holds the
                // old one — repair by deleting the cache entry before
                // resizing (the authoritative copy is re-promoted on the
                // next search).
                if let Some(hot) = &inner.hot {
                    hot.delete(key, h.h1, h.h2, h.fp);
                }
                gen
            }; // pin dropped here: the resize drain must not wait on us
            self.resize(gen)?;
        }
    }

    /// Removes a key. Returns `Ok(true)` if it was present. A spilled
    /// value's log entry is tombstoned for the compactor to reclaim.
    pub fn remove(&self, key: &Key) -> Result<bool, HdnhError> {
        let t = obs::op_start();
        let out = self.remove_inner(key);
        obs::op_record(obs::OpKind::Remove, t);
        match out? {
            Some(old) => {
                Self::tombstone_old(&self.vlog, old);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Remove body; returns the removed `(value, spilled)` pair (if the
    /// key was present) so callers can tombstone a spilled value's log
    /// entry.
    pub(crate) fn remove_inner(&self, key: &Key) -> Result<Option<(Value, bool)>, HdnhError> {
        let h = KeyHashes::of(key);
        let (snap, _gen) = self.pin_for_write();
        let inner = snap.inner;
        let Some(old) = self.find_and_lock(inner, key, &h) else {
            return Ok(None);
        };
        fault::point("remove.old_locked");
        let (level, ocf) = inner.level(old.li);
        let old_spilled = header_slot_spilled(level.load_header_cached(old.bucket), old.slot);
        let hot = self.begin_hot_write(
            inner,
            HotOp::Delete {
                key: *key,
                h1: h.h1,
                h2: h.h2,
                fp: h.fp,
            },
        );
        level.commit_slot_invalid(old.bucket, old.slot);
        fault::point("remove.bitmap_cleared");
        ocf.commit(old.bucket, old.slot, old.entry, false, 0);
        fault::point("remove.published");
        Self::finish_hot_write(hot);
        self.count.fetch_sub(1, Ordering::Relaxed);
        Ok(Some((old.value, old_spilled)))
    }

    // =================================================================
    // Variable-length values (DESIGN.md §17)
    // =================================================================

    /// Tombstones the log entry behind a replaced or removed slot value.
    fn tombstone_old(vlog: &Vlog, (old, old_spilled): (Value, bool)) {
        if old_spilled {
            if let Some(ptr) = VlogPtr::from_value(&old) {
                vlog.mark_garbage(&ptr);
            }
        }
    }

    /// Stores `payload` under `key` (insert semantics). Payloads up to the
    /// configured inline budget live in the slot's 15 value bytes — the
    /// paper-faithful fast path, unchanged in cost; larger ones are
    /// appended (and persisted) to the value log *first*, then the slot
    /// commits a packed pointer flagged by the header's spill bit, so a
    /// crash between the two leaves at worst an unreferenced log record.
    pub fn insert_bytes(&self, key: &Key, payload: &[u8]) -> Result<(), HdnhError> {
        if payload.len() <= self.params.vlog_inline_max {
            obs::count(obs::Counter::VlogInlineWrites);
            return self.insert_inner(key, &vlog::encode_inline(payload), false);
        }
        obs::count(obs::Counter::VlogSpillWrites);
        let ptr = self.vlog.append(key, payload)?;
        let out = self.insert_inner(key, &ptr.to_value(), true);
        if out.is_err() {
            // The appended record was never published: orphan it.
            self.vlog.mark_garbage(&ptr);
        }
        out
    }

    /// Replaces `key`'s value with `payload` (update semantics). The old
    /// value's log entry, if spilled, is tombstoned.
    pub fn update_bytes(&self, key: &Key, payload: &[u8]) -> Result<(), HdnhError> {
        if payload.len() <= self.params.vlog_inline_max {
            obs::count(obs::Counter::VlogInlineWrites);
            let old = self.update_inner(key, &vlog::encode_inline(payload), false, None)?;
            Self::tombstone_old(&self.vlog, old);
            return Ok(());
        }
        obs::count(obs::Counter::VlogSpillWrites);
        let ptr = self.vlog.append(key, payload)?;
        match self.update_inner(key, &ptr.to_value(), true, None) {
            Ok(old) => {
                Self::tombstone_old(&self.vlog, old);
                Ok(())
            }
            Err(e) => {
                self.vlog.mark_garbage(&ptr);
                Err(e)
            }
        }
    }

    /// Insert-or-replace in one call (the RESP `SET` semantics). Loops on
    /// the insert/update race instead of surfacing it to the caller.
    pub fn upsert_bytes(&self, key: &Key, payload: &[u8]) -> Result<(), HdnhError> {
        loop {
            match self.update_bytes(key, payload) {
                Err(HdnhError::KeyNotFound) => {}
                out => return out,
            }
            match self.insert_bytes(key, payload) {
                Err(HdnhError::DuplicateKey) => continue, // raced a writer
                out => return out,
            }
        }
    }

    /// Fetches `key`'s value as bytes. Inline values decode from the slot;
    /// spilled values are read (and CRC-verified) from the value log. A
    /// pointer into a segment the compactor retired mid-read re-probes the
    /// index — the relocated pointer is already published before a segment
    /// disappears — so readers never block on (or race destructively with)
    /// the GC.
    pub fn get_bytes(&self, key: &Key) -> Result<Option<Vec<u8>>, HdnhError> {
        loop {
            let Some(v) = self.get(key)? else { return Ok(None) };
            if let Some(ptr) = VlogPtr::from_value(&v) {
                match self.vlog.read(&ptr, key)? {
                    Some(payload) => return Ok(Some(payload)),
                    // Segment retired between the index probe and the log
                    // read: the GC already republished the pointer.
                    None => continue,
                }
            }
            return Ok(Some(match vlog::decode_inline(&v) {
                Some(p) => p.to_vec(),
                // Not written through the bytes API (a fixed 15-byte value
                // whose first byte exceeds the inline budget): surface the
                // raw slot bytes rather than guessing at an encoding.
                None => v.0.to_vec(),
            }));
        }
    }

    /// Handle to the value log (spilled-value storage).
    pub fn vlog(&self) -> &Arc<Vlog> {
        &self.vlog
    }

    /// Value-log occupancy and last-GC statistics.
    pub fn vlog_stats(&self) -> vlog::VlogStats {
        self.vlog.stats()
    }

    /// Recovery pass: walks every live spill-flagged slot, verifies its
    /// pointer resolves to a CRC-valid log record, quarantines danglers
    /// (a pointer published without its log record is a torn pre-ack
    /// write — §15's model never acks it), and installs per-segment
    /// live-byte accounting into the value log. Runs once, before the
    /// recovered table serves traffic. Returns the quarantined count.
    pub(crate) fn rebuild_vlog_index(&self) -> usize {
        use std::collections::BTreeMap;
        let _m = self.maintenance_lock();
        // Safety: the maintenance lock is held — the pointer cannot swap.
        let inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        let mut live: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        let mut quarantined = 0usize;
        for li in 0..2 {
            let (level, ocf) = inner.level(li);
            for bucket in 0..level.n_buckets() {
                let header = level.load_header(bucket);
                for slot in 0..SLOTS_PER_BUCKET {
                    if !header_slot_valid(header, slot) || !header_slot_spilled(header, slot) {
                        continue;
                    }
                    let rec = level.read_record(bucket, slot);
                    let resolved = VlogPtr::from_value(&rec.value)
                        .filter(|ptr| self.vlog.verify(ptr, &rec.key));
                    match resolved {
                        Some(ptr) => {
                            let fp = vlog::segment::footprint(ptr.len as usize) as u64;
                            let end = ptr.offset as u64 + fp;
                            let e = live.entry(ptr.segment).or_insert((0, 0));
                            e.0 += fp;
                            e.1 = e.1.max(end);
                        }
                        None => {
                            obs::count(obs::Counter::CorruptionDetected);
                            obs::count(obs::Counter::CorruptionQuarantined);
                            if let Some(hot) = &inner.hot {
                                let h = KeyHashes::of(&rec.key);
                                hot.delete(&rec.key, h.h1, h.h2, h.fp);
                            }
                            level.commit_slot_invalid(bucket, slot);
                            ocf.install(bucket, slot, false, 0);
                            self.count.fetch_sub(1, Ordering::Relaxed);
                            quarantined += 1;
                        }
                    }
                }
            }
        }
        self.vlog.finish_recovery(&live);
        quarantined
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupied fraction of all NVM slots.
    pub fn load_factor(&self) -> f64 {
        let total = self.pinned().inner.total_slots();
        self.len() as f64 / total as f64
    }

    pub(crate) fn set_count(&self, n: usize) {
        self.count.store(n, Ordering::Relaxed);
    }

    // =================================================================
    // Resizing (§3.7)
    // =================================================================

    fn resize(&self, observed_gen: u64) -> Result<(), HdnhError> {
        let _m = self.maintenance_lock();
        if self.generation.load(Ordering::SeqCst) != observed_gen {
            return Ok(()); // someone else already grew the table
        }
        // Writer-exclusion phase: publish the odd generation, then drain
        // the epoch. New writers spin in `pin_for_write`; in-flight pinned
        // operations finish before `drain` returns, so migration reads a
        // quiescent pair of levels. (Readers pinned during migration keep
        // running — the old levels are only ever *copied from*.)
        self.generation.store(observed_gen + 1, Ordering::SeqCst);
        let mut unwind = GenRestore {
            gen: &self.generation,
            value: observed_gen,
            armed: true,
        };
        epoch::drain();
        // Safety: the maintenance lock is held — no other thread swaps or
        // frees the pointer.
        let old: &Inner = unsafe { &*self.current.load(Ordering::SeqCst) };
        // The retiring bottom level's pool file becomes garbage once the
        // swap publishes; remember it so it can be unlinked afterwards.
        let retired_file = old.bottom.region().file_path().map(|p| p.to_path_buf());
        let next = self.perform_resize(old, observed_gen + 2)?;
        let old_ptr = self
            .current
            .swap(Box::into_raw(Box::new(next)), Ordering::SeqCst);
        unwind.armed = false;
        self.generation.store(observed_gen + 2, Ordering::SeqCst);
        self.resizes.fetch_add(1, Ordering::Relaxed);
        // The migrated level is now reachable from `current`; stop
        // surfacing it to `into_pool` separately.
        *self.pending_new_top.lock() = None;
        // Wait out readers still probing the old snapshot, then free it.
        epoch::drain();
        // Safety: the pointer was unpublished above and every pin that
        // could have loaded it has since been observed quiescent.
        drop(unsafe { Box::from_raw(old_ptr) });
        // Safe to unlink only now: the post-swap Stable state is persisted,
        // so no recovery will look for this region. Best-effort — a leaked
        // file is caught by the orphan sweep on the next pool open.
        if let Some(path) = retired_file {
            let _ = std::fs::remove_file(&path);
            hdnh_nvm::shadow::remove_sidecar(&path);
        }
        Ok(())
    }

    /// Full resize under the maintenance lock: builds and returns the
    /// successor snapshot (the caller publishes it). A pool-file
    /// allocation failure rolls the persisted state machine back to
    /// `Stable` (nothing was migrated yet) and surfaces as `Io`.
    fn perform_resize(&self, old: &Inner, new_generation: u64) -> Result<Inner, HdnhError> {
        let bps = self.params.segment_bytes / BUCKET_BYTES;
        let new_top_segments = old.top.n_segments() * 2;

        // Phase 1 — "apply for a new level" (level number 2). The planned
        // size is persisted first so recovery can always re-allocate.
        let span = obs::phase_enter(obs::Phase::ResizeAllocate);
        self.meta.set_new_top_segments(new_top_segments);
        fault::point("resize.planned");
        self.meta.set_state(ResizeState::Allocating);
        fault::point("resize.allocating");
        let new_top = match Level::try_new(new_top_segments, bps, &self.params.nvm) {
            Ok(l) => l,
            Err(e) => {
                self.meta.set_state(ResizeState::Stable);
                return Err(e);
            }
        };
        let new_ocf = Ocf::new(new_top.n_buckets(), SLOTS_PER_BUCKET);
        // Keep the new level reachable from the table while migration runs:
        // a crash (unwind) anywhere before the pointer swap must surface
        // its region to `into_pool`, exactly as a real NVM allocation would
        // survive. `resize` clears this after publishing the snapshot.
        *self.pending_new_top.lock() = Some((new_top.clone(), Ocf::new(0, SLOTS_PER_BUCKET)));
        fault::point("resize.allocated");
        obs::phase_record(obs::Phase::ResizeAllocate, span, new_top.n_slots() as u64);

        // Phase 2 — rehash bottom-level items into the new top (level 3).
        let span = obs::phase_enter(obs::Phase::ResizeRehash);
        self.meta.set_state(ResizeState::Rehashing);
        self.meta.set_rehash_progress(Some(0));
        fault::point("resize.rehashing");
        let (moved, dropped) = Self::migrate(
            &old.bottom,
            &new_top,
            &new_ocf,
            0,
            false,
            &self.meta,
            self.n_candidates(),
        );
        if dropped > 0 {
            // Quarantined-by-omission records leave the table with the level.
            self.count.fetch_sub(dropped, Ordering::Relaxed);
        }
        obs::phase_record(obs::Phase::ResizeRehash, span, moved as u64);

        // Phase 3 — swap levels, publish geometry, return to stable.
        let span = obs::phase_enter(obs::Phase::ResizeSwap);
        let next = self.finalize_swap(old, new_top, new_ocf, new_generation);
        obs::phase_record(obs::Phase::ResizeSwap, span, 0);
        Ok(next)
    }

    /// Moves every valid record in `from` buckets `[start..]` into `to`,
    /// updating the persisted progress cursor per bucket. With `dup_check`
    /// (recovery resume), records already present in `to` are skipped.
    /// Every record is checksum-verified before it moves: damaged slots
    /// are dropped (the old level is discarded after the swap, so omission
    /// quarantines them) and counted in the second return value. Returns
    /// `(moved, dropped)`.
    pub(crate) fn migrate(
        from: &Level,
        to: &Level,
        to_ocf: &Ocf,
        start: usize,
        dup_check: bool,
        meta: &Meta,
        candidates: usize,
    ) -> (usize, usize) {
        let mut moved = 0usize;
        let mut dropped = 0usize;
        for b in start..from.n_buckets() {
            let (header, recs) = from.read_bucket(b);
            for (slot, rec) in recs.iter().enumerate() {
                if header & (1 << slot) == 0 {
                    continue;
                }
                if !slot_checksum_ok(header, slot, rec) {
                    // Never propagate damaged bytes into the new level.
                    obs::count(obs::Counter::CorruptionDetected);
                    obs::count(obs::Counter::CorruptionQuarantined);
                    dropped += 1;
                    continue;
                }
                let h = KeyHashes::of(&rec.key);
                if dup_check && Self::find_in_level(to, to_ocf, &rec.key, &h, candidates).is_some() {
                    continue;
                }
                // Carry the source header's spill flag — the value bytes of
                // a spilled record are a value-log pointer and must stay
                // flagged as one in the new level.
                Self::insert_into_level(
                    to,
                    to_ocf,
                    rec,
                    &h,
                    candidates,
                    header_slot_spilled(header, slot),
                );
                moved += 1;
                fault::point("resize.record_migrated");
            }
            // Paper: record the migrated bucket index so a crash resumes at
            // the next bucket.
            meta.set_rehash_progress(Some(b + 1));
            fault::point("resize.bucket_migrated");
        }
        (moved, dropped)
    }

    /// Single-threaded insert used by resize/recovery (same persistence
    /// ordering as the concurrent path).
    pub(crate) fn insert_into_level(
        level: &Level,
        ocf: &Ocf,
        rec: &Record,
        h: &KeyHashes,
        candidates: usize,
        spilled: bool,
    ) {
        for bucket in level.candidates(h).into_iter().take(candidates) {
            for slot in 0..SLOTS_PER_BUCKET {
                if let LockOutcome::Locked(pre) = ocf.try_lock_empty(bucket, slot) {
                    level.write_record(bucket, slot, rec);
                    fault::point("migrate.record_written");
                    level.commit_slot_valid(bucket, slot, slot_meta(rec, spilled));
                    fault::point("migrate.slot_committed");
                    ocf.commit(bucket, slot, pre, true, h.fp);
                    return;
                }
            }
        }
        // 2× growth leaves the target at <1/6 load; overflowing all 32
        // candidate slots is not a reachable state.
        unreachable!("resize target level overflowed");
    }

    pub(crate) fn find_in_level(
        level: &Level,
        ocf: &Ocf,
        key: &Key,
        h: &KeyHashes,
        candidates: usize,
    ) -> Option<(usize, usize)> {
        for bucket in level.candidates(h).into_iter().take(candidates) {
            for slot in 0..SLOTS_PER_BUCKET {
                let e = ocf.load(bucket, slot);
                if !ocf::is_valid(e) || ocf::fp(e) != h.fp {
                    continue;
                }
                if level.read_record(bucket, slot).key == *key {
                    return Some((bucket, slot));
                }
            }
        }
        None
    }

    /// Phase-3 swap shared by resize and recovery-resume.
    ///
    /// Persistent commit order after the in-DRAM swap: geometry, then
    /// cursor, then state. Recovery distinguishes every intermediate
    /// window: a crash with the swap done but `Stable` unwritten is
    /// detected either by `top_segments == new_top_segments` (geometry
    /// already published — only this code writes that combination) or by
    /// the pool's region sizes matching the post-swap arrangement.
    fn finalize_swap(&self, old: &Inner, new_top: Level, new_ocf: Ocf, generation: u64) -> Inner {
        let old_top_segments = old.top.n_segments();
        let new_top_segments = new_top.n_segments();
        // The demoted level keeps its *existing* OCF (`Arc::clone`): readers
        // still probing the previous snapshot observe post-swap writers'
        // seqlock commits on those buckets instead of a stale copy.
        let mut next = Inner {
            generation,
            top: new_top,
            ocf_top: Arc::new(new_ocf),
            bottom: old.top.clone(),
            ocf_bottom: Arc::clone(&old.ocf_top),
            hot: old.hot.clone(),
        };
        fault::point("resize.swapped");
        self.meta.set_geometry(new_top_segments, old_top_segments);
        fault::point("resize.geometry_published");
        self.meta.set_rehash_progress(None);
        fault::point("resize.progress_cleared");
        self.meta.set_state(ResizeState::Stable);
        fault::point("resize.finalized");
        // The hot table scales with the table (§3.3 "dynamically adjusted"):
        // re-allocate at the new capacity; heat re-accumulates on reads.
        if self.params.enable_hot_table {
            next.hot = Some(Arc::new(Self::make_hot(&self.params, next.total_slots())));
        }
        next
    }
}

enum HotWrite {
    Pending(crate::sync::SyncHandle),
    Inline(Arc<HotTable>, HotOp),
    None,
}

// Thin adapter from the unified `Result<_, HdnhError>` surface back to the
// narrow trait vocabulary the baselines and bench harness compile against.
impl HashIndex for Hdnh {
    fn insert(&self, key: &Key, value: &Value) -> IndexResult<()> {
        Hdnh::insert(self, key, value).map_err(IndexError::from)
    }

    fn get(&self, key: &Key) -> Option<Value> {
        // `get` only errors on unreadable media; the trait has no channel
        // for that, so it degrades to "absent" exactly as quarantine does.
        Hdnh::get(self, key).unwrap_or(None)
    }

    fn update(&self, key: &Key, value: &Value) -> IndexResult<()> {
        Hdnh::update(self, key, value).map_err(IndexError::from)
    }

    fn remove(&self, key: &Key) -> bool {
        Hdnh::remove(self, key).unwrap_or(false)
    }

    fn len(&self) -> usize {
        Hdnh::len(self)
    }

    fn load_factor(&self) -> f64 {
        Hdnh::load_factor(self)
    }

    fn scheme_name(&self) -> &'static str {
        "HDNH"
    }
}

impl std::fmt::Debug for Hdnh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hdnh")
            .field("len", &self.len())
            .field("load_factor", &self.load_factor())
            .field("resizes", &self.resize_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Hdnh {
        // Small: 1024-byte segments (4 buckets), bottom 2 segs → 24 buckets
        // total, 192 slots. Forces early resizes.
        Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .build()
        .unwrap())
    }

    fn k(id: u64) -> Key {
        Key::from_u64(id)
    }
    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = table();
        for i in 0..100 {
            t.insert(&k(i), &v(i * 2)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i * 2, "key {i}");
        }
        assert_eq!(t.get(&k(1000)).unwrap(), None);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let t = table();
        t.insert(&k(1), &v(1)).unwrap();
        assert_eq!(t.insert(&k(1), &v(2)), Err(HdnhError::DuplicateKey));
        assert_eq!(t.get(&k(1)).unwrap().unwrap().as_u64(), 1);
    }

    #[test]
    fn update_changes_value() {
        let t = table();
        t.insert(&k(7), &v(70)).unwrap();
        t.update(&k(7), &v(71)).unwrap();
        assert_eq!(t.get(&k(7)).unwrap().unwrap().as_u64(), 71);
        assert_eq!(t.len(), 1);
        assert_eq!(t.update(&k(8), &v(1)), Err(HdnhError::KeyNotFound));
    }

    #[test]
    fn repeated_updates_do_not_leak_slots() {
        let t = table();
        t.insert(&k(3), &v(0)).unwrap();
        for i in 1..200 {
            t.update(&k(3), &v(i)).unwrap();
            assert_eq!(t.get(&k(3)).unwrap().unwrap().as_u64(), i);
        }
        assert_eq!(t.len(), 1);
        // Only one valid NVM slot for the key.
        let snap = t.pinned();
        let inner = snap.inner;
        let total_valid: usize = inner.top.count_valid() + inner.bottom.count_valid();
        assert_eq!(total_valid, 1);
    }

    #[test]
    fn remove_works() {
        let t = table();
        for i in 0..50 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..50 {
            assert!(t.remove(&k(i)).unwrap(), "remove {i}");
            assert_eq!(t.get(&k(i)).unwrap(), None);
            assert!(!t.remove(&k(i)).unwrap());
        }
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn resize_triggered_and_data_survives() {
        let t = table();
        let n = 2_000u64;
        for i in 0..n {
            t.insert(&k(i), &v(i + 1)).unwrap();
        }
        assert!(t.resize_count() > 0, "expected at least one resize");
        for i in 0..n {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i + 1, "key {i} after resize");
        }
        assert_eq!(t.len(), n as usize);
        assert!(t.load_factor() <= 1.0);
    }

    #[test]
    fn meta_tracks_geometry_across_resizes() {
        let t = table();
        for i in 0..2_000u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let snap = t.pinned();
        let inner = snap.inner;
        assert_eq!(t.meta.top_segments(), inner.top.n_segments());
        assert_eq!(t.meta.bottom_segments(), inner.bottom.n_segments());
        assert_eq!(t.meta.state(), ResizeState::Stable);
        assert_eq!(inner.top.n_segments(), 2 * inner.bottom.n_segments());
    }

    #[test]
    fn reads_do_no_nvm_writes() {
        // The headline concurrency claim: lock-free search never writes NVM.
        let t = table();
        for i in 0..100 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let before = t.nvm_stats();
        for i in 0..100 {
            let _ = t.get(&k(i));
            let _ = t.get(&k(10_000 + i)); // negative
        }
        let delta = t.nvm_stats().since(&before);
        assert_eq!(delta.writes, 0, "reads wrote to NVM");
        assert_eq!(delta.flushes, 0);
    }

    #[test]
    fn negative_search_reads_no_nvm_blocks() {
        // OCF claim (§3.2): fingerprint misses answer negatives in DRAM.
        // With 1-byte fingerprints a false positive costs one block read;
        // over 200 negatives expect ≪ 200 block reads.
        let t = table();
        for i in 0..150 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let before = t.nvm_stats();
        for i in 0..200 {
            assert!(t.get(&k(1_000_000 + i)).unwrap().is_none());
        }
        let delta = t.nvm_stats().since(&before);
        // Each negative search scans ≤64 OCF entries; at a 1/256 per-entry
        // false-positive rate that is ≈0.25 block reads per search. Without
        // the filter every valid candidate slot would be a media read
        // (hundreds of blocks here).
        assert!(
            delta.read_blocks < 120,
            "negative searches read {} blocks; OCF is not filtering",
            delta.read_blocks
        );
    }

    #[test]
    fn hot_table_absorbs_repeated_reads() {
        // Oversized hot table (§3.5 "hot table has not been overflowed"):
        // once warm, repeated reads must be NVM-free.
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .hot_capacity_ratio(2.0)
        .build()
        .unwrap());
        for i in 0..30 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        // First read promotes; subsequent reads must hit DRAM.
        for i in 0..30 {
            let _ = t.get(&k(i));
        }
        let before = t.nvm_stats();
        for _ in 0..10 {
            for i in 0..30 {
                assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i);
            }
        }
        let delta = t.nvm_stats().since(&before);
        assert_eq!(delta.read_blocks, 0, "hot reads still touch NVM");
    }

    #[test]
    fn works_without_hot_table() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .enable_hot_table(false)
        .build()
        .unwrap());
        for i in 0..500 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..500 {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i);
        }
        assert!(t.hot_table().is_none());
    }

    #[test]
    fn works_without_ocf_filtering() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .enable_ocf(false)
        .build()
        .unwrap());
        for i in 0..500 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..500 {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i);
        }
        assert_eq!(t.get(&k(9999)).unwrap(), None);
    }

    #[test]
    fn background_sync_mode_correctness() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .sync_mode(SyncMode::Background)
        .build()
        .unwrap());
        for i in 0..1000 {
            t.insert(&k(i), &v(i * 3)).unwrap();
        }
        for i in 0..1000 {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i * 3);
        }
        for i in 0..1000 {
            t.update(&k(i), &v(i * 5)).unwrap();
            assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i * 5, "hot table stale after update");
        }
        for i in (0..1000).step_by(2) {
            assert!(t.remove(&k(i)).unwrap());
            assert_eq!(t.get(&k(i)).unwrap(), None, "hot table resurrects deleted key");
        }
    }

    #[test]
    fn upsert_via_trait() {
        let t = table();
        let idx: &dyn HashIndex = &t;
        idx.upsert(&k(1), &v(1)).unwrap();
        idx.upsert(&k(1), &v(2)).unwrap();
        assert_eq!(idx.get(&k(1)).unwrap().as_u64(), 2);
        assert_eq!(idx.scheme_name(), "HDNH");
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(4096)
        .initial_bottom_segments(4)
        .sync_mode(SyncMode::Background)
        .build()
        .unwrap()));
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let id = tid * 1_000_000 + i;
                    t.insert(&k(id), &v(id ^ 0xABCD)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 16_000);
        for tid in 0..8u64 {
            for i in (0..2_000u64).step_by(97) {
                let id = tid * 1_000_000 + i;
                assert_eq!(t.get(&k(id)).unwrap().unwrap().as_u64(), id ^ 0xABCD);
            }
        }
    }

    #[test]
    fn concurrent_readers_and_writers_see_consistent_values() {
        // Writers update keys with values derived from the key; readers
        // must never observe a torn/foreign value (invariant I3).
        let t = Arc::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(4096)
        .initial_bottom_segments(8)
        .build()
        .unwrap()));
        const KEYS: u64 = 256;
        for i in 0..KEYS {
            t.insert(&k(i), &v(i << 32)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for tid in 0..2u64 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut seq = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = (seq * 31 + tid * 7) % KEYS;
                    // Writers own disjoint halves of the key space.
                    let id = if tid == 0 { id / 2 * 2 } else { id / 2 * 2 + 1 };
                    let _ = t.update(&k(id), &v((id << 32) | seq));
                    seq += 1;
                }
            }));
        }
        for _ in 0..4 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = n % KEYS;
                    if let Some(val) = t.get(&k(id)).unwrap() {
                        assert_eq!(
                            val.as_u64() >> 32,
                            id,
                            "torn value for key {id}: {:#x}",
                            val.as_u64()
                        );
                    }
                    n += 1;
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_inserts_during_resize() {
        let t = Arc::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(1)
        .build()
        .unwrap()));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..3_000u64 {
                    t.insert(&k(tid * 1_000_000 + i), &v(i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 12_000);
        assert!(t.resize_count() >= 1);
        for tid in 0..4u64 {
            for i in (0..3_000u64).step_by(131) {
                assert_eq!(t.get(&k(tid * 1_000_000 + i)).unwrap().unwrap().as_u64(), i);
            }
        }
    }

    #[test]
    fn one_choice_ablation_works_and_resizes_earlier() {
        let two = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .two_choice_segments(true)
        .build()
        .unwrap());
        let one = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .two_choice_segments(false)
        .build()
        .unwrap());
        for i in 0..3_000u64 {
            two.insert(&k(i), &v(i)).unwrap();
            one.insert(&k(i), &v(i)).unwrap();
        }
        for i in (0..3_000u64).step_by(11) {
            assert_eq!(one.get(&k(i)).unwrap().unwrap().as_u64(), i);
            assert_eq!(two.get(&k(i)).unwrap().unwrap().as_u64(), i);
        }
        // Fewer candidates -> earlier overflow -> at least as many resizes.
        assert!(
            one.resize_count() >= two.resize_count(),
            "one-choice {} vs two-choice {}",
            one.resize_count(),
            two.resize_count()
        );
        assert!(one.verify_integrity().is_ok());
    }

    #[test]
    fn verify_integrity_passes_after_heavy_churn() {
        let t = table();
        for i in 0..800u64 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        for i in 0..400u64 {
            t.update(&k(i), &v(i + 9_000)).unwrap();
        }
        for i in 600..800u64 {
            assert!(t.remove(&k(i)).unwrap());
        }
        assert_eq!(t.verify_integrity().unwrap(), 600);
    }

    #[test]
    fn fingerprint_filter_does_not_alias_segment_bits() {
        // Regression: with ≥256 segments, deriving the segment index from
        // h1's low byte would make every h1-routed resident share the
        // search key's fingerprint, silently disabling the OCF at scale.
        // Pin the false-positive rate to the 1/256 theory at a geometry
        // with 512 top-level segments.
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(16 * 1024)
        .initial_bottom_segments(256)
        .enable_hot_table(false)
        .build()
        .unwrap());
        let n = 60_000u64;
        for i in 0..n {
            t.insert(&k(i), &v(i)).unwrap();
        }
        assert_eq!(t.resize_count(), 0);
        let before = t.nvm_stats();
        let probes = 20_000u64;
        for i in 0..probes {
            assert!(t.get(&k(10_000_000 + i)).unwrap().is_none());
        }
        let d = t.nvm_stats().since(&before);
        let per_op = d.read_blocks as f64 / probes as f64;
        // Theory: 64 entries × load × 1/256 ≈ 0.04; allow ≤ 0.5.
        assert!(per_op < 0.5, "negative search reads {per_op:.3} blocks/op — fp aliasing?");
    }

    /// Locates a key's live NVM slot by exhaustive scan (tests only).
    fn locate(t: &Hdnh, key: &Key) -> (usize, usize, usize) {
        let snap = t.pinned();
        let inner = snap.inner;
        for li in 0..2 {
            let (level, _) = inner.level(li);
            for b in 0..level.n_buckets() {
                let header = level.load_header(b);
                for s in 0..SLOTS_PER_BUCKET {
                    if header_slot_valid(header, s) && level.read_record(b, s).key == *key {
                        return (li, b, s);
                    }
                }
            }
        }
        panic!("key not persisted");
    }

    /// XORs `mask` into one byte of the key's persisted record.
    fn corrupt_record_byte(t: &Hdnh, key: &Key, byte: usize, mask: u8) {
        let (li, b, s) = locate(t, key);
        let snap = t.pinned();
        let inner = snap.inner;
        let (level, _) = inner.level(li);
        level.region().corrupt(level.slot_off(b, s) + byte, &[mask]);
    }

    #[test]
    fn corrupted_record_is_never_served_and_quarantined_without_hot_copy() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .enable_hot_table(false)
        .build()
        .unwrap());
        for i in 0..50 {
            t.insert(&k(i), &v(i + 100)).unwrap();
        }
        // Flip one bit in the value bytes of key 7's persisted record.
        corrupt_record_byte(&t, &k(7), hdnh_common::KEY_LEN + 3, 0x10);
        // The damaged bytes must never reach the caller: with no clean
        // copy the slot is quarantined and the lookup misses.
        assert_eq!(t.get(&k(7)).unwrap(), None);
        assert_eq!(t.len(), 49);
        // The table stays fully consistent and the other keys are intact.
        assert!(t.verify_integrity().is_ok());
        for i in 0..50 {
            if i != 7 {
                assert_eq!(t.get(&k(i)).unwrap().unwrap().as_u64(), i + 100);
            }
        }
    }

    #[test]
    fn corrupted_record_is_repaired_from_hot_copy() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .hot_capacity_ratio(2.0)
        .build()
        .unwrap());
        for i in 0..50 {
            t.insert(&k(i), &v(i + 100)).unwrap();
        }
        // Damage key 9's value bytes in NVM; its clean copy is in the hot
        // table (inserts cache through it).
        corrupt_record_byte(&t, &k(9), hdnh_common::KEY_LEN + 1, 0x80);
        // A write-path probe reads the NVM record even when the key is hot:
        // the duplicate check detects the damage and repairs it in place.
        assert_eq!(t.insert(&k(9), &v(1)), Err(HdnhError::DuplicateKey));
        let (li, b, s) = locate(&t, &k(9));
        let snap = t.pinned();
        let inner = snap.inner;
        let (level, _) = inner.level(li);
        let rec = level.read_record(b, s);
        assert_eq!(rec.value.as_u64(), 109, "record not rebuilt from hot copy");
        assert!(slot_checksum_ok(level.load_header(b), s, &rec));
        drop(snap);
        assert_eq!(t.len(), 50, "repair must not change the live count");
        assert!(t.verify_integrity().is_ok());
    }

    #[test]
    fn corrupted_key_bytes_are_quarantined_not_forged() {
        // Damage to the key bytes makes the record's fingerprint disagree
        // with the DRAM-held OCF witness: repair must refuse to rebuild
        // under a forged key even though a hot copy of the true key exists.
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .enable_hot_table(false)
        .build()
        .unwrap());
        for i in 0..50 {
            t.insert(&k(i), &v(i)).unwrap();
        }
        let (li, b, s) = locate(&t, &k(3));
        corrupt_record_byte(&t, &k(3), 0, 0x04);
        {
            // Guard against the 7-bit checksum's documented 1/128
            // false-accept: this particular (byte, mask) pair must be
            // detectable or the assertions below are vacuous.
            let snap = t.pinned();
            let inner = snap.inner;
            let (level, _) = inner.level(li);
            assert!(
                !slot_checksum_ok(level.load_header(b), s, &level.read_record(b, s)),
                "chosen corruption collides in the 7-bit checksum; pick another mask"
            );
        }
        assert_eq!(t.get(&k(3)).unwrap(), None);
        assert_eq!(t.len(), 49);
        assert!(t.verify_integrity().is_ok());
    }

    #[test]
    fn scrub_repairs_hot_backed_slots_and_quarantines_the_rest() {
        let t = Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .hot_capacity_ratio(2.0)
        .build()
        .unwrap());
        for i in 0..80 {
            t.insert(&k(i), &v(i + 500)).unwrap();
        }
        assert!(t.scrub().clean(), "fresh table must scrub clean");
        // Three value corruptions (hot copies exist → repair) and two key
        // corruptions (fingerprint witness disagrees → quarantine).
        for key in [11u64, 22, 33] {
            corrupt_record_byte(&t, &k(key), hdnh_common::KEY_LEN + 2, 0x40);
        }
        for key in [44u64, 55] {
            corrupt_record_byte(&t, &k(key), 1, 0x02);
        }
        let report = t.scrub();
        assert_eq!(report.detected, 5, "{report:?}");
        assert_eq!(report.repaired, 3, "{report:?}");
        assert_eq!(report.quarantined, 2, "{report:?}");
        assert_eq!(report.scanned, 80);
        assert_eq!(report.errors.len(), 5);
        assert!(!report.clean());
        let json = report.to_json();
        assert!(json.contains("\"detected\":5") && json.contains("\"repaired\":3"));
        // Post-scrub the table is consistent; repaired keys read back.
        assert!(t.verify_integrity().is_ok());
        assert_eq!(t.len(), 78);
        for key in [11u64, 22, 33] {
            assert_eq!(t.get(&k(key)).unwrap().unwrap().as_u64(), key + 500);
        }
        // A second pass finds nothing left to do.
        assert!(t.scrub().clean());
    }

    #[test]
    fn contended_writers_count_backoff_rounds() {
        obs::set_enabled(true);
        let before = obs::snapshot().counter(obs::Counter::OpmapBackoffRound);
        let t = Arc::new(Hdnh::new(HdnhParams::builder()
        .segment_bytes(1024)
        .initial_bottom_segments(2)
        .build()
        .unwrap()));
        t.insert(&k(1), &v(0)).unwrap();
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..3_000u64 {
                    t.update(&k(1), &v(tid * 100_000 + i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rounds = obs::snapshot().counter(obs::Counter::OpmapBackoffRound) - before;
        assert!(
            rounds > 0,
            "8 writers hammering one key never took a backoff round"
        );
        assert_eq!(t.len(), 1);
        assert!(t.verify_integrity().is_ok());
    }

    #[test]
    fn ocf_footprint_is_two_bytes_per_slot() {
        let t = table();
        let inner_slots = t.pinned().inner.total_slots();
        assert_eq!(t.ocf_footprint_bytes(), inner_slots * 2);
    }

    #[test]
    fn readers_race_resizes_without_missing_keys() {
        // Readers hammer a stable key set while writers force repeated
        // snapshot swaps; every read must succeed (retrying across the
        // generation bump, never observing a half-migrated table).
        obs::set_enabled(true);
        let t = Arc::new(
            Hdnh::new(
                HdnhParams::builder()
                    .segment_bytes(1024)
                    .initial_bottom_segments(1)
                    .build()
                    .unwrap(),
            ),
        );
        const STABLE: u64 = 128;
        for i in 0..STABLE {
            t.insert(&k(i), &v(i + 7)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let id = n % STABLE;
                    assert_eq!(
                        t.get(&k(id)).unwrap().expect("stable key vanished").as_u64(),
                        id + 7
                    );
                    n += 1;
                }
            }));
        }
        let base_resizes = t.resize_count();
        // Filler inserts drive load past the threshold repeatedly.
        for i in 0..20_000u64 {
            t.insert(&k(1_000_000 + i), &v(i)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert!(t.resize_count() > base_resizes, "no resize was exercised");
        assert!(t.verify_integrity().is_ok());
    }
}
