//! # HDNH — Hybrid DRAM-NVM Hashing
//!
//! A reproduction of *"HDNH: a read-efficient and write-optimized hashing
//! scheme for hybrid DRAM-NVM memory"* (Zhu et al., ICPP 2021), built on the
//! simulated persistent-memory substrate in [`hdnh_nvm`].
//!
//! HDNH persists key-value records in a two-level **non-volatile table** in
//! NVM while keeping all probe metadata in DRAM:
//!
//! * the **Optimistic Compression Filter** ([`ocf`]) — 2 bytes per slot
//!   (valid bit, lock bit, 6-bit version, 1-byte fingerprint) — answers
//!   most key-match questions without touching NVM;
//! * the **hot table** ([`hot`]) caches frequently-read records in DRAM with
//!   the lightweight **RAFL** replacement policy;
//! * the **synchronous write mechanism** ([`sync`]) hides the hot-table
//!   update under the NVM write;
//! * **fine-grained optimistic concurrency** gives lock-free reads and
//!   per-slot writer locks — no NVM traffic for read locks.
//!
//! # Quick start
//!
//! ```
//! use hdnh::{Hdnh, HdnhParams};
//! use hdnh_common::{Key, Value};
//!
//! let params = HdnhParams::builder().capacity(10_000).build().unwrap();
//! let table = Hdnh::new(params);
//! let (k, v) = (Key::from_u64(1), Value::from_u64(42));
//! table.insert(&k, &v).unwrap();
//! assert_eq!(table.get(&k).unwrap().unwrap().as_u64(), 42);
//! table.update(&k, &Value::from_u64(43)).unwrap();
//! assert!(table.remove(&k).unwrap());
//! ```
//!
//! # Persistence
//!
//! [`Hdnh::into_pool`] returns the persistent regions (simulating process
//! exit); [`Hdnh::recover`] re-opens them, completing any interrupted resize
//! and rebuilding the DRAM structures with a parallel scan. With
//! [`hdnh_nvm::NvmOptions::strict`] regions, [`PersistentPool::crash`]
//! simulates a power failure at the current instant.


#![warn(missing_docs)]
mod epoch;

pub mod error;
pub mod faultexplore;
pub mod hot;
pub mod meta;
pub mod nvtable;
pub mod ocf;
pub mod params;
pub mod pool;
pub mod recovery;
pub mod snapshot;
pub mod sync;
pub mod table;
pub mod vlog;

pub use error::{CorruptionOutcome, HdnhError};
pub use faultexplore::{ExploreConfig, ExploreReport, FaultCaseResult, OpMix};
pub use hot::HotTable;
pub use params::{HdnhParams, HdnhParamsBuilder, HotPolicy, SyncMode};
pub use pool::{crc32_ieee, PoolOpenReport, Superblock, SUPERBLOCK_FILE};
pub use recovery::{PersistentPool, RecoveryTiming};
pub use snapshot::{
    verify_snapshot, ManifestEntry, SnapshotManifest, SnapshotReport, SNAPSHOT_MANIFEST_FILE,
};
pub use table::{Hdnh, InvariantReport, ScrubReport};
pub use vlog::{CompactReport, Vlog, VlogPtr, VlogStats, INLINE_MAX, MAX_VALUE_BYTES};
