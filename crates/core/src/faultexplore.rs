//! Exhaustive crash-point exploration (the fault-injection driver).
//!
//! The write paths and the NVM primitives are annotated with named crash
//! sites ([`hdnh_nvm::fault`]). This module turns those annotations into a
//! systematic robustness check:
//!
//! 1. **Record** — run a deterministic scripted op mix once with the
//!    registry in recording mode, learning how often each site fires.
//! 2. **Explore** — for every `(site, hit)` sample and every crash seed,
//!    re-run the same mix with the registry armed. The k-th hit of the site
//!    panics with an [`InjectedCrash`]; the driver catches the unwind,
//!    simulates the power failure ([`PersistentPool::crash`] tears unflushed
//!    cachelines at 8-byte granularity), and runs [`Hdnh::recover`].
//! 3. **Check** — the recovered table must match the *acknowledged-state
//!    oracle* (every op completed before the crash is visible; the one op
//!    in flight may be fully applied or fully absent, never half) and every
//!    invariant of [`Hdnh::verify_integrity_report`] must hold.
//!
//! Recovery has crash sites of its own (`recover.*`); with
//! [`ExploreConfig::explore_recovery`] the driver additionally re-arms the
//! registry *during* recovery, crashes a second time, and verifies that the
//! follow-up recovery still converges.
//!
//! Every failure is reported as a `(mix, site, hit, seed)` tuple from which
//! [`run_single`] reproduces the exact scenario. Armed runs are
//! single-threaded (one foreground mutator, recovery with one worker) so
//! the k-th hit of a site is always the same machine state.
//!
//! The fault registry is process-global: nothing in this module may run
//! concurrently with another exploration or registry-using test.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Value};
use hdnh_nvm::{fault, FaultPlan, LossMode, NvmOptions, NvmRegion, SyncPolicy};

use crate::params::{HdnhParams, SyncMode};
use crate::recovery::PersistentPool;
use crate::table::Hdnh;

/// One scripted table operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert a fresh key.
    Insert(u64, u64),
    /// Update an existing key.
    Update(u64, u64),
    /// Remove an existing key.
    Remove(u64),
    /// Insert a fresh key with an over-inline payload derived from the
    /// seed (spills to the value log).
    InsertBig(u64, u64),
    /// Update an existing key with an over-inline payload (tombstones
    /// the old log entry, appends a fresh one).
    UpdateBig(u64, u64),
}

/// Deterministic over-inline payload for the bytes-API ops: length in
/// `[25, 174]`, contents an LCG stream seeded by `v` — long enough to
/// spill, short enough that the tiny exploration segments rotate often.
pub fn big_payload(v: u64) -> Vec<u8> {
    let n = 25 + (v % 150) as usize;
    let mut x = v | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect()
}

/// A named deterministic op sequence.
#[derive(Debug, Clone)]
pub struct OpMix {
    /// Mix name, part of every reproduction tuple.
    pub name: &'static str,
    /// The operations, executed in order by one thread.
    pub ops: Vec<Op>,
}

impl OpMix {
    /// The built-in mixes, chosen to reach every site category on the
    /// exploration geometry: plain inserts, update-heavy churn (the
    /// same-bucket fast path *and* the fallback double-copy window),
    /// removes, and a fill that triggers a live resize.
    pub fn builtin() -> Vec<OpMix> {
        let mut mixes = Vec::new();

        mixes.push(OpMix {
            name: "insert-light",
            ops: (0..40).map(|i| Op::Insert(i, i * 3 + 1)).collect(),
        });

        // Fill enough that buckets run out of free slots, then rewrite every
        // key repeatedly: early updates take the same-bucket swap, late ones
        // are forced into the fallback path; finish with deletes and
        // re-inserts over the holes.
        let mut churn = Vec::new();
        for i in 0..56 {
            churn.push(Op::Insert(i, i + 100));
        }
        for round in 0..3 {
            for i in 0..56 {
                churn.push(Op::Update(i, i + 200 + round * 56));
            }
        }
        for i in 40..56 {
            churn.push(Op::Remove(i));
        }
        for i in 60..76 {
            churn.push(Op::Insert(i, i + 900));
        }
        mixes.push(OpMix {
            name: "churn",
            ops: churn,
        });

        // Enough inserts to overflow the initial geometry and run a full
        // resize (allocate, migrate, swap) in the middle of the mix.
        let mut fill = Vec::new();
        for i in 0..400 {
            fill.push(Op::Insert(i, i ^ 0xABCD));
        }
        for i in 0..40 {
            fill.push(Op::Update(i, i + 7));
        }
        for i in 300..320 {
            fill.push(Op::Remove(i));
        }
        mixes.push(OpMix {
            name: "fill-resize",
            ops: fill,
        });

        // Spill-heavy traffic for the value log: over-inline inserts,
        // re-spills (tombstone + fresh append), inline↔spill transitions
        // and removes. With the tiny exploration segments the log rotates
        // several times, so sampled crashes land between the log append
        // and the index publish, inside rotation, and on tombstoned
        // state. Appended last so the earlier mixes keep their indices.
        let mut spill = Vec::new();
        for i in 0..24 {
            spill.push(Op::InsertBig(i, i + 500));
        }
        for i in 24..40 {
            spill.push(Op::Insert(i, i + 100));
        }
        for i in 0..24 {
            spill.push(Op::UpdateBig(i, i + 700));
        }
        for i in 24..32 {
            spill.push(Op::UpdateBig(i, i + 900)); // inline → spill
        }
        for i in 0..8 {
            spill.push(Op::Update(i, i + 40)); // spill → inline
        }
        for i in 16..24 {
            spill.push(Op::Remove(i)); // tombstone by delete
        }
        mixes.push(OpMix {
            name: "vlog-spill",
            ops: spill,
        });

        mixes
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Op mixes to drive ([`OpMix::builtin`] by default).
    pub mixes: Vec<OpMix>,
    /// Crash seeds tried per `(site, hit)` — each seed tears a different
    /// random subset of the unflushed cachelines.
    pub crash_seeds: Vec<u64>,
    /// Worker threads for the final (unarmed) recovery of each case.
    pub threads: usize,
    /// Also inject crashes into recovery itself (two-phase cases).
    pub explore_recovery: bool,
}

impl ExploreConfig {
    /// Full matrix: all built-in mixes, two seeds, recovery exploration on.
    pub fn full() -> Self {
        ExploreConfig {
            mixes: OpMix::builtin(),
            crash_seeds: vec![1, 2],
            threads: 2,
            explore_recovery: true,
        }
    }

    /// Bounded smoke configuration (CI): one seed, no recovery phase two.
    pub fn quick() -> Self {
        ExploreConfig {
            mixes: OpMix::builtin(),
            crash_seeds: vec![1],
            threads: 2,
            explore_recovery: false,
        }
    }
}

/// Outcome of one injected-crash case.
#[derive(Debug, Clone)]
pub struct FaultCaseResult {
    /// Mix that drove the table.
    pub mix: String,
    /// Crash site that fired.
    pub site: String,
    /// 1-based hit of the site at which the crash fired.
    pub hit: u64,
    /// Crash seed (selects which unflushed lines tear).
    pub seed: u64,
    /// For two-phase cases: the `(site, hit)` injected into recovery.
    pub recovery_site: Option<(String, u64)>,
    /// Whether the oracle and every integrity invariant passed.
    pub pass: bool,
    /// Failure explanation (empty when passing).
    pub detail: String,
}

impl FaultCaseResult {
    /// The reproduction tuple, e.g. for `hdnh faultrun --repro`.
    pub fn repro(&self) -> String {
        match &self.recovery_site {
            None => format!("{}:{}:{}:{}", self.mix, self.site, self.hit, self.seed),
            Some((rs, rh)) => format!(
                "{}:{}:{}:{}:{}:{}",
                self.mix, self.site, self.hit, self.seed, rs, rh
            ),
        }
    }
}

/// Aggregate result of an exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Every site observed in recording passes, with total hit counts
    /// summed over all mixes.
    pub sites_seen: BTreeMap<String, u64>,
    /// Every executed case.
    pub cases: Vec<FaultCaseResult>,
}

impl ExploreReport {
    /// The failing cases.
    pub fn failures(&self) -> Vec<&FaultCaseResult> {
        self.cases.iter().filter(|c| !c.pass).collect()
    }

    /// `true` when every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.pass)
    }
}

/// The geometry every exploration case uses: small strict levels so a few
/// hundred ops exercise bucket overflow, the update fallback and a resize.
pub fn explore_params() -> HdnhParams {
    HdnhParams {
        segment_bytes: 1024,
        initial_bottom_segments: 2,
        // Tiny log segments: the spill mix rotates several times, so
        // crash sites inside rotation are reachable.
        vlog_segment_bytes: 2048,
        nvm: NvmOptions::strict(),
        sync_mode: SyncMode::Background,
        background_writers: 1,
        ..Default::default()
    }
}

/// The pool-backend twin of [`explore_params`]: same tiny geometry, but
/// file-backed with shadow-persistence tracking and the blocking sync
/// policy — the only configuration whose acks are power-loss safe, and
/// therefore the only one the acked-state oracle is sound against.
pub fn explore_pool_params() -> HdnhParams {
    let mut nvm = NvmOptions::fast();
    nvm.shadow_pool = true;
    nvm.sync_policy = SyncPolicy::Sync;
    HdnhParams {
        segment_bytes: 1024,
        initial_bottom_segments: 2,
        vlog_segment_bytes: 2048,
        nvm,
        sync_mode: SyncMode::Background,
        background_writers: 1,
        ..Default::default()
    }
}

fn apply_model(model: &mut BTreeMap<u64, (u64, bool)>, op: &Op) {
    match op {
        Op::Insert(k, v) | Op::Update(k, v) => {
            model.insert(*k, (*v, false));
        }
        Op::InsertBig(k, v) | Op::UpdateBig(k, v) => {
            model.insert(*k, (*v, true));
        }
        Op::Remove(k) => {
            model.remove(k);
        }
    }
}

/// Runs the mix on `table`, bumping `applied` after each completed op.
/// Ops must individually succeed — the mixes are scripted against the
/// model, so an `Err` is a real bug, not an injected crash.
fn run_mix(table: &Hdnh, ops: &[Op], applied: &AtomicUsize) {
    for op in ops {
        match op {
            Op::Insert(k, v) => table
                .insert(&Key::from_u64(*k), &Value::from_u64(*v))
                .expect("scripted insert"),
            Op::Update(k, v) => table
                .update(&Key::from_u64(*k), &Value::from_u64(*v))
                .expect("scripted update"),
            Op::Remove(k) => {
                assert!(
                    table.remove(&Key::from_u64(*k)).expect("scripted remove"),
                    "scripted remove hit a missing key"
                );
            }
            Op::InsertBig(k, v) => table
                .insert_bytes(&Key::from_u64(*k), &big_payload(*v))
                .expect("scripted spill insert"),
            Op::UpdateBig(k, v) => table
                .update_bytes(&Key::from_u64(*k), &big_payload(*v))
                .expect("scripted spill update"),
        }
        applied.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checks the recovered table against one candidate model state.
fn table_matches(table: &Hdnh, model: &BTreeMap<u64, (u64, bool)>) -> Result<(), String> {
    if table.len() != model.len() {
        return Err(format!(
            "live count {} != expected {}",
            table.len(),
            model.len()
        ));
    }
    for (k, (v, big)) in model {
        if *big {
            match table.get_bytes(&Key::from_u64(*k)) {
                Ok(Some(got)) if got == big_payload(*v) => {}
                Ok(Some(got)) => {
                    return Err(format!(
                        "key {k}: spilled payload ({} bytes) != expected seed {v}",
                        got.len()
                    ))
                }
                Ok(None) => return Err(format!("key {k} lost (expected spilled seed {v})")),
                Err(e) => return Err(format!("key {k}: read error {e}")),
            }
            continue;
        }
        match table.get(&Key::from_u64(*k)) {
            Ok(Some(got)) if got.as_u64() == *v => {}
            Ok(Some(got)) => {
                return Err(format!("key {k}: value {} != expected {v}", got.as_u64()))
            }
            Ok(None) => return Err(format!("key {k} lost (expected {v})")),
            Err(e) => return Err(format!("key {k}: read error {e}")),
        }
    }
    Ok(())
}

/// Oracle + deep integrity check after recovery. `applied` ops completed
/// before the crash; op `applied` (if any) was in flight and may be fully
/// applied or fully absent.
fn check_recovered(table: &Hdnh, ops: &[Op], applied: usize) -> Result<(), String> {
    let mut without = BTreeMap::new();
    for op in &ops[..applied.min(ops.len())] {
        apply_model(&mut without, op);
    }
    let matched = match table_matches(table, &without) {
        Ok(()) => Ok(()),
        Err(e1) => {
            if applied < ops.len() {
                let mut with = without.clone();
                apply_model(&mut with, &ops[applied]);
                table_matches(table, &with).map_err(|e2| {
                    format!("neither pre-op state ({e1}) nor post-op state ({e2}) matches")
                })
            } else {
                Err(e1)
            }
        }
    };
    matched?;
    let (reports, _) = table.verify_integrity_report();
    let broken: Vec<String> = reports
        .iter()
        .filter(|r| !r.ok)
        .map(|r| format!("{}: {}", r.name, r.violations.join("; ")))
        .collect();
    if broken.is_empty() {
        Ok(())
    } else {
        Err(format!("integrity: {}", broken.join(" | ")))
    }
}

/// Region handles cloned before recovery so a crash *inside* recovery can
/// be followed by another recovery of the same pool (real NVM survives).
struct PoolBackup {
    meta: Arc<NvmRegion>,
    top: Arc<NvmRegion>,
    bottom: Arc<NvmRegion>,
    new_top: Option<Arc<NvmRegion>>,
    vlog: Vec<(u32, Arc<NvmRegion>)>,
}

impl PoolBackup {
    fn of(pool: &PersistentPool) -> Self {
        PoolBackup {
            meta: Arc::clone(&pool.meta),
            top: Arc::clone(&pool.top),
            bottom: Arc::clone(&pool.bottom),
            new_top: pool.new_top.as_ref().map(Arc::clone),
            vlog: pool.vlog.clone(),
        }
    }

    fn restore(&self) -> PersistentPool {
        PersistentPool {
            meta: Arc::clone(&self.meta),
            top: Arc::clone(&self.top),
            bottom: Arc::clone(&self.bottom),
            new_top: self.new_top.as_ref().map(Arc::clone),
            vlog: self.vlog.clone(),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builds a table and runs the mix, catching an injected crash anywhere in
/// between. Returns the pool plus how many ops completed — or `Ok(None)`
/// when the crash hit table *construction* (pool formatting): the magic
/// word is written last, so a half-formatted pool is never adopted and
/// there is nothing to recover.
fn run_phase_one(mix: &OpMix) -> Result<Option<(PersistentPool, usize)>, String> {
    let applied = AtomicUsize::new(0);
    let mut table: Option<Hdnh> = None;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        table = Some(Hdnh::new(explore_params()));
        run_mix(table.as_ref().unwrap(), &mix.ops, &applied);
    }));
    if let Err(payload) = outcome {
        if fault::injected(&*payload).is_none() {
            return Err(format!(
                "genuine panic during mix (not an injected crash): {}",
                panic_message(&*payload)
            ));
        }
    }
    let applied = applied.load(Ordering::Relaxed);
    Ok(table.map(|t| (t.into_pool(), applied)))
}

/// Executes one fully-specified case. `plan` arms the mix phase;
/// `recovery_plan` (optional) re-arms during recovery for a second crash.
/// This is the reproduction entry point: the same arguments always replay
/// the same machine states.
pub fn run_single(
    mix: &OpMix,
    plan: &FaultPlan,
    seed: u64,
    recovery_plan: Option<&FaultPlan>,
    threads: usize,
) -> FaultCaseResult {
    let mut result = FaultCaseResult {
        mix: mix.name.to_string(),
        site: plan.site.clone(),
        hit: plan.hit,
        seed,
        recovery_site: recovery_plan.map(|p| (p.site.clone(), p.hit)),
        pass: false,
        detail: String::new(),
    };

    fault::arm(plan.clone());
    let lint_was = fault::set_lint_persists(true);
    let phase_one = run_phase_one(mix);
    fault::set_lint_persists(lint_was);
    let (pool, applied) = match phase_one {
        Ok(Some(v)) => v,
        Ok(None) => {
            // Crash during pool formatting: the magic word is written last,
            // so no application state was ever acknowledged.
            fault::disarm();
            result.pass = true;
            result.detail = "injected crash during table construction (no pool formatted)".into();
            return result;
        }
        Err(detail) => {
            fault::disarm();
            result.detail = detail;
            return result;
        }
    };
    if fault::fired().is_none() {
        // The plan's hit count exceeds what this mix produces — vacuous.
        fault::disarm();
        result.pass = true;
        result.detail = "site/hit not reached by mix".into();
        return result;
    }

    let backup = PoolBackup::of(&pool);
    pool.crash(seed);

    // Optionally crash a second time inside recovery. Armed recoveries run
    // single-threaded so the k-th hit is deterministic.
    let mut pool = pool;
    if let Some(rp) = recovery_plan {
        fault::rearm(rp.clone());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            Hdnh::recover(explore_params(), pool, 1)
        }));
        match outcome {
            Ok(table) => {
                // The recovery plan never fired (hit count not reached):
                // this table is already the final state.
                fault::disarm();
                match check_recovered(&table, &mix.ops, applied) {
                    Ok(()) => result.pass = true,
                    Err(e) => result.detail = format!("(recovery plan unreached) {e}"),
                }
                return result;
            }
            Err(payload) => {
                if fault::injected(&*payload).is_none() {
                    fault::disarm();
                    result.detail = format!(
                        "genuine panic during armed recovery: {}",
                        panic_message(&*payload)
                    );
                    return result;
                }
                pool = backup.restore();
                pool.crash(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            }
        }
    }

    fault::disarm();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Hdnh::recover(explore_params(), pool, threads.max(1))
    }));
    match outcome {
        Ok(table) => match check_recovered(&table, &mix.ops, applied) {
            Ok(()) => result.pass = true,
            Err(e) => result.detail = e,
        },
        Err(payload) => {
            result.detail = format!("recovery panicked: {}", panic_message(&*payload));
        }
    }
    result
}

/// A fresh scratch pool directory under the system temp dir, unique per
/// process and per call.
fn scratch_pool_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hdnh-faultpool-{}-{tag}-{n}",
        std::process::id()
    ))
}

/// Builds a *file-backed* table in `dir` and runs the mix, catching an
/// injected crash anywhere in between. Returns how many ops completed, or
/// `Ok(None)` when the crash hit pool creation (the superblock is written
/// last, so a half-created directory is refused on reopen and nothing was
/// ever acknowledged). The table is dropped *without* `close_pool` — the
/// mapping disappears dirty, exactly like a power cut.
fn run_phase_one_pool(mix: &OpMix, dir: &std::path::Path) -> Result<Option<usize>, String> {
    let applied = AtomicUsize::new(0);
    let mut table: Option<Hdnh> = None;
    let mut open_err: Option<String> = None;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        match Hdnh::open_pool(explore_pool_params(), dir, 1) {
            Ok((t, _)) => {
                table = Some(t);
                run_mix(table.as_ref().unwrap(), &mix.ops, &applied);
            }
            Err(e) => open_err = Some(format!("pool creation failed: {e}")),
        }
    }));
    if let Err(payload) = outcome {
        if fault::injected(&*payload).is_none() {
            return Err(format!(
                "genuine panic during pool mix (not an injected crash): {}",
                panic_message(&*payload)
            ));
        }
    }
    if let Some(e) = open_err {
        return Err(e);
    }
    let had_table = table.is_some();
    drop(table);
    Ok(had_table.then_some(applied.load(Ordering::Relaxed)))
}

/// [`run_single`] under `Backend::Pool` with shadow persistence: the
/// injected crash is followed by a *power loss* — every region file is
/// reduced to what the shadow sidecar guarantees plus a seed-chosen
/// fraction of the at-risk (unfenced) lines, torn, dropped or reordered
/// per [`LossMode::from_seed`]. Recovery then runs through the full
/// `open_pool` path (superblock validation, size classification, orphan
/// sweep) and must satisfy the same acked-state oracle as the heap matrix.
pub fn run_single_pool(mix: &OpMix, plan: &FaultPlan, seed: u64, threads: usize) -> FaultCaseResult {
    let mode = LossMode::from_seed(seed);
    let mut result = FaultCaseResult {
        mix: mix.name.to_string(),
        site: plan.site.clone(),
        hit: plan.hit,
        seed,
        recovery_site: None,
        pass: false,
        detail: String::new(),
    };
    let dir = scratch_pool_dir("case");

    fault::arm(plan.clone());
    let phase_one = run_phase_one_pool(mix, &dir);
    let fired = fault::fired();
    fault::disarm();

    'case: {
        let applied = match phase_one {
            Ok(Some(applied)) => applied,
            Ok(None) => {
                result.pass = true;
                result.detail = "injected crash during pool creation (no pool formatted)".into();
                break 'case;
            }
            Err(detail) => {
                result.detail = detail;
                break 'case;
            }
        };
        if fired.is_none() {
            result.pass = true;
            result.detail = "site/hit not reached by mix".into();
            break 'case;
        }

        // Power loss: cut every region file back to fenced content plus
        // random survivors of the at-risk lines.
        let mut rng = XorShift64Star::new(seed ^ 0xD6E8_FEB8_6659_FD93);
        let files = match std::fs::read_dir(&dir) {
            Ok(rd) => rd,
            Err(e) => {
                result.detail = format!("read_dir {}: {e}", dir.display());
                break 'case;
            }
        };
        for entry in files.flatten() {
            let p = entry.path();
            if p.extension().and_then(|e| e.to_str()) != Some("dat") {
                continue;
            }
            if let Err(e) = hdnh_nvm::powerloss_crash_file(&p, &mut rng, mode) {
                result.detail = format!("powerloss on {}: {e}", p.display());
                break 'case;
            }
        }

        match Hdnh::open_pool(explore_pool_params(), &dir, threads.max(1)) {
            Ok((table, _)) => match check_recovered(&table, &mix.ops, applied) {
                Ok(()) => result.pass = true,
                Err(e) => result.detail = format!("[{}] {e}", mode.name()),
            },
            Err(e) => {
                result.detail = format!("[{}] pool reopen failed: {e}", mode.name());
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Records per-site hit counts for one mix on the pool backend (the site
/// population differs from the heap run: `msync` paths fire, strict-mode
/// paths do not).
pub fn record_sites_pool(mix: &OpMix) -> Result<BTreeMap<&'static str, u64>, String> {
    let dir = scratch_pool_dir("record");
    fault::start_recording();
    let phase = run_phase_one_pool(mix, &dir);
    let counts = fault::disarm();
    let _ = std::fs::remove_dir_all(&dir);
    phase.map(|_| counts)
}

/// Hit samples for a site observed `n` times: first, middle, last.
pub fn hit_samples(n: u64) -> Vec<u64> {
    let mut v = vec![1, n / 2 + 1, n];
    v.sort_unstable();
    v.dedup();
    v
}

/// Records per-site hit counts for one mix (no crashing).
fn record_mix(mix: &OpMix) -> Result<BTreeMap<&'static str, u64>, String> {
    fault::start_recording();
    let phase = run_phase_one(mix);
    let counts = fault::disarm();
    phase.map(|_| counts)
}

/// Records per-site hit counts of a *recovery* that follows a crash at
/// `base` during the mix.
fn record_recovery(mix: &OpMix, base: &FaultPlan, seed: u64) -> Result<BTreeMap<&'static str, u64>, String> {
    fault::arm(base.clone());
    let phase = run_phase_one(mix);
    match phase {
        Ok(None) => {
            fault::disarm();
            Ok(BTreeMap::new())
        }
        Ok(Some((pool, _))) => {
            if fault::fired().is_none() {
                fault::disarm();
                return Ok(BTreeMap::new());
            }
            pool.crash(seed);
            fault::start_recording();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                Hdnh::recover(explore_params(), pool, 1)
            }));
            let counts = fault::disarm();
            match outcome {
                Ok(_) => Ok(counts),
                Err(payload) => Err(format!(
                    "recovery panicked while recording: {}",
                    panic_message(&*payload)
                )),
            }
        }
        Err(e) => {
            fault::disarm();
            Err(e)
        }
    }
}

/// Base crashes used to seed the recovery-injection phase: a stable-state
/// crash plus the three resize phases, so every `recover.*` branch runs.
fn recovery_bases() -> Vec<FaultPlan> {
    [
        "insert.published",
        "resize.allocated",
        "resize.bucket_migrated",
        "resize.swapped",
        "update.fallback.new_committed",
    ]
    .into_iter()
    .map(|site| FaultPlan {
        site: site.to_string(),
        hit: 1,
    })
    .collect()
}

/// Runs the full crash-point matrix. Progress (and failures) accumulate in
/// the returned report; `on_case` is invoked after every case (CLI progress
/// reporting — pass `|_| ()` when unused).
pub fn explore(cfg: &ExploreConfig, mut on_case: impl FnMut(&FaultCaseResult)) -> ExploreReport {
    let mut report = ExploreReport::default();
    // Injected panics are expected by the thousand; silence the default
    // printing hook for the duration (messages are captured in results).
    // The guard restores it even if the driver itself panics.
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            let prev = self.0.take().unwrap();
            let _ = std::panic::take_hook();
            std::panic::set_hook(prev);
        }
    }
    let _hook_guard = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));

    for mix in &cfg.mixes {
        let counts = match record_mix(mix) {
            Ok(c) => c,
            Err(e) => {
                let r = FaultCaseResult {
                    mix: mix.name.to_string(),
                    site: "<recording>".into(),
                    hit: 0,
                    seed: 0,
                    recovery_site: None,
                    pass: false,
                    detail: e,
                };
                on_case(&r);
                report.cases.push(r);
                continue;
            }
        };
        for (site, n) in &counts {
            *report.sites_seen.entry(site.to_string()).or_insert(0) += n;
        }
        for (site, n) in &counts {
            for hit in hit_samples(*n) {
                for &seed in &cfg.crash_seeds {
                    let plan = FaultPlan {
                        site: site.to_string(),
                        hit,
                    };
                    let r = run_single(mix, &plan, seed, None, cfg.threads);
                    on_case(&r);
                    report.cases.push(r);
                }
            }
        }
    }

    if cfg.explore_recovery {
        // Phase two: crash during recovery. Use the resize-heavy mix so
        // recovery has real migration work to interrupt.
        let mix = cfg
            .mixes
            .iter()
            .find(|m| m.name == "fill-resize")
            .cloned()
            .unwrap_or_else(|| OpMix::builtin().remove(2));
        let seed = *cfg.crash_seeds.first().unwrap_or(&1);
        for base in recovery_bases() {
            let rcounts = match record_recovery(&mix, &base, seed) {
                Ok(c) => c,
                Err(e) => {
                    let r = FaultCaseResult {
                        mix: mix.name.to_string(),
                        site: base.site.clone(),
                        hit: base.hit,
                        seed,
                        recovery_site: Some(("<recording>".into(), 0)),
                        pass: false,
                        detail: e,
                    };
                    on_case(&r);
                    report.cases.push(r);
                    continue;
                }
            };
            for (site, n) in &rcounts {
                *report.sites_seen.entry(site.to_string()).or_insert(0) += n;
                // Only inject at recovery-specific sites in phase two; the
                // NVM primitives were already swept in phase one and fire
                // thousands of times during migration.
                if !site.starts_with("recover.") {
                    continue;
                }
                for hit in hit_samples(*n) {
                    let rp = FaultPlan {
                        site: site.to_string(),
                        hit,
                    };
                    let r = run_single(&mix, &base, seed, Some(&rp), cfg.threads);
                    on_case(&r);
                    report.cases.push(r);
                }
            }
        }
    }

    report
}

// No unit tests here: arming the process-global registry with live site
// names would crash unrelated lib tests running ops concurrently in the
// same binary. All driver coverage lives in `tests/fault_matrix.rs`, which
// is its own process.

/// Records per-site hit counts for one mix without crashing (exposed for
/// the matrix test and `faultrun --sites`).
pub fn record_sites(mix: &OpMix) -> Result<BTreeMap<&'static str, u64>, String> {
    record_mix(mix)
}
