//! Persistent metadata block (paper §3.7).
//!
//! A small NVM region holding everything recovery needs that cannot be
//! recomputed from the levels: the resize state machine (`level number` in
//! the paper's terms), level geometry and the rehash progress cursor. Every
//! field is an 8-byte word updated with a failure-atomic store + persist.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hdnh_nvm::{NvmOptions, NvmRegion};

/// Magic value identifying an HDNH pool ("HDNH" ASCII, versioned).
pub const MAGIC: u64 = 0x4844_4E48_0000_0001;

/// Resize state machine. The values mirror the paper's "level number":
/// 2 = a new level is being allocated, 3 = rehashing is in progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeState {
    /// Normal two-level operation.
    Stable,
    /// New top level requested but the level pointer is not yet published
    /// (the paper's level number 2).
    Allocating,
    /// Bottom-level items are being rehashed into the new top (level
    /// number 3).
    Rehashing,
}

impl ResizeState {
    fn to_u64(self) -> u64 {
        match self {
            ResizeState::Stable => 1,
            ResizeState::Allocating => 2,
            ResizeState::Rehashing => 3,
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            2 => ResizeState::Allocating,
            3 => ResizeState::Rehashing,
            _ => ResizeState::Stable,
        }
    }
}

const OFF_MAGIC: usize = 0;
const OFF_STATE: usize = 8;
const OFF_TOP_SEGMENTS: usize = 16;
const OFF_BOTTOM_SEGMENTS: usize = 24;
const OFF_REHASH_PROGRESS: usize = 32;
const OFF_NEW_TOP_SEGMENTS: usize = 40;
const OFF_SEGMENT_BYTES: usize = 48;
/// Region size (one cacheline is enough; round to a block).
pub const META_BYTES: usize = 256;

/// Typed accessor over the metadata region.
#[derive(Clone, Debug)]
pub struct Meta {
    region: Arc<NvmRegion>,
}

impl Meta {
    /// Formats a fresh metadata block. Panics on backend allocation
    /// failure; fallible construction is [`Meta::try_create`].
    pub fn create(
        opts: &NvmOptions,
        top_segments: usize,
        bottom_segments: usize,
        segment_bytes: usize,
    ) -> Self {
        Self::try_create(opts, top_segments, bottom_segments, segment_bytes)
            .unwrap_or_else(|e| panic!("meta allocation failed: {e}"))
    }

    /// Formats a fresh metadata block, surfacing backend (pool-file)
    /// failures as [`HdnhError::Io`](crate::HdnhError::Io).
    pub fn try_create(
        opts: &NvmOptions,
        top_segments: usize,
        bottom_segments: usize,
        segment_bytes: usize,
    ) -> Result<Self, crate::HdnhError> {
        let region = Arc::new(NvmRegion::alloc(META_BYTES, opts, "meta")?);
        let m = Meta { region };
        m.store(OFF_STATE, ResizeState::Stable.to_u64());
        m.store(OFF_TOP_SEGMENTS, top_segments as u64);
        m.store(OFF_BOTTOM_SEGMENTS, bottom_segments as u64);
        m.store(OFF_REHASH_PROGRESS, u64::MAX);
        m.store(OFF_NEW_TOP_SEGMENTS, 0);
        m.store(OFF_SEGMENT_BYTES, segment_bytes as u64);
        // Magic last: a pool is valid only once fully formatted.
        m.store(OFF_MAGIC, MAGIC);
        Ok(m)
    }

    /// Adopts an existing metadata region (recovery).
    pub fn open(region: Arc<NvmRegion>) -> Self {
        let m = Meta { region };
        assert_eq!(m.load(OFF_MAGIC), MAGIC, "not an HDNH pool (bad magic)");
        m
    }

    /// The backing region.
    pub fn region(&self) -> &Arc<NvmRegion> {
        &self.region
    }

    #[inline]
    fn store(&self, off: usize, v: u64) {
        self.region.atomic_store_u64(off, v, Ordering::Release);
        self.region.persist(off, 8);
        self.region.assert_persisted(off, 8);
    }

    #[inline]
    fn load(&self, off: usize) -> u64 {
        // Metadata is tiny and hot; model it as cache-resident.
        self.region.atomic_load_u64_cached(off, Ordering::Acquire)
    }

    /// Current resize state.
    pub fn state(&self) -> ResizeState {
        ResizeState::from_u64(self.load(OFF_STATE))
    }

    /// Persists a state transition.
    pub fn set_state(&self, s: ResizeState) {
        self.store(OFF_STATE, s.to_u64());
    }

    /// Top-level segment count.
    pub fn top_segments(&self) -> usize {
        self.load(OFF_TOP_SEGMENTS) as usize
    }

    /// Bottom-level segment count.
    pub fn bottom_segments(&self) -> usize {
        self.load(OFF_BOTTOM_SEGMENTS) as usize
    }

    /// Segment size in bytes.
    pub fn segment_bytes(&self) -> usize {
        self.load(OFF_SEGMENT_BYTES) as usize
    }

    /// Publishes the post-resize geometry (called at resize finalization).
    pub fn set_geometry(&self, top_segments: usize, bottom_segments: usize) {
        self.store(OFF_TOP_SEGMENTS, top_segments as u64);
        self.store(OFF_BOTTOM_SEGMENTS, bottom_segments as u64);
    }

    /// Planned size of the in-flight new top level.
    pub fn new_top_segments(&self) -> usize {
        self.load(OFF_NEW_TOP_SEGMENTS) as usize
    }

    /// Records the planned new-top size (persisted *before* entering
    /// [`ResizeState::Allocating`], so recovery always knows the size).
    pub fn set_new_top_segments(&self, n: usize) {
        self.store(OFF_NEW_TOP_SEGMENTS, n as u64);
    }

    /// Next bottom-level bucket to migrate (`u64::MAX` = no rehash active).
    pub fn rehash_progress(&self) -> Option<usize> {
        match self.load(OFF_REHASH_PROGRESS) {
            u64::MAX => None,
            v => Some(v as usize),
        }
    }

    /// Persists the migration cursor (paper: "records the indexes of
    /// segment and bucket … when successfully rehashing items in a bucket").
    pub fn set_rehash_progress(&self, bucket: Option<usize>) {
        self.store(
            OFF_REHASH_PROGRESS,
            bucket.map(|b| b as u64).unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_then_open_roundtrip() {
        let m = Meta::create(&NvmOptions::fast(), 8, 4, 16384);
        assert_eq!(m.state(), ResizeState::Stable);
        assert_eq!(m.top_segments(), 8);
        assert_eq!(m.bottom_segments(), 4);
        assert_eq!(m.segment_bytes(), 16384);
        assert_eq!(m.rehash_progress(), None);
        let m2 = Meta::open(Arc::clone(m.region()));
        assert_eq!(m2.top_segments(), 8);
    }

    #[test]
    #[should_panic(expected = "bad magic")]
    fn open_unformatted_panics() {
        let region = Arc::new(NvmRegion::new(META_BYTES, NvmOptions::fast()));
        Meta::open(region);
    }

    #[test]
    fn state_machine_roundtrip() {
        let m = Meta::create(&NvmOptions::fast(), 2, 1, 1024);
        for s in [
            ResizeState::Allocating,
            ResizeState::Rehashing,
            ResizeState::Stable,
        ] {
            m.set_state(s);
            assert_eq!(m.state(), s);
        }
    }

    #[test]
    fn progress_cursor_roundtrip() {
        let m = Meta::create(&NvmOptions::fast(), 2, 1, 1024);
        m.set_rehash_progress(Some(17));
        assert_eq!(m.rehash_progress(), Some(17));
        m.set_rehash_progress(None);
        assert_eq!(m.rehash_progress(), None);
    }

    #[test]
    fn metadata_survives_crash_because_every_store_persists() {
        let m = Meta::create(&NvmOptions::strict(), 2, 1, 1024);
        m.set_state(ResizeState::Rehashing);
        m.set_rehash_progress(Some(5));
        m.region().crash_with(|_| false);
        let m2 = Meta::open(Arc::clone(m.region()));
        assert_eq!(m2.state(), ResizeState::Rehashing);
        assert_eq!(m2.rehash_progress(), Some(5));
    }
}
