//! Synchronous write mechanism (paper §3.4, figure 7).
//!
//! Every write operation is logically executed by **two** threads: the
//! foreground thread writes the non-volatile table and the OCF, while a
//! background thread writes the hot table. The two communicate through a
//! `sync_write_signal`: the foreground thread initializes it to
//! *incomplete*, hands the hot-table work to the background pool, does its
//! NVM work, and then waits for the signal to read *completion* before
//! returning. Because the NVM write (flushes, fences, media latency)
//! dominates, the DRAM hot-table write is fully hidden behind it.
//!
//! The pool owns `n` long-lived workers fed by a crossbeam MPMC channel —
//! the paper's "the two threads will be returned to the thread pool".
//! Each foreground thread reuses one signal allocation across operations
//! (it can only have one write in flight).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Record};
use hdnh_obs as obs;

use crate::hot::HotTable;

/// The hot-table side of one write operation.
pub enum HotOp {
    /// Insert or in-place update of a record.
    Put {
        /// The record to cache.
        rec: Record,
        /// Primary key hash.
        h1: u64,
        /// Secondary key hash.
        h2: u64,
        /// Key fingerprint.
        fp: u8,
    },
    /// Removal of a key.
    Delete {
        /// The key to evict.
        key: Key,
        /// Primary key hash.
        h1: u64,
        /// Secondary key hash.
        h2: u64,
        /// Key fingerprint.
        fp: u8,
    },
}

/// The `sync_write_signal`: 0 = incomplete, 1 = completion.
pub struct SyncSignal(AtomicU32);

impl SyncSignal {
    fn new() -> Arc<Self> {
        Arc::new(SyncSignal(AtomicU32::new(1)))
    }

    #[inline]
    fn arm(&self) {
        self.0.store(0, Ordering::Release);
    }

    #[inline]
    fn complete(&self) {
        self.0.store(1, Ordering::Release);
    }

    /// Foreground-side wait. The hot-table write is a few hundred ns of
    /// DRAM work, so spin first — parking would cost more than the wait —
    /// but yield once the spin budget is exhausted so an oversubscribed
    /// machine still schedules the background worker.
    #[inline]
    fn wait(&self) {
        if self.0.load(Ordering::Acquire) == 1 {
            // The DRAM half finished strictly inside the NVM half's shadow:
            // the overlap the paper's figure 7 argues for.
            obs::count(obs::Counter::SyncOverlapWin);
            return;
        }
        obs::count(obs::Counter::SyncOverlapWait);
        let mut spins = 0u32;
        while self.0.load(Ordering::Acquire) == 0 {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

struct Job {
    op: HotOp,
    hot: Arc<HotTable>,
    signal: Arc<SyncSignal>,
}

/// The background writer pool.
pub struct SyncWriter {
    tx: Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    /// One reusable signal per foreground thread (one write in flight at a
    /// time per thread, so reuse is safe).
    static SIGNAL: RefCell<Option<Arc<SyncSignal>>> = const { RefCell::new(None) };
}

impl SyncWriter {
    /// Spawns `n_workers` background threads.
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers >= 1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..n_workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("hdnh-bg-{i}"))
                    .spawn(move || {
                        let mut rng = XorShift64Star::new(0xB6_0000 + i as u64);
                        let mut run = |job: Job| {
                            match job.op {
                                HotOp::Put { rec, h1, h2, fp } => {
                                    job.hot.put(&rec, h1, h2, fp, &mut rng);
                                }
                                HotOp::Delete { key, h1, h2, fp } => {
                                    job.hot.delete(&key, h1, h2, fp);
                                }
                            }
                            job.signal.complete();
                        };
                        // Spin-poll while the write stream is hot (a parked
                        // worker would add a futex wakeup to every write's
                        // critical path); park only after going idle.
                        'outer: loop {
                            for _ in 0..4096 {
                                match rx.try_recv() {
                                    Ok(job) => {
                                        run(job);
                                        continue 'outer;
                                    }
                                    Err(crossbeam::channel::TryRecvError::Empty) => {
                                        std::hint::spin_loop()
                                    }
                                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                                        break 'outer
                                    }
                                }
                            }
                            match rx.recv() {
                                Ok(job) => run(job),
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn background writer")
            })
            .collect();
        SyncWriter { tx, workers }
    }

    /// Dispatches the hot-table half of a write and returns a completion
    /// handle the foreground thread must [`wait`](SyncHandle::wait) on
    /// before acknowledging the operation.
    pub fn dispatch(&self, hot: &Arc<HotTable>, op: HotOp) -> SyncHandle {
        let signal = SIGNAL.with(|s| {
            s.borrow_mut()
                .get_or_insert_with(SyncSignal::new)
                .clone()
        });
        signal.arm();
        self.tx
            .send(Job {
                op,
                hot: Arc::clone(hot),
                signal: Arc::clone(&signal),
            })
            .expect("background pool alive");
        SyncHandle { signal }
    }
}

impl Drop for SyncWriter {
    fn drop(&mut self) {
        // Disconnect the channel; workers drain and exit.
        let (tx, _) = unbounded();
        drop(std::mem::replace(&mut self.tx, tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Foreground handle for one in-flight synchronous write.
pub struct SyncHandle {
    signal: Arc<SyncSignal>,
}

impl SyncHandle {
    /// Blocks (spins) until the background half completed.
    #[inline]
    pub fn wait(self) {
        self.signal.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::HotPolicy;
    use hdnh_common::hash::KeyHashes;
    use hdnh_common::Value;

    #[test]
    fn dispatch_applies_put() {
        let pool = SyncWriter::new(2);
        let hot = Arc::new(HotTable::new(64, 4, HotPolicy::Rafl));
        let key = Key::from_u64(1);
        let h = KeyHashes::of(&key);
        let handle = pool.dispatch(
            &hot,
            HotOp::Put {
                rec: Record::new(key, Value::from_u64(11)),
                h1: h.h1,
                h2: h.h2,
                fp: h.fp,
            },
        );
        handle.wait();
        assert_eq!(hot.search(&key, h.h1, h.h2, h.fp).unwrap().as_u64(), 11);
    }

    #[test]
    fn dispatch_applies_delete() {
        let pool = SyncWriter::new(1);
        let hot = Arc::new(HotTable::new(64, 4, HotPolicy::Rafl));
        let key = Key::from_u64(2);
        let h = KeyHashes::of(&key);
        pool.dispatch(
            &hot,
            HotOp::Put {
                rec: Record::new(key, Value::from_u64(5)),
                h1: h.h1,
                h2: h.h2,
                fp: h.fp,
            },
        )
        .wait();
        pool.dispatch(
            &hot,
            HotOp::Delete {
                key,
                h1: h.h1,
                h2: h.h2,
                fp: h.fp,
            },
        )
        .wait();
        assert!(hot.search(&key, h.h1, h.h2, h.fp).is_none());
    }

    #[test]
    fn wait_returns_only_after_completion() {
        // The signal semantics themselves: arm → not done; complete → done.
        let s = SyncSignal::new();
        s.arm();
        assert_eq!(s.0.load(Ordering::Acquire), 0);
        s.complete();
        s.wait(); // must not hang
    }

    #[test]
    fn many_threads_many_ops() {
        let pool = Arc::new(SyncWriter::new(4));
        let hot = Arc::new(HotTable::new(4096, 4, HotPolicy::Rafl));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let pool = Arc::clone(&pool);
            let hot = Arc::clone(&hot);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let key = Key::from_u64(tid * 1_000_000 + i);
                    let h = KeyHashes::of(&key);
                    pool.dispatch(
                        &hot,
                        HotOp::Put {
                            rec: Record::new(key, Value::from_u64(i)),
                            h1: h.h1,
                            h2: h.h2,
                            fp: h.fp,
                        },
                    )
                    .wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(!hot.is_empty());
    }

    #[test]
    fn drop_joins_workers() {
        let pool = SyncWriter::new(3);
        drop(pool); // must not hang
    }
}
