//! The DRAM hot table with RAFL replacement (paper §3.3, figures 5–6).
//!
//! Structurally a shrunken copy of the non-volatile table: two levels, but
//! with **one** candidate bucket per level (single hash per level — the
//! paper trades associativity for cache-miss cost, figure 11b) and fewer
//! slots per bucket (default 4). Each slot carries the figure-5 metadata —
//! bitmap, opmap, version — plus the `hotmap` bit:
//!
//! * a slot's **hot bit is set when a search hits it** ("the item has been
//!   searched after it was added"),
//! * on insertion into a full bucket, **RAFL** evicts a cold slot if one
//!   exists (figure 6a); if every slot is hot it evicts a random slot *and
//!   clears every hot bit in the bucket* (figure 6b), preventing long-term
//!   squatters.
//!
//! An LRU variant ([`crate::HotPolicy::Lru`]) exists solely for figure 12's
//! RAFL-vs-LRU comparison. It is the design the paper compares against
//! (Rewo-style cached table): a **global doubly-linked recency list** over
//! all cached slots, protected by one mutex. Every hit pays the lock plus a
//! move-to-front (several dependent pointer writes), and the list costs
//! 24 bytes per slot — exactly the two drawbacks the paper charges LRU with
//! (§1: "LRU list consumes a lot of memory" / "cannot cope with
//! random-access workloads"). RAFL's hit path is a single relaxed
//! `fetch_or` on metadata already in cache. Victims are chosen inside the
//! candidate bucket by least recency stamp.
//!
//! Concurrency follows the same per-slot optimistic protocol as the OCF
//! (§3.6): writers CAS the busy bit, readers are seqlock-validated. All
//! eviction/insertion is best-effort — this is a cache; under contention an
//! operation may simply skip, never block. Concurrent `put`s of the *same*
//! key may transiently duplicate a cached entry; the non-volatile table is
//! always authoritative and the cache converges on later puts/evictions.

use std::sync::atomic::{fence, AtomicU32, Ordering};

use hdnh_common::rng::XorShift64Star;
use hdnh_common::{Key, Record, Value};
use hdnh_obs as obs;
use parking_lot::Mutex;

use crate::params::HotPolicy;

/// Slot metadata word (u32): VALID | BUSY | HOT | version(6) | fp(8).
const M_VALID: u32 = 1;
const M_BUSY: u32 = 1 << 1;
const M_HOT: u32 = 1 << 2;
const VER_SHIFT: u32 = 3;
const VER_MASK: u32 = 0x3F << VER_SHIFT;
const FP_SHIFT: u32 = 16;
const FP_MASK: u32 = 0xFF << FP_SHIFT;
/// Readers ignore the hot bit when revalidating: setting it on a hit must
/// not invalidate concurrent readers of the same slot.
const SNAPSHOT_MASK: u32 = !M_HOT;

#[inline]
fn m_pack(valid: bool, busy: bool, hot: bool, ver: u32, fp: u8) -> u32 {
    (valid as u32)
        | ((busy as u32) << 1)
        | ((hot as u32) << 2)
        | ((ver & 0x3F) << VER_SHIFT)
        | ((fp as u32) << FP_SHIFT)
}

#[inline]
fn m_valid(m: u32) -> bool {
    m & M_VALID != 0
}
#[inline]
fn m_busy(m: u32) -> bool {
    m & M_BUSY != 0
}
#[inline]
fn m_hot(m: u32) -> bool {
    m & M_HOT != 0
}
#[inline]
fn m_ver(m: u32) -> u32 {
    (m & VER_MASK) >> VER_SHIFT
}
#[inline]
fn m_fp(m: u32) -> u8 {
    ((m & FP_MASK) >> FP_SHIFT) as u8
}

/// Record payload storage: 4 atomic words = 32 bytes ≥ 31-byte record.
const WORDS_PER_SLOT: usize = 4;

const LRU_NONE: u32 = u32::MAX;

/// The global recency list (LRU policy only): an intrusive doubly-linked
/// list over global slot ids, plus a monotonic stamp per slot for in-bucket
/// victim selection. One mutex guards the whole list — the serialization a
/// list-based LRU imposes on every hit.
struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    clock: u64,
}

impl LruList {
    fn new(n: usize) -> Self {
        LruList {
            prev: vec![LRU_NONE; n],
            next: vec![LRU_NONE; n],
            head: LRU_NONE,
            tail: LRU_NONE,
            clock: 1,
        }
    }

    fn unlink(&mut self, id: u32) {
        let (p, n) = (self.prev[id as usize], self.next[id as usize]);
        if p != LRU_NONE {
            self.next[p as usize] = n;
        } else if self.head == id {
            self.head = n;
        }
        if n != LRU_NONE {
            self.prev[n as usize] = p;
        } else if self.tail == id {
            self.tail = p;
        }
        self.prev[id as usize] = LRU_NONE;
        self.next[id as usize] = LRU_NONE;
    }

    fn push_front(&mut self, id: u32) -> u64 {
        self.next[id as usize] = self.head;
        self.prev[id as usize] = LRU_NONE;
        if self.head != LRU_NONE {
            self.prev[self.head as usize] = id;
        }
        self.head = id;
        if self.tail == LRU_NONE {
            self.tail = id;
        }
        self.clock += 1;
        self.clock
    }

    fn touch(&mut self, id: u32) -> u64 {
        if self.head == id {
            self.clock += 1;
            return self.clock;
        }
        self.unlink(id);
        self.push_front(id)
    }
}

struct HotLevel {
    n_buckets: usize,
    slots: usize,
    meta: Box<[AtomicU32]>,
    data: Box<[std::sync::atomic::AtomicU64]>,
}

impl HotLevel {
    fn new(n_buckets: usize, slots: usize) -> Self {
        let n = n_buckets * slots;
        let mut meta = Vec::with_capacity(n);
        meta.resize_with(n, || AtomicU32::new(0));
        let mut data = Vec::with_capacity(n * WORDS_PER_SLOT);
        data.resize_with(n * WORDS_PER_SLOT, || std::sync::atomic::AtomicU64::new(0));
        HotLevel {
            n_buckets,
            slots,
            meta: meta.into_boxed_slice(),
            data: data.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot_idx(&self, bucket: usize, slot: usize) -> usize {
        bucket * self.slots + slot
    }

    fn read_data(&self, idx: usize) -> Record {
        let mut bytes = [0u8; WORDS_PER_SLOT * 8];
        for w in 0..WORDS_PER_SLOT {
            bytes[w * 8..w * 8 + 8].copy_from_slice(
                &self.data[idx * WORDS_PER_SLOT + w]
                    .load(Ordering::Relaxed)
                    .to_le_bytes(),
            );
        }
        Record::from_bytes(bytes[..hdnh_common::RECORD_LEN].try_into().unwrap())
    }

    fn write_data(&self, idx: usize, rec: &Record) {
        let mut bytes = [0u8; WORDS_PER_SLOT * 8];
        bytes[..hdnh_common::RECORD_LEN].copy_from_slice(&rec.to_bytes());
        for w in 0..WORDS_PER_SLOT {
            self.data[idx * WORDS_PER_SLOT + w].store(
                u64::from_le_bytes(bytes[w * 8..w * 8 + 8].try_into().unwrap()),
                Ordering::Relaxed,
            );
        }
    }
}

/// The hot table: two levels, single candidate bucket per level.
///
/// ```
/// use hdnh::{HotPolicy, HotTable};
/// use hdnh_common::hash::KeyHashes;
/// use hdnh_common::{Key, Record, Value};
/// use hdnh_common::rng::XorShift64Star;
///
/// let hot = HotTable::new(256, 4, HotPolicy::Rafl);
/// let key = Key::from_u64(7);
/// let h = KeyHashes::of(&key);
/// let mut rng = XorShift64Star::new(1);
/// hot.put(&Record::new(key, Value::from_u64(70)), h.h1, h.h2, h.fp, &mut rng);
/// assert_eq!(hot.search(&key, h.h1, h.h2, h.fp).unwrap().as_u64(), 70);
/// assert_eq!(hot.is_hot(&key, h.h1, h.h2, h.fp), Some(true), "hit set the hotmap bit");
/// ```
pub struct HotTable {
    levels: [HotLevel; 2],
    policy: HotPolicy,
    /// Global recency list (LRU policy only).
    lru: Option<Mutex<LruList>>,
    /// Per-slot recency stamps, indexed by global slot id (LRU only).
    stamps: Box<[std::sync::atomic::AtomicU64]>,
}

impl HotTable {
    /// Builds a hot table holding roughly `total_slots` records in buckets
    /// of `slots_per_bucket`, split 2:1 between the levels like the
    /// non-volatile table.
    pub fn new(total_slots: usize, slots_per_bucket: usize, policy: HotPolicy) -> Self {
        assert!((1..=8).contains(&slots_per_bucket));
        let total_buckets = (total_slots / slots_per_bucket).max(2);
        let top = (total_buckets * 2 / 3).max(1);
        let bottom = (total_buckets - top).max(1);
        let n_slots = (top + bottom) * slots_per_bucket;
        let lru = policy == HotPolicy::Lru;
        let mut stamps = Vec::new();
        if lru {
            stamps.resize_with(n_slots, || std::sync::atomic::AtomicU64::new(0));
        }
        HotTable {
            levels: [
                HotLevel::new(top, slots_per_bucket),
                HotLevel::new(bottom, slots_per_bucket),
            ],
            policy,
            lru: lru.then(|| Mutex::new(LruList::new(n_slots))),
            stamps: stamps.into_boxed_slice(),
        }
    }

    /// Global slot id of `(level, idx)` — indexes the LRU bookkeeping.
    #[inline]
    fn gid(&self, level: usize, idx: usize) -> u32 {
        (if level == 0 {
            idx
        } else {
            self.levels[0].n_buckets * self.levels[0].slots + idx
        }) as u32
    }

    /// LRU hit/insert path: global list move-to-front + stamp store — the
    /// maintenance overhead figure 12 measures.
    #[inline]
    fn lru_touch(&self, level: usize, idx: usize) {
        let gid = self.gid(level, idx);
        let stamp = self.lru.as_ref().expect("LRU policy").lock().touch(gid);
        self.stamps[gid as usize].store(stamp, Ordering::Relaxed);
    }

    fn lru_remove(&self, level: usize, idx: usize) {
        let gid = self.gid(level, idx);
        self.lru.as_ref().expect("LRU policy").lock().unlink(gid);
        self.stamps[gid as usize].store(0, Ordering::Relaxed);
    }

    /// Replacement policy in force.
    pub fn policy(&self) -> HotPolicy {
        self.policy
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.levels.iter().map(|l| l.n_buckets * l.slots).sum()
    }

    /// Live records (linear scan; diagnostics only).
    pub fn len(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.meta
                    .iter()
                    .filter(|m| m_valid(m.load(Ordering::Relaxed)))
                    .count()
            })
            .sum()
    }

    /// `true` when no records are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate DRAM footprint in bytes, including LRU bookkeeping —
    /// makes the paper's "LRU consumes a lot of memory space" measurable.
    pub fn footprint_bytes(&self) -> usize {
        let base: usize = self
            .levels
            .iter()
            .map(|l| l.meta.len() * 4 + l.data.len() * 8)
            .sum();
        // LRU bookkeeping: prev + next (4 B each) + stamp (8 B) per slot.
        base + self.stamps.len() * 16 + if self.lru.is_some() { self.stamps.len() * 8 } else { 0 }
    }

    #[inline]
    fn bucket_of(&self, level: usize, h1: u64, h2: u64) -> usize {
        // One hash per level (paper §3.3): h1 addresses the top level, h2
        // the bottom level. h1's low byte is the fingerprint, so shift it
        // out of the index (see `Level::candidates` for the bit budget).
        let h = if level == 0 { h1 >> 8 } else { h2 };
        (h % self.levels[level].n_buckets as u64) as usize
    }

    #[inline]
    fn touch(&self, level: usize, idx: usize) {
        match self.policy {
            HotPolicy::Rafl => {
                // RAFL hit path: one relaxed RMW. Readers mask this bit out
                // so no one is invalidated.
                self.levels[level].meta[idx].fetch_or(M_HOT, Ordering::Relaxed);
            }
            HotPolicy::Lru => self.lru_touch(level, idx),
        }
    }

    /// Point lookup. A hit marks the slot hot (RAFL) or refreshes its
    /// recency (LRU).
    pub fn search(&self, key: &Key, h1: u64, h2: u64, fp: u8) -> Option<Value> {
        for level in 0..2 {
            let lv = &self.levels[level];
            let bucket = self.bucket_of(level, h1, h2);
            for slot in 0..lv.slots {
                let idx = lv.slot_idx(bucket, slot);
                let m1 = lv.meta[idx].load(Ordering::Acquire);
                if !m_valid(m1) || m_busy(m1) || m_fp(m1) != fp {
                    continue;
                }
                let rec = lv.read_data(idx);
                fence(Ordering::Acquire);
                let m2 = lv.meta[idx].load(Ordering::Relaxed);
                if (m1 & SNAPSHOT_MASK) != (m2 & SNAPSHOT_MASK) {
                    continue; // concurrent writer; treat as miss (cache!)
                }
                if rec.key == *key {
                    self.touch(level, idx);
                    obs::count(obs::Counter::HotHit);
                    return Some(rec.value);
                }
            }
        }
        obs::count(obs::Counter::HotMiss);
        None
    }

    /// Insert-or-update. Best-effort: under lock contention the write is
    /// skipped (the cache self-heals on the next search miss).
    ///
    /// Matches the paper's background-thread behaviour: update in place if
    /// the key is cached, otherwise insert, evicting per RAFL/LRU when the
    /// candidate bucket is full.
    pub fn put(&self, rec: &Record, h1: u64, h2: u64, fp: u8, rng: &mut XorShift64Star) {
        // Phase 1: in-place update if present. A slot whose fingerprint
        // matches must be settled, not skipped: walking past the key's
        // live copy (because a search's hot-bit RMW broke our CAS, or an
        // eviction holds the slot) and inserting a second copy below would
        // leave a stale duplicate that search could serve forever.
        for level in 0..2 {
            let lv = &self.levels[level];
            let bucket = self.bucket_of(level, h1, h2);
            for slot in 0..lv.slots {
                let idx = lv.slot_idx(bucket, slot);
                loop {
                    let m = lv.meta[idx].load(Ordering::Acquire);
                    if !m_valid(m) || m_fp(m) != fp {
                        break; // cannot be this key's copy — next slot
                    }
                    if m_busy(m) {
                        std::hint::spin_loop();
                        continue; // short DRAM critical section; wait it out
                    }
                    if let Some(locked) = self.try_lock(level, idx, m) {
                        if lv.read_data(idx).key == rec.key {
                            lv.write_data(idx, rec);
                            self.commit(level, idx, locked, true, fp, m_hot(locked));
                            if self.policy == HotPolicy::Lru {
                                self.lru_touch(level, idx);
                            }
                            return;
                        }
                        self.unlock_restore(level, idx, locked);
                        break; // fingerprint collision with another key
                    }
                    // CAS lost to a toucher or writer: reload and retry.
                }
            }
        }
        // Phase 2: empty slot in either candidate bucket.
        for level in 0..2 {
            let lv = &self.levels[level];
            let bucket = self.bucket_of(level, h1, h2);
            for slot in 0..lv.slots {
                let idx = lv.slot_idx(bucket, slot);
                let m = lv.meta[idx].load(Ordering::Relaxed);
                if m_valid(m) || m_busy(m) {
                    continue;
                }
                if let Some(locked) = self.try_lock(level, idx, m) {
                    lv.write_data(idx, rec);
                    self.commit(level, idx, locked, true, fp, false);
                    if self.policy == HotPolicy::Lru {
                        self.lru_touch(level, idx);
                    }
                    return;
                }
            }
        }
        // Phase 3: evict in the top-level candidate bucket.
        self.evict_and_insert(0, rec, h1, h2, fp, rng);
    }

    fn evict_and_insert(
        &self,
        level: usize,
        rec: &Record,
        h1: u64,
        h2: u64,
        fp: u8,
        rng: &mut XorShift64Star,
    ) {
        let lv = &self.levels[level];
        let bucket = self.bucket_of(level, h1, h2);

        let (slot, reset_hot) = match self.policy {
            HotPolicy::Rafl => {
                // Figure 6(a): any cold slot.
                let cold = (0..lv.slots).find(|&s| {
                    let m = lv.meta[lv.slot_idx(bucket, s)].load(Ordering::Relaxed);
                    m_valid(m) && !m_busy(m) && !m_hot(m)
                });
                match cold {
                    Some(s) => (s, false),
                    // Figure 6(b): all hot — random victim, then reset the
                    // bucket's hot bits.
                    None => (rng.next_below(lv.slots as u32) as usize, true),
                }
            }
            HotPolicy::Lru => {
                // Least recency stamp among usable slots of the bucket.
                let victim = (0..lv.slots)
                    .filter(|&s| {
                        let m = lv.meta[lv.slot_idx(bucket, s)].load(Ordering::Relaxed);
                        m_valid(m) && !m_busy(m)
                    })
                    .min_by_key(|&s| {
                        self.stamps[self.gid(level, lv.slot_idx(bucket, s)) as usize]
                            .load(Ordering::Relaxed)
                    });
                match victim {
                    Some(s) => (s, false),
                    None => {
                        obs::count(obs::Counter::HotPutSkip);
                        return; // everything busy: skip
                    }
                }
            }
        };

        let idx = lv.slot_idx(bucket, slot);
        let m = lv.meta[idx].load(Ordering::Relaxed);
        if m_busy(m) {
            obs::count(obs::Counter::HotPutSkip);
            return; // contended: skip, stay best-effort
        }
        if let Some(locked) = self.try_lock(level, idx, m) {
            lv.write_data(idx, rec);
            self.commit(level, idx, locked, true, fp, false);
            match self.policy {
                HotPolicy::Rafl => {
                    if reset_hot {
                        obs::count(obs::Counter::HotEvictRandom);
                        // "After that we set all hotmaps of the bucket to 0"
                        // — stop hot squatters monopolising the bucket.
                        for s in 0..lv.slots {
                            lv.meta[lv.slot_idx(bucket, s)].fetch_and(!M_HOT, Ordering::Relaxed);
                        }
                        obs::count(obs::Counter::HotHotmapClear);
                    } else {
                        obs::count(obs::Counter::HotEvictCold);
                    }
                }
                HotPolicy::Lru => self.lru_touch(level, idx),
            }
        } else {
            obs::count(obs::Counter::HotPutSkip);
        }
    }

    /// Removes `key` from the cache if present. Like `put`'s phase 1, a
    /// fingerprint-matching slot is settled rather than skipped: leaving
    /// the copy behind on CAS contention would resurrect a removed key.
    pub fn delete(&self, key: &Key, h1: u64, h2: u64, fp: u8) {
        for level in 0..2 {
            let lv = &self.levels[level];
            let bucket = self.bucket_of(level, h1, h2);
            for slot in 0..lv.slots {
                let idx = lv.slot_idx(bucket, slot);
                loop {
                    let m = lv.meta[idx].load(Ordering::Acquire);
                    if !m_valid(m) || m_fp(m) != fp {
                        break;
                    }
                    if m_busy(m) {
                        std::hint::spin_loop();
                        continue;
                    }
                    if let Some(locked) = self.try_lock(level, idx, m) {
                        if lv.read_data(idx).key == *key {
                            self.commit(level, idx, locked, false, 0, false);
                            if self.policy == HotPolicy::Lru {
                                self.lru_remove(level, idx);
                            }
                            return;
                        }
                        self.unlock_restore(level, idx, locked);
                        break;
                    }
                }
            }
        }
    }

    // ---------------- slot lock protocol ----------------

    fn try_lock(&self, level: usize, idx: usize, expected: u32) -> Option<u32> {
        if m_busy(expected) {
            return None;
        }
        match self.levels[level].meta[idx].compare_exchange(
            expected,
            expected | M_BUSY,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                fence(Ordering::Release);
                Some(expected)
            }
            Err(_) => None,
        }
    }

    fn commit(&self, level: usize, idx: usize, locked: u32, valid: bool, fp: u8, hot: bool) {
        let next = m_pack(valid, false, hot, m_ver(locked).wrapping_add(1), fp);
        self.levels[level].meta[idx].store(next, Ordering::Release);
    }

    fn unlock_restore(&self, level: usize, idx: usize, locked: u32) {
        // Nothing was written; bump the version anyway (cheap, safe).
        let next = m_pack(
            m_valid(locked),
            false,
            m_hot(locked),
            m_ver(locked).wrapping_add(1),
            m_fp(locked),
        );
        self.levels[level].meta[idx].store(next, Ordering::Release);
    }

    /// Whether a cached slot for `key` currently has its hot bit set
    /// (test hook for the RAFL state machine; always `Some(false)` under
    /// LRU when present).
    pub fn is_hot(&self, key: &Key, h1: u64, h2: u64, fp: u8) -> Option<bool> {
        for level in 0..2 {
            let lv = &self.levels[level];
            let bucket = self.bucket_of(level, h1, h2);
            for slot in 0..lv.slots {
                let idx = lv.slot_idx(bucket, slot);
                let m = lv.meta[idx].load(Ordering::Acquire);
                if m_valid(m) && !m_busy(m) && m_fp(m) == fp && lv.read_data(idx).key == *key {
                    return Some(m_hot(m));
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for HotTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotTable")
            .field("capacity", &self.capacity())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdnh_common::hash::KeyHashes;

    fn hashes(id: u64) -> (Key, KeyHashes) {
        let k = Key::from_u64(id);
        let h = KeyHashes::of(&k);
        (k, h)
    }

    fn put(t: &HotTable, id: u64, val: u64, rng: &mut XorShift64Star) {
        let (k, h) = hashes(id);
        t.put(&Record::new(k, Value::from_u64(val)), h.h1, h.h2, h.fp, rng);
    }

    fn get(t: &HotTable, id: u64) -> Option<u64> {
        let (k, h) = hashes(id);
        t.search(&k, h.h1, h.h2, h.fp).map(|v| v.as_u64())
    }

    #[test]
    fn put_then_search() {
        let t = HotTable::new(64, 4, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(1);
        put(&t, 1, 10, &mut rng);
        put(&t, 2, 20, &mut rng);
        assert_eq!(get(&t, 1), Some(10));
        assert_eq!(get(&t, 2), Some(20));
        assert_eq!(get(&t, 3), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn put_updates_in_place() {
        let t = HotTable::new(64, 4, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(1);
        put(&t, 5, 50, &mut rng);
        put(&t, 5, 51, &mut rng);
        assert_eq!(get(&t, 5), Some(51));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let t = HotTable::new(64, 4, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(1);
        put(&t, 9, 90, &mut rng);
        let (k, h) = hashes(9);
        t.delete(&k, h.h1, h.h2, h.fp);
        assert_eq!(get(&t, 9), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn search_sets_hot_bit() {
        let t = HotTable::new(64, 4, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(1);
        put(&t, 7, 70, &mut rng);
        let (k, h) = hashes(7);
        assert_eq!(t.is_hot(&k, h.h1, h.h2, h.fp), Some(false), "cold on insert");
        assert_eq!(get(&t, 7), Some(70));
        assert_eq!(t.is_hot(&k, h.h1, h.h2, h.fp), Some(true), "hot after a hit");
    }

    #[test]
    fn rafl_prefers_cold_victims() {
        // Saturate a tiny table, heat one resident, then force evictions in
        // its bucket: the heated item must survive the first eviction.
        let t = HotTable::new(8, 2, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(2);
        let mut id = 0u64;
        while t.len() < t.capacity() && id < 100_000 {
            put(&t, id, id, &mut rng);
            id += 1;
        }
        // Find a level-0 resident and heat it.
        let resident = (0..id).find(|&i| {
            let (_, h) = hashes(i);
            let _ = get(&t, i); // heat the key; residency is checked structurally
            // resident in level 0?
            let b0 = t.bucket_of(0, h.h1, h.h2);
            let lv = &t.levels[0];
            (0..lv.slots).any(|s| {
                let m = lv.meta[lv.slot_idx(b0, s)].load(Ordering::Relaxed);
                m_valid(m) && lv.read_data(lv.slot_idx(b0, s)).key == Key::from_u64(i)
            })
        });
        let Some(hot_id) = resident else { return };
        assert!(get(&t, hot_id).is_some()); // heats it
        let (_, hh) = hashes(hot_id);
        let hot_bucket = t.bucket_of(0, hh.h1, hh.h2);
        // One insert targeting that bucket: must evict a COLD slot, not ours.
        let mut probe = 1_000_000u64;
        loop {
            let (_, h) = hashes(probe);
            if t.bucket_of(0, h.h1, h.h2) == hot_bucket {
                // Ensure phases 1/2 cannot place it elsewhere: only run the
                // eviction directly.
                let (k, _) = hashes(probe);
                t.evict_and_insert(
                    0,
                    &Record::new(k, Value::from_u64(1)),
                    h.h1,
                    h.h2,
                    h.fp,
                    &mut rng,
                );
                break;
            }
            probe += 1;
        }
        assert_eq!(get(&t, hot_id), Some(hot_id), "hot item was evicted while cold existed");
    }

    #[test]
    fn rafl_all_hot_random_eviction_resets_hotmap() {
        let t = HotTable::new(8, 4, HotPolicy::Rafl);
        let mut rng = XorShift64Star::new(3);
        // Saturate and heat everything.
        let mut id = 0u64;
        while t.len() < t.capacity() && id < 100_000 {
            put(&t, id, id, &mut rng);
            id += 1;
        }
        for probe in 0..id {
            let _ = get(&t, probe);
        }
        // Force an eviction in level 0, bucket of a fresh key.
        let newcomer = 5_000_000u64;
        let (k, h) = hashes(newcomer);
        let bucket = t.bucket_of(0, h.h1, h.h2);
        // Precondition: every valid slot in that bucket is hot.
        let lv = &t.levels[0];
        let all_hot = (0..lv.slots).all(|s| {
            let m = lv.meta[lv.slot_idx(bucket, s)].load(Ordering::Relaxed);
            !m_valid(m) || m_hot(m)
        });
        if !all_hot {
            return; // saturation raced; nothing to assert
        }
        t.evict_and_insert(0, &Record::new(k, Value::from_u64(1)), h.h1, h.h2, h.fp, &mut rng);
        // Postcondition (figure 6b): no slot in the bucket is hot.
        for s in 0..lv.slots {
            let m = lv.meta[lv.slot_idx(bucket, s)].load(Ordering::Relaxed);
            assert!(!m_hot(m), "hotmap not reset after all-hot eviction");
        }
        assert_eq!(get(&t, newcomer), Some(1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single bucket per level, 4 slots: deterministic recency order.
        let t = HotTable::new(8, 4, HotPolicy::Lru);
        let mut rng = XorShift64Star::new(4);
        // Find 4 ids all mapping to level-0 bucket 0… with 1-2 buckets in
        // L0 that's easy; insert until bucket 0 of level 0 is full.
        let lv0_buckets = t.levels[0].n_buckets;
        let mut captives = Vec::new();
        let mut id = 0u64;
        while captives.len() < 4 && id < 100_000 {
            let (_, h) = hashes(id);
            if t.bucket_of(0, h.h1, h.h2) == 0 {
                // Put directly through eviction path to pin level 0.
                let (k, _) = hashes(id);
                t.evict_and_insert(0, &Record::new(k, Value::from_u64(id)), h.h1, h.h2, h.fp, &mut rng);
                if get(&t, id).is_some() {
                    captives.push(id);
                }
            }
            id += 1;
        }
        let _ = lv0_buckets;
        if captives.len() < 4 {
            return;
        }
        // Touch all but captives[0] → it becomes the LRU victim.
        for &c in &captives[1..] {
            let _ = get(&t, c);
        }
        // Insert a new key into bucket 0 via eviction.
        let mut probe = 9_000_000u64;
        loop {
            let (_, h) = hashes(probe);
            if t.bucket_of(0, h.h1, h.h2) == 0 {
                let (k, _) = hashes(probe);
                t.evict_and_insert(0, &Record::new(k, Value::from_u64(7)), h.h1, h.h2, h.fp, &mut rng);
                break;
            }
            probe += 1;
        }
        assert_eq!(get(&t, captives[0]), None, "LRU item should be the victim");
        for &c in &captives[1..] {
            assert!(get(&t, c).is_some(), "recently used item evicted");
        }
    }

    #[test]
    fn lru_list_struct_behaviour() {
        let mut l = LruList::new(4);
        let s0 = l.push_front(0);
        let s1 = l.push_front(1);
        let s2 = l.push_front(2);
        assert!(s0 < s1 && s1 < s2, "stamps are monotonic");
        assert_eq!(l.head, 2);
        assert_eq!(l.tail, 0);
        let s0b = l.touch(0); // refresh: 0 becomes MRU
        assert!(s0b > s2);
        assert_eq!(l.head, 0);
        assert_eq!(l.tail, 1);
        l.unlink(1);
        assert_eq!(l.tail, 2);
        l.unlink(0);
        l.unlink(2);
        assert_eq!(l.head, LRU_NONE);
        assert_eq!(l.tail, LRU_NONE);
    }

    #[test]
    fn lru_touch_head_is_cheap_and_consistent() {
        let mut l = LruList::new(2);
        l.push_front(0);
        let a = l.touch(0);
        let b = l.touch(0);
        assert!(b > a);
        assert_eq!(l.head, 0);
        assert_eq!(l.tail, 0);
    }

    #[test]
    fn footprint_lru_exceeds_rafl() {
        let r = HotTable::new(1024, 4, HotPolicy::Rafl);
        let l = HotTable::new(1024, 4, HotPolicy::Lru);
        assert!(l.footprint_bytes() > r.footprint_bytes());
    }

    #[test]
    fn concurrent_puts_and_searches_are_safe_and_consistent() {
        use std::sync::Arc;
        let t = Arc::new(HotTable::new(256, 4, HotPolicy::Rafl));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(tid);
                for i in 0..20_000u64 {
                    let id = (i * 7 + tid) % 512;
                    // value encodes the key id; readers validate.
                    put(&t, id, id * 1000, &mut rng);
                    if let Some(v) = get(&t, id) {
                        assert_eq!(v, id * 1000, "torn or foreign value");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_lru_is_safe() {
        use std::sync::Arc;
        let t = Arc::new(HotTable::new(64, 4, HotPolicy::Lru));
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut rng = XorShift64Star::new(tid + 100);
                for i in 0..20_000u64 {
                    let id = (i * 13 + tid) % 256;
                    put(&t, id, id * 3, &mut rng);
                    if let Some(v) = get(&t, id) {
                        assert_eq!(v, id * 3);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn single_slot_buckets_work_under_both_policies() {
        for policy in [HotPolicy::Rafl, HotPolicy::Lru] {
            let t = HotTable::new(16, 1, policy);
            let mut rng = XorShift64Star::new(11);
            for id in 0..200u64 {
                put(&t, id, id * 2, &mut rng);
            }
            // Whatever remains cached must be correct.
            let mut hits = 0;
            for id in 0..200u64 {
                if let Some(v) = get(&t, id) {
                    assert_eq!(v, id * 2, "{policy:?}");
                    hits += 1;
                }
            }
            assert!(hits > 0, "{policy:?}: cache completely empty");
        }
    }

    #[test]
    fn delete_of_absent_key_is_noop() {
        let t = HotTable::new(64, 4, HotPolicy::Rafl);
        let (k, h) = hashes(12345);
        t.delete(&k, h.h1, h.h2, h.fp); // must not panic or corrupt
        assert_eq!(t.len(), 0);
        assert_eq!(t.is_hot(&k, h.h1, h.h2, h.fp), None);
    }

    #[test]
    fn saturated_table_keeps_serving_under_both_policies() {
        for policy in [HotPolicy::Rafl, HotPolicy::Lru] {
            let t = HotTable::new(32, 4, policy);
            let mut rng = XorShift64Star::new(13);
            for id in 0..10_000u64 {
                put(&t, id, id, &mut rng);
                if id % 7 == 0 {
                    let _ = get(&t, id);
                }
            }
            assert!(t.len() <= t.capacity(), "{policy:?}");
            assert!(!t.is_empty(), "{policy:?}");
        }
    }

    #[test]
    fn capacity_split_is_two_to_one() {
        let t = HotTable::new(96, 4, HotPolicy::Rafl);
        assert_eq!(t.levels[0].n_buckets, 16);
        assert_eq!(t.levels[1].n_buckets, 8);
        assert_eq!(t.capacity(), 96);
    }
}
