//! Tunable parameters of an HDNH instance.
//!
//! Defaults follow the paper's evaluated configuration (§3.1, §4.1/§4.2):
//! 256-byte NVM buckets with 8 slots, 16 KB segments (figure 11a's optimum),
//! 4 slots per hot-table bucket (figure 11b's balance point), top level twice
//! the bottom level.

use hdnh_nvm::NvmOptions;

/// Bytes per non-volatile bucket — fixed at AEP's 256-byte block granularity.
pub const BUCKET_BYTES: usize = 256;
/// Persisted header bytes per bucket (bitmap word).
pub const BUCKET_HEADER: usize = 8;
/// Slots per non-volatile bucket.
pub const SLOTS_PER_BUCKET: usize = 8;
/// Bytes per slot (one 31-byte record).
pub const SLOT_BYTES: usize = hdnh_common::RECORD_LEN;

// 8 + 8×31 = 256: the record geometry exactly fills a bucket.
const _: () = assert!(BUCKET_HEADER + SLOTS_PER_BUCKET * SLOT_BYTES == BUCKET_BYTES);

/// How hot-table writes are synchronized with non-volatile writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// The foreground thread performs the hot-table write itself, after the
    /// NVM write. Simple; serializes DRAM and NVM latencies.
    Inline,
    /// The paper's synchronous write mechanism (§3.4): a background thread
    /// performs the hot-table write concurrently with the foreground NVM
    /// write; the foreground thread waits on the `sync_write_signal` before
    /// returning, hiding the DRAM write under the NVM latency.
    Background,
}

/// Hot-table replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotPolicy {
    /// The paper's RAFL (§3.3): one hotmap bit per slot; evict a cold slot
    /// if any, else a random slot, then clear all hotmap bits in the bucket.
    Rafl,
    /// LRU comparison point used in figure 12: per-slot access stamps, evict
    /// the least recently used. Costs a stamp store on every hit and a scan
    /// on every eviction — the maintenance overhead RAFL avoids.
    Lru,
}

/// Configuration for [`crate::Hdnh`].
#[derive(Clone, Debug)]
pub struct HdnhParams {
    /// Segment size in bytes (power-of-two multiple of 256; default 16 KB).
    pub segment_bytes: usize,
    /// Initial number of bottom-level segments (power of two). The top
    /// level always has twice as many.
    pub initial_bottom_segments: usize,
    /// Slots per hot-table bucket (1..=8; default 4 per figure 11b).
    pub hot_slots_per_bucket: usize,
    /// Hot-table capacity as a fraction of non-volatile slots (default 1/4;
    /// set ≥ 1.0 for the "hot table has not overflowed" regime of §3.5).
    pub hot_capacity_ratio: f64,
    /// Enable the Optimistic Compression Filter. Disabling it (ablation)
    /// makes probes scan NVM buckets directly like Level hashing.
    pub enable_ocf: bool,
    /// Use two segment choices per level (the paper's "2-cuckoo strategy",
    /// 4 candidate buckets per level). Disabling (ablation) probes a single
    /// segment choice (2 candidate buckets per level): cheaper probes,
    /// lower achievable load factor, earlier resizes.
    pub two_choice_segments: bool,
    /// Enable the DRAM hot table.
    pub enable_hot_table: bool,
    /// Replacement policy for the hot table.
    pub hot_policy: HotPolicy,
    /// Synchronous-write mechanism mode.
    pub sync_mode: SyncMode,
    /// Background writer threads serving hot-table writes in
    /// [`SyncMode::Background`].
    pub background_writers: usize,
    /// NVM simulation options for the table's regions.
    pub nvm: NvmOptions,
    /// Value-log segment size in bytes (multiple of 8; default 4 MiB). An
    /// oversized value still fits: its segment is sized to the record.
    pub vlog_segment_bytes: usize,
    /// Largest value stored inline in the 15-byte slot (0..=14; default 14).
    /// Values longer than this spill to the value log. Lowering it forces
    /// spills early — useful for exercising the log without big payloads.
    pub vlog_inline_max: usize,
}

impl HdnhParams {
    /// Starts a validating builder over the paper's default configuration.
    ///
    /// Unlike struct-literal construction (which defers every check to the
    /// panicking [`validate`](Self::validate) inside `Hdnh::new`), the
    /// builder reports bad configurations as typed
    /// [`HdnhError::Config`](crate::HdnhError::Config) values at build time.
    pub fn builder() -> HdnhParamsBuilder {
        HdnhParamsBuilder {
            params: HdnhParams::default(),
            capacity: None,
        }
    }

    /// The paper's configuration at small test scale (capacity ≈ 3 k
    /// records before the first resize).
    pub fn small() -> Self {
        HdnhParams::default()
    }

    /// Sized so that roughly `records` items fit at ≈80 % load without
    /// resizing — what the throughput benchmarks use for search workloads.
    pub fn for_capacity(records: usize) -> Self {
        let mut p = HdnhParams::default();
        let slots_needed = (records as f64 / 0.8).ceil() as usize;
        let buckets_per_segment = p.segment_bytes / BUCKET_BYTES;
        let slots_per_segment = buckets_per_segment * SLOTS_PER_BUCKET;
        // total slots = (2M + M) × slots_per_segment  ⇒  M.
        let m = slots_needed.div_ceil(3 * slots_per_segment).max(1);
        p.initial_bottom_segments = m.next_power_of_two();
        p
    }

    /// Total slot capacity of the initial table (both levels).
    pub fn initial_slots(&self) -> usize {
        let buckets_per_segment = self.segment_bytes / BUCKET_BYTES;
        3 * self.initial_bottom_segments * buckets_per_segment * SLOTS_PER_BUCKET
    }

    /// Validates invariants; called by `Hdnh::new`.
    pub fn validate(&self) {
        assert!(
            self.segment_bytes >= BUCKET_BYTES && self.segment_bytes.is_multiple_of(BUCKET_BYTES),
            "segment_bytes must be a multiple of 256"
        );
        assert!(
            (self.segment_bytes / BUCKET_BYTES).is_power_of_two(),
            "buckets per segment must be a power of two"
        );
        assert!(
            self.initial_bottom_segments.is_power_of_two(),
            "initial_bottom_segments must be a power of two"
        );
        assert!(
            (1..=SLOTS_PER_BUCKET).contains(&self.hot_slots_per_bucket),
            "hot_slots_per_bucket must be 1..=8"
        );
        assert!(self.hot_capacity_ratio > 0.0);
        assert!(self.background_writers >= 1);
        assert!(
            self.vlog_segment_bytes >= 64 && self.vlog_segment_bytes.is_multiple_of(8),
            "vlog_segment_bytes must be a multiple of 8, at least 64"
        );
        assert!(
            self.vlog_inline_max <= crate::vlog::INLINE_MAX,
            "vlog_inline_max must be 0..=14"
        );
    }
}

/// Validating builder for [`HdnhParams`]; see [`HdnhParams::builder`].
#[derive(Clone, Debug)]
pub struct HdnhParamsBuilder {
    params: HdnhParams,
    capacity: Option<usize>,
}

impl HdnhParamsBuilder {
    /// Segment size in bytes (power-of-two multiple of 256).
    pub fn segment_bytes(mut self, bytes: usize) -> Self {
        self.params.segment_bytes = bytes;
        self
    }

    /// Initial bottom-level segment count (power of two). Overridden by
    /// [`capacity`](Self::capacity) if both are given.
    pub fn initial_bottom_segments(mut self, segments: usize) -> Self {
        self.params.initial_bottom_segments = segments;
        self
    }

    /// Sizes the table so `records` items fit at ≈80 % load without a
    /// resize (the [`HdnhParams::for_capacity`] computation).
    pub fn capacity(mut self, records: usize) -> Self {
        self.capacity = Some(records);
        self
    }

    /// Slots per hot-table bucket (1..=8).
    pub fn hot_slots_per_bucket(mut self, slots: usize) -> Self {
        self.params.hot_slots_per_bucket = slots;
        self
    }

    /// Hot-table capacity as a fraction of non-volatile slots.
    pub fn hot_capacity_ratio(mut self, ratio: f64) -> Self {
        self.params.hot_capacity_ratio = ratio;
        self
    }

    /// Enables or disables the Optimistic Compression Filter.
    pub fn enable_ocf(mut self, on: bool) -> Self {
        self.params.enable_ocf = on;
        self
    }

    /// Enables or disables the two-segment-choice probe strategy.
    pub fn two_choice_segments(mut self, on: bool) -> Self {
        self.params.two_choice_segments = on;
        self
    }

    /// Enables or disables the DRAM hot table.
    pub fn enable_hot_table(mut self, on: bool) -> Self {
        self.params.enable_hot_table = on;
        self
    }

    /// Hot-table replacement policy.
    pub fn hot_policy(mut self, policy: HotPolicy) -> Self {
        self.params.hot_policy = policy;
        self
    }

    /// Synchronous-write mechanism mode.
    pub fn sync_mode(mut self, mode: SyncMode) -> Self {
        self.params.sync_mode = mode;
        self
    }

    /// Background writer threads for [`SyncMode::Background`].
    pub fn background_writers(mut self, n: usize) -> Self {
        self.params.background_writers = n;
        self
    }

    /// NVM simulation options for the table's regions.
    pub fn nvm(mut self, nvm: NvmOptions) -> Self {
        self.params.nvm = nvm;
        self
    }

    /// Value-log segment size in bytes (multiple of 8, at least 64).
    pub fn vlog_segment_bytes(mut self, bytes: usize) -> Self {
        self.params.vlog_segment_bytes = bytes;
        self
    }

    /// Largest value stored inline in the slot (0..=14); longer values
    /// spill to the value log.
    pub fn vlog_inline_max(mut self, bytes: usize) -> Self {
        self.params.vlog_inline_max = bytes;
        self
    }

    /// Pool-backend fence policy: [`SyncPolicy::Sync`] blocks write acks on
    /// `msync(MS_SYNC)` and is the only power-loss-safe setting;
    /// [`SyncPolicy::Async`] (default) acks after `MS_ASYNC` and can lose
    /// acked writes on power failure.
    pub fn sync_policy(mut self, policy: hdnh_nvm::SyncPolicy) -> Self {
        self.params.nvm.sync_policy = policy;
        self
    }

    /// Validates and produces the final configuration.
    pub fn build(self) -> Result<HdnhParams, crate::HdnhError> {
        let err = |msg: String| Err(crate::HdnhError::Config(msg));
        let mut p = self.params;
        if p.segment_bytes < BUCKET_BYTES || !p.segment_bytes.is_multiple_of(BUCKET_BYTES) {
            return err(format!(
                "segment_bytes must be a multiple of {BUCKET_BYTES}, got {}",
                p.segment_bytes
            ));
        }
        if !(p.segment_bytes / BUCKET_BYTES).is_power_of_two() {
            return err(format!(
                "segment_bytes must hold a power-of-two number of buckets, got {}",
                p.segment_bytes
            ));
        }
        if let Some(records) = self.capacity {
            let slots_needed = (records as f64 / 0.8).ceil() as usize;
            let slots_per_segment = (p.segment_bytes / BUCKET_BYTES) * SLOTS_PER_BUCKET;
            let m = slots_needed.div_ceil(3 * slots_per_segment).max(1);
            p.initial_bottom_segments = m.next_power_of_two();
        }
        if !p.initial_bottom_segments.is_power_of_two() {
            return err(format!(
                "initial_bottom_segments must be a power of two, got {}",
                p.initial_bottom_segments
            ));
        }
        if !(1..=SLOTS_PER_BUCKET).contains(&p.hot_slots_per_bucket) {
            return err(format!(
                "hot_slots_per_bucket must be 1..={SLOTS_PER_BUCKET}, got {}",
                p.hot_slots_per_bucket
            ));
        }
        if !p.hot_capacity_ratio.is_finite() || p.hot_capacity_ratio <= 0.0 || p.hot_capacity_ratio > 16.0
        {
            return err(format!(
                "hot_capacity_ratio must be in (0, 16], got {}",
                p.hot_capacity_ratio
            ));
        }
        if p.background_writers < 1 {
            return err("background_writers must be at least 1".to_string());
        }
        if p.vlog_segment_bytes < 64 || !p.vlog_segment_bytes.is_multiple_of(8) {
            return err(format!(
                "vlog_segment_bytes must be a multiple of 8, at least 64, got {}",
                p.vlog_segment_bytes
            ));
        }
        if p.vlog_inline_max > crate::vlog::INLINE_MAX {
            return err(format!(
                "vlog_inline_max must be 0..={}, got {}",
                crate::vlog::INLINE_MAX,
                p.vlog_inline_max
            ));
        }
        Ok(p)
    }
}

impl Default for HdnhParams {
    fn default() -> Self {
        HdnhParams {
            segment_bytes: 16 * 1024,
            initial_bottom_segments: 1,
            hot_slots_per_bucket: 4,
            hot_capacity_ratio: 0.25,
            enable_ocf: true,
            two_choice_segments: true,
            enable_hot_table: true,
            hot_policy: HotPolicy::Rafl,
            sync_mode: SyncMode::Inline,
            background_writers: 2,
            nvm: NvmOptions::fast(),
            vlog_segment_bytes: 4 * 1024 * 1024,
            vlog_inline_max: crate::vlog::INLINE_MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        HdnhParams::default().validate();
    }

    #[test]
    fn default_matches_paper() {
        let p = HdnhParams::default();
        assert_eq!(p.segment_bytes, 16 * 1024);
        assert_eq!(p.hot_slots_per_bucket, 4);
        assert_eq!(p.hot_policy, HotPolicy::Rafl);
    }

    #[test]
    fn for_capacity_is_large_enough() {
        for records in [100, 10_000, 1_000_000] {
            let p = HdnhParams::for_capacity(records);
            p.validate();
            assert!(
                p.initial_slots() as f64 * 0.8 >= records as f64,
                "records={records} slots={}",
                p.initial_slots()
            );
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_segments_rejected() {
        let p = HdnhParams {
            initial_bottom_segments: 3,
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn bad_hot_slots_rejected() {
        let p = HdnhParams {
            hot_slots_per_bucket: 9,
            ..Default::default()
        };
        p.validate();
    }

    #[test]
    fn builder_defaults_match_struct_defaults() {
        let built = HdnhParams::builder().build().unwrap();
        let dflt = HdnhParams::default();
        assert_eq!(built.segment_bytes, dflt.segment_bytes);
        assert_eq!(built.initial_bottom_segments, dflt.initial_bottom_segments);
        assert_eq!(built.hot_policy, dflt.hot_policy);
    }

    #[test]
    fn builder_applies_setters_and_capacity() {
        let p = HdnhParams::builder()
            .segment_bytes(1024)
            .capacity(10_000)
            .enable_hot_table(false)
            .sync_mode(SyncMode::Background)
            .build()
            .unwrap();
        assert_eq!(p.segment_bytes, 1024);
        assert!(!p.enable_hot_table);
        assert_eq!(p.sync_mode, SyncMode::Background);
        assert!(p.initial_bottom_segments.is_power_of_two());
        assert!(p.initial_slots() as f64 * 0.8 >= 10_000.0);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        use crate::HdnhError;
        let bad = [
            HdnhParams::builder().segment_bytes(100).build(),
            HdnhParams::builder().segment_bytes(3 * 256).build(),
            HdnhParams::builder().initial_bottom_segments(3).build(),
            HdnhParams::builder().hot_slots_per_bucket(0).build(),
            HdnhParams::builder().hot_slots_per_bucket(9).build(),
            HdnhParams::builder().hot_capacity_ratio(0.0).build(),
            HdnhParams::builder().hot_capacity_ratio(f64::NAN).build(),
            HdnhParams::builder().hot_capacity_ratio(100.0).build(),
            HdnhParams::builder().background_writers(0).build(),
            HdnhParams::builder().vlog_segment_bytes(60).build(),
            HdnhParams::builder().vlog_segment_bytes(100).build(),
            HdnhParams::builder().vlog_inline_max(15).build(),
        ];
        for (i, r) in bad.into_iter().enumerate() {
            assert!(matches!(r, Err(HdnhError::Config(_))), "case {i} accepted");
        }
    }

    #[test]
    fn initial_slots_counts_both_levels() {
        let p = HdnhParams {
            segment_bytes: 1024, // 4 buckets/segment
            initial_bottom_segments: 2,
            ..Default::default()
        };
        // top 4 segs + bottom 2 segs = 6 segs × 4 buckets × 8 slots.
        assert_eq!(p.initial_slots(), 6 * 4 * 8);
    }
}
